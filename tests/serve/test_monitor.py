"""The repro top monitor: fetch, frame rendering, byte-stable snapshots."""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import RefreshPolicy
from repro.exceptions import ReproError
from repro.serve import StatsServer, serve_forever
from repro.serve.monitor import fetch, render_frame, render_logical_text, run_top
from repro.serve.protocol import SHUTDOWN_OP


def _server(**kwargs):
    kwargs.setdefault("policy", RefreshPolicy(fraction=0.2, floor_rows=100))
    kwargs.setdefault("build_params", {"k": 8, "f": 0.3})
    return StatsServer(
        {"t": Table("t", {"x": np.arange(20_000)})}, **kwargs
    )


class _InProcessClient:
    """Monitor-facing shim: request() straight into StatsServer.handle."""

    def __init__(self, server):
        self.server = server

    def request(self, payload):
        return self.server.handle(payload)

    def close(self):
        pass


def _drive(server, requests=8):
    server.handle({"op": "analyze", "table": "t", "column": "x"})
    for i in range(requests):
        server.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": float(100 * (i + 1))}
        )


class TestFetch:
    def test_fetch_returns_stats_and_health(self):
        server = _server(telemetry=True)
        stats, health = fetch(_InProcessClient(server))
        assert stats["logical"]["telemetry"]["enabled"]
        assert health["status"] == "ok"

    def test_fetch_raises_on_protocol_failure(self):
        class _Broken:
            def request(self, payload):
                return {"ok": False, "error": "nope", "code": "ProtocolError"}

        with pytest.raises(ReproError, match="monitor request failed"):
            fetch(_Broken())


class TestRendering:
    def test_frame_mentions_the_key_facts(self):
        server = _server(telemetry=True)
        _drive(server)
        frame = render_frame(*fetch(_InProcessClient(server)))
        assert "health: ok" in frame
        assert "uptime_requests=" in frame
        assert "p50=" in frame and "p99=" in frame
        assert "serve_requests=" in frame
        assert "slo:" in frame
        assert "shift:" in frame

    def test_frame_says_disabled_without_telemetry(self):
        frame = render_frame(*fetch(_InProcessClient(_server())))
        assert "telemetry: disabled" in frame

    def test_logical_text_is_byte_stable_across_identical_workloads(self):
        snapshots = []
        for _ in range(2):
            server = _server(seed=9, telemetry=True)
            _drive(server)
            stats, _ = fetch(_InProcessClient(server))
            snapshots.append(render_logical_text(stats))
        assert snapshots[0] == snapshots[1]
        # And it is exactly the logical half, nothing from the wall side.
        parsed = json.loads(snapshots[0])
        assert "telemetry" in parsed and "latency" not in parsed

    def test_logical_text_excludes_wall_quantiles(self):
        server = _server(telemetry=True)
        _drive(server)
        stats, _ = fetch(_InProcessClient(server))
        text = render_logical_text(stats)
        # Wall-only keys (the latency quantile map) never leak through.
        assert '"p50"' not in text and '"p99"' not in text
        assert '"windows"' not in text and '"shift"' not in text


class TestRunTop:
    def test_run_top_over_tcp_writes_the_snapshot(self, tmp_path):
        server = _server(telemetry=True)
        ready = tmp_path / "ready"
        thread = threading.Thread(
            target=serve_forever,
            args=(server, "127.0.0.1", 0, str(ready)),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 10.0
        while not ready.exists() and time.time() < deadline:
            time.sleep(0.01)
        _, host, port = ready.read_text().split()
        _drive(server, requests=4)

        out = tmp_path / "logical.json"
        stream = io.StringIO()
        code = run_top(
            host, int(port), once=True, out=str(out), stream=stream
        )
        assert code == 0
        assert "repro serve — health:" in stream.getvalue()
        snapshot = json.loads(out.read_text())
        assert snapshot["telemetry"]["enabled"]

        with socket.create_connection((host, int(port))) as sock:
            sock.sendall(
                (json.dumps({"op": SHUTDOWN_OP}) + "\n").encode()
            )
            sock.makefile("rb").readline()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_run_top_rejects_bad_interval(self):
        with pytest.raises(ReproError, match="interval"):
            run_top("127.0.0.1", 1, interval=0.0)
