"""BucketIndex: bit-identity with the linear histogram scans, O(log k).

The index's contract has two halves: every estimator returns the **same
bits** as :class:`~repro.core.histogram.EquiHeightHistogram`'s linear
implementation, and it gets there in O(log k) separator/prefix probes.
Hypothesis drives the equivalence half over zipf-like, duplicate-heavy
uniform, and degenerate (single-value) columns; the probe half is an
explicit count assertion at large k.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.histogram import EquiHeightHistogram
from repro.exceptions import ParameterError
from repro.serve import BucketIndex

# Duplicate-heavy uniform: narrow domain forces repeated values, which
# exercises the eq_counts / separator-tie paths.
unif_dup_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.integers(min_value=0, max_value=20),
)

# Zipf-like skew without randomness inside the strategy: wide-domain
# integers squared concentrate mass near zero like a heavy-tailed draw.
skew_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.integers(min_value=-100, max_value=100),
).map(lambda a: a * np.abs(a))

# Degenerate: every value identical (zero-width buckets everywhere).
degenerate_arrays = st.integers(min_value=-5, max_value=5).flatmap(
    lambda v: st.integers(min_value=1, max_value=50).map(
        lambda n: np.full(n, v, dtype=np.int64)
    )
)

column_arrays = st.one_of(unif_dup_arrays, skew_arrays, degenerate_arrays)


def _probe_points(values: np.ndarray) -> list[float]:
    """Interesting probe values: data points, midpoints, and outside."""
    lo, hi = float(values.min()), float(values.max())
    inside = [float(v) for v in np.unique(values)[:20]]
    mids = [(a + b) / 2 for a, b in zip(inside, inside[1:])]
    return inside + mids + [lo - 1.0, hi + 1.0, (lo + hi) / 2]


class TestBitIdentity:
    """Every estimator reproduces the linear scan bit-for-bit."""

    @given(values=column_arrays, k=st.integers(min_value=1, max_value=48))
    @settings(max_examples=150, deadline=None)
    def test_leq_lt_match_linear_scan(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        index = BucketIndex(hist)
        for value in _probe_points(values):
            assert index.estimate_leq(value) == hist.estimate_leq(value)
            assert index.estimate_lt(value) == hist.estimate_lt(value)
            assert index.bucket_index(value) == hist.bucket_index(value)

    @given(values=column_arrays, k=st.integers(min_value=1, max_value=48))
    @settings(max_examples=150, deadline=None)
    def test_range_matches_linear_scan(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        index = BucketIndex(hist)
        points = _probe_points(values)
        for lo, hi in zip(points, points[1:]):
            lo, hi = min(lo, hi), max(lo, hi)
            assert index.estimate_range(lo, hi) == hist.estimate_range(lo, hi)

    @given(
        values=column_arrays,
        k=st.integers(min_value=1, max_value=48),
        quantiles=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_matches_linear_walk(self, values, k, quantiles):
        hist = EquiHeightHistogram.from_values(values, k)
        index = BucketIndex(hist)
        for q in quantiles + [0.0, 0.5, 1.0]:
            assert index.estimate_quantile(q) == hist.estimate_quantile(q)

    def test_total_and_k_mirror_histogram(self):
        values = np.arange(1000, dtype=np.int64) % 37
        hist = EquiHeightHistogram.from_values(values, 16)
        index = BucketIndex(hist)
        assert index.total == hist.total
        assert index.k == hist.k


class TestValidation:
    """Parameter errors match the histogram's contracts."""

    def test_rejects_inverted_range(self):
        index = BucketIndex(
            EquiHeightHistogram.from_values(np.arange(100), 8)
        )
        with pytest.raises(ParameterError):
            index.estimate_range(5.0, 1.0)

    def test_rejects_quantile_outside_unit_interval(self):
        index = BucketIndex(
            EquiHeightHistogram.from_values(np.arange(100), 8)
        )
        with pytest.raises(ParameterError):
            index.estimate_quantile(1.5)


class TestProbeComplexity:
    """Lookups cost O(log k) probes, observable via the probe counter."""

    @pytest.mark.parametrize("k", [256, 1024, 4096])
    def test_probes_per_lookup_logarithmic(self, k):
        values = np.arange(k * 8, dtype=np.int64)
        index = BucketIndex(EquiHeightHistogram.from_values(values, k))
        rng = np.random.default_rng(0)
        lookups = 500
        for v in rng.uniform(values.min(), values.max(), lookups):
            index.estimate_leq(float(v))
        for q in rng.random(lookups):
            index.estimate_quantile(float(q))
        per_lookup = index.probes / (2 * lookups)
        # A binary search over k separators makes at most ceil(log2 k) + 1
        # comparisons; allow one more for boundary slack.
        assert per_lookup <= math.ceil(math.log2(k)) + 2, (
            f"k={k}: {per_lookup:.1f} probes/lookup is not O(log k)"
        )

    def test_probe_counter_grows_with_lookups(self):
        index = BucketIndex(
            EquiHeightHistogram.from_values(np.arange(4096), 512)
        )
        assert index.probes == 0
        index.estimate_leq(17.0)
        first = index.probes
        assert first > 0
        index.estimate_leq(17.0)
        assert index.probes == 2 * first

    def test_clamped_probes_cost_nothing(self):
        """Out-of-domain probes short-circuit without touching the tree."""
        index = BucketIndex(
            EquiHeightHistogram.from_values(np.arange(100), 8)
        )
        index.estimate_leq(1e9)
        index.estimate_lt(-1e9)
        assert index.probes == 0
