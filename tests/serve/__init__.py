"""Tests for the repro.serve statistics server."""
