"""LoadGenerator: bit-identical logical summaries across runs and clients."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import RefreshPolicy
from repro.exceptions import ParameterError
from repro.serve import LoadGenerator, LoadProfile, StatsServer
from repro.serve.loadgen import percentile


def _server(seed=9):
    return StatsServer(
        {
            "orders": Table("orders", {"value": np.arange(20_000) % 997}),
            "parts": Table("parts", {"value": np.arange(10_000)}),
        },
        seed=seed,
        policy=RefreshPolicy(fraction=0.2, floor_rows=100),
        build_params={"k": 8, "f": 0.3},
    )


def _run(clients, churn_rows=0, requests=120, seed=1):
    profile = LoadProfile(
        requests=requests, clients=clients, seed=seed, churn_rows=churn_rows
    )
    return LoadGenerator(server=_server(), profile=profile).run()


class TestDeterminism:
    def test_logical_identical_across_runs(self):
        first = _run(clients=2)
        second = _run(clients=2)
        assert first["logical"] == second["logical"]

    @pytest.mark.parametrize("clients", [2, 5])
    def test_logical_identical_across_client_counts(self, clients):
        base = json.dumps(_run(clients=1)["logical"], sort_keys=True)
        other = json.dumps(_run(clients=clients)["logical"], sort_keys=True)
        assert base == other

    def test_logical_identical_across_clients_with_churn(self):
        base = _run(clients=1, churn_rows=5_000)["logical"]
        other = _run(clients=3, churn_rows=5_000)["logical"]
        assert base == other

    def test_seed_changes_schedule(self):
        assert (
            _run(clients=1, seed=1)["logical"]["checksums"]
            != _run(clients=1, seed=2)["logical"]["checksums"]
        )


class TestPhases:
    def test_warmup_builds_every_column(self):
        summary = _run(clients=2)
        logical = summary["logical"]
        assert logical["columns"] == 2
        assert logical["requests"]["analyze"] == 2
        assert logical["builds"]["warmup_pages_read"] > 0
        assert logical["errors"] == 0

    def test_churn_triggers_one_refresh_per_column(self):
        logical = _run(clients=2, churn_rows=5_000)["logical"]
        assert logical["requests"]["modify"] == 2
        assert logical["builds"]["refreshes"] == 2
        assert logical["builds"]["degraded_served"] == 0

    def test_no_churn_no_refresh(self):
        logical = _run(clients=2)["logical"]
        assert logical["builds"]["refreshes"] == 0

    def test_request_totals_cover_schedule(self):
        logical = _run(clients=3, requests=90)["logical"]
        concurrent = sum(
            count
            for op, count in logical["requests"].items()
            if op.startswith("estimate_")
        )
        # 90 scheduled + 2x2 warmup quantile probes.
        assert concurrent == 90 + 4

    def test_wall_section_present_but_unstable(self):
        summary = _run(clients=2)
        wall = summary["wall"]
        assert wall["requests_timed"] == 120
        assert wall["p50_s"] <= wall["p99_s"] <= wall["max_s"]


class TestSchedule:
    def test_schedule_is_pure_function_of_seed(self):
        generator = LoadGenerator(
            server=_server(), profile=LoadProfile(requests=50, seed=3)
        )
        assert generator.schedule(2) == generator.schedule(2)
        assert generator.schedule(2) != generator.schedule(3)

    def test_dealing_partitions_schedule(self):
        generator = LoadGenerator(
            server=_server(), profile=LoadProfile(requests=50, clients=4)
        )
        schedule = generator.schedule(2)
        dealt = [schedule[w::4] for w in range(4)]
        assert sorted(x for part in dealt for x in part) == sorted(schedule)


class TestValidation:
    def test_profile_rejects_bad_counts(self):
        with pytest.raises(ParameterError):
            LoadProfile(requests=-1)
        with pytest.raises(ParameterError):
            LoadProfile(clients=0)
        with pytest.raises(ParameterError):
            LoadProfile(churn_rows=-5)

    def test_profile_rejects_unknown_mix(self):
        with pytest.raises(ParameterError):
            LoadProfile(mix=(("drop_table", 1.0),))

    def test_generator_needs_exactly_one_transport(self):
        with pytest.raises(ParameterError):
            LoadGenerator()
        with pytest.raises(ParameterError):
            LoadGenerator(server=_server(), address=("h", 1))


class TestPercentile:
    def test_nearest_rank(self):
        xs = [float(x) for x in range(1, 11)]
        assert percentile(xs, 0.50) == 5.0
        assert percentile(xs, 0.99) == 10.0
        assert percentile(xs, 0.0) == 1.0
        assert percentile([], 0.5) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            percentile([1.0], 1.5)
