"""Server telemetry: stats/health/watch endpoints, RNG-inertness, burn."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import RefreshPolicy
from repro.obs import metrics
from repro.obs.live import SloObjective
from repro.serve import LoadGenerator, LoadProfile, ServerTelemetry, StatsServer


def _server(**kwargs):
    kwargs.setdefault("policy", RefreshPolicy(fraction=0.2, floor_rows=100))
    kwargs.setdefault("build_params", {"k": 8, "f": 0.3})
    return StatsServer(
        {"t": Table("t", {"x": np.arange(20_000)})}, **kwargs
    )


def _ok(response):
    assert response["ok"], response
    return response["result"]


def _drive(server, requests=12):
    """One build plus a deterministic little estimate workload."""
    _ok(server.handle({"op": "analyze", "table": "t", "column": "x"}))
    for i in range(requests):
        _ok(server.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": float(100 * (i + 1))}
        ))


class TestEndpointsDisabled:
    def test_stats_reports_telemetry_disabled(self):
        server = _server()
        stats = _ok(server.handle({"op": "stats"}))
        assert stats["logical"]["telemetry"] == {"enabled": False}
        assert stats["wall"] == {}
        # The invariant counters are live even without telemetry.
        assert stats["logical"]["uptime_requests"] == 1
        assert stats["logical"]["requests"] == {"stats": 1}

    def test_health_is_ok_without_telemetry(self):
        health = _ok(_server().handle({"op": "health"}))
        assert health == {
            "status": "ok", "burning": [], "uptime_requests": 1,
            "tables": 1, "telemetry_enabled": False,
        }

    def test_watch_reports_disabled(self):
        watch = _ok(_server().handle({"op": "watch"}))
        assert watch == {
            "enabled": False, "clock": 0, "cursor": 0,
            "totals": {}, "windows": {},
        }


class TestEndpointsEnabled:
    def test_stats_splits_logical_and_wall(self):
        server = _server(telemetry=True)
        _drive(server)
        stats = _ok(server.handle({"op": "stats"}))
        logical = stats["logical"]["telemetry"]
        assert logical["enabled"]
        # The stats request itself has ticked the clock but not finished.
        assert logical["clock"] == 14
        assert logical["latency_count"] == 13
        assert logical["series_totals"]["serve_requests"] == 13.0
        assert logical["series_totals"]["serve_errors"] == 0.0
        # The logical half carries only error-rate SLO verdicts; latency
        # verdicts (wall-clock dependent) live on the wall side.
        assert {v["kind"] for v in logical["slo"]} == {"error_rate"}
        wall = stats["wall"]
        assert wall["latency"]["count"] == 13
        assert 0.0 <= wall["latency"]["p50"] <= wall["latency"]["p99"]
        assert {v["kind"] for v in wall["slo"]} == {"latency"}
        assert "shift" in wall

    def test_health_reports_telemetry_enabled(self):
        server = _server(telemetry=True)
        health = _ok(server.handle({"op": "health"}))
        assert health["status"] == "ok"
        assert health["telemetry_enabled"]

    def test_status_carries_uptime_and_telemetry_flag(self):
        server = _server(telemetry=True)
        server.handle({"op": "ping"})
        status = _ok(server.handle({"op": "status"}))
        assert status["uptime_requests"] == 2
        assert status["telemetry_enabled"] is True
        assert _ok(_server().handle({"op": "status"}))[
            "telemetry_enabled"
        ] is False

    def test_watch_cursor_progression(self):
        server = _server(telemetry=ServerTelemetry(window_ticks=4))
        _drive(server, requests=7)  # 8 requests -> clock 8, window 2
        first = _ok(server.handle({"op": "watch"}))
        assert first["enabled"] and first["window_ticks"] == 4
        # The in-flight watch request itself has not finished yet.
        assert first["totals"]["serve_requests"] == 8.0
        assert first["windows"]["serve_requests"]  # everything since 0
        follow = _ok(server.handle(
            {"op": "watch", "cursor": first["cursor"]}
        ))
        # Nothing new past the cursor yet: only the current partial window.
        assert all(
            index >= first["cursor"] - 1
            for index, _ in follow["windows"]["serve_requests"]
        )

    def test_watch_rejects_negative_cursor(self):
        response = _server(telemetry=True).handle(
            {"op": "watch", "cursor": -1}
        )
        assert not response["ok"]
        assert response["code"] == "ProtocolError"
        assert "cursor" in response["error"]

    def test_error_requests_feed_the_error_series(self):
        server = _server(telemetry=True)
        server.handle({"op": "status"})
        assert not server.handle(
            {"op": "estimate_distinct", "table": "nope", "column": "x"}
        )["ok"]
        stats = _ok(server.handle({"op": "stats"}))
        totals = stats["logical"]["telemetry"]["series_totals"]
        assert totals["serve_errors"] == 1.0
        assert totals["serve_requests"] == 2.0  # stats still in flight

    def test_cache_events_mirror_the_cache_counters(self):
        server = _server(telemetry=True)
        _drive(server, requests=3)  # 1 install (a miss) + 3 hits
        stats = _ok(server.handle({"op": "stats"}))
        totals = stats["logical"]["telemetry"]["series_totals"]
        counters = server.cache.counters()
        assert totals["serve_cache_hits"] == float(counters["hits"]) == 3.0
        assert totals["serve_cache_misses"] == float(counters["misses"])


class TestDeterminism:
    def test_telemetry_is_rng_inert(self):
        """Identical logical loadgen summaries with telemetry on and off."""
        summaries = []
        for telemetry in (False, True):
            server = _server(seed=7, telemetry=telemetry)
            result = LoadGenerator(
                server=server,
                profile=LoadProfile(requests=60, clients=3, seed=1),
            ).run()
            summaries.append(
                json.dumps(result["logical"], sort_keys=True)
            )
        assert summaries[0] == summaries[1]

    def test_logical_stats_identical_across_client_counts(self):
        """The acceptance criterion: the stats endpoint's logical half is
        byte-identical for the same workload at different client counts."""
        snapshots = []
        for clients in (2, 5):
            server = _server(seed=3, telemetry=True)
            LoadGenerator(
                server=server,
                profile=LoadProfile(requests=80, clients=clients, seed=5),
            ).run()
            stats = _ok(server.handle({"op": "stats"}))
            snapshots.append(
                json.dumps(stats["logical"], sort_keys=True)
            )
        assert snapshots[0] == snapshots[1]

    def test_answers_identical_with_telemetry_enabled(self):
        results = []
        for telemetry in (False, True):
            server = _server(seed=0, telemetry=telemetry)
            _ok(server.handle(
                {"op": "analyze", "table": "t", "column": "x"}
            ))
            results.append(_ok(server.handle(
                {"op": "estimate_range", "table": "t", "column": "x",
                 "lo": 0.0, "hi": 5_000.0}
            )))
        assert results[0] == results[1]


class TestSloBurn:
    def test_burning_objective_degrades_health(self):
        telemetry = ServerTelemetry(
            objectives=(
                SloObjective("error_rate", "error_rate", threshold=0.0),
            ),
            burn_windows=2,
        )
        server = _server(telemetry=telemetry)
        assert not server.handle(
            {"op": "estimate_distinct", "table": "nope", "column": "x"}
        )["ok"]
        # Each stats request evaluates the error-rate objectives once.
        server.handle({"op": "stats"})
        assert _ok(server.handle({"op": "health"}))["status"] == "ok"
        server.handle({"op": "stats"})
        health = _ok(server.handle({"op": "health"}))
        assert health["status"] == "degraded"
        assert health["burning"] == ["error_rate"]

    def test_reference_sketch_freezes_at_min_count(self):
        server = _server(telemetry=ServerTelemetry(shift_min_count=4))
        stats = _ok(server.handle({"op": "stats"}))
        assert not stats["wall"]["shift"]["reference_frozen"]
        _drive(server, requests=4)
        stats = _ok(server.handle({"op": "stats"}))
        shift = stats["wall"]["shift"]
        assert shift["reference_frozen"]
        assert shift["evaluated"]
        assert 0.0 <= shift["tv_distance"] <= 1.0


class TestGauges:
    def test_uptime_and_queue_depth_gauges(self):
        with metrics.collecting() as registry:
            server = _server(telemetry=True)
            _drive(server, requests=2)
            _ok(server.handle({"op": "stats"}))
            assert registry.gauge_value("repro_serve_uptime_requests") == 4.0
            assert registry.gauge_value("repro_serve_queue_depth") == 0.0
