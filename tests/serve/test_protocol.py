"""Protocol validation: the declared endpoint table is enforced literally."""

from __future__ import annotations

import pytest

from repro.serve import ENDPOINTS, ProtocolError, validate_request
from repro.serve.protocol import OPTIONAL_FIELDS, SHUTDOWN_OP


class TestValidRequests:
    def test_every_endpoint_validates_with_sample_fields(self):
        samples = {str: "name", int: 3, (int, float): 1.5}
        for name, spec in ENDPOINTS.items():
            request = {"op": name}
            for field, types in spec.fields.items():
                request[field] = samples[types]
            op, fields = validate_request(request)
            assert op == name
            assert set(fields) == set(spec.fields)

    def test_optional_params_passed_through(self):
        op, fields = validate_request(
            {"op": "analyze", "table": "t", "column": "x",
             "params": {"k": 32}}
        )
        assert op == "analyze"
        assert fields["params"] == {"k": 32}

    def test_optional_params_omittable(self):
        _, fields = validate_request(
            {"op": "analyze", "table": "t", "column": "x"}
        )
        assert "params" not in fields

    def test_int_accepted_where_float_declared(self):
        _, fields = validate_request(
            {"op": "estimate_quantile", "table": "t", "column": "x", "q": 1}
        )
        assert fields["q"] == 1

    def test_watch_cursor_passed_through(self):
        op, fields = validate_request({"op": "watch", "cursor": 3})
        assert op == "watch"
        assert fields["cursor"] == 3

    def test_watch_cursor_omittable(self):
        _, fields = validate_request({"op": "watch"})
        assert "cursor" not in fields


class TestRejection:
    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request(["op", "ping"])

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({"table": "t"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "drop_table"})

    def test_shutdown_is_not_an_endpoint(self):
        """The transport-level shutdown op bypasses the endpoint table."""
        assert SHUTDOWN_OP not in ENDPOINTS
        with pytest.raises(ProtocolError):
            validate_request({"op": SHUTDOWN_OP})

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError, match="requires field"):
            validate_request({"op": "estimate_range", "table": "t",
                              "column": "x", "lo": 0.0})

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_request({"op": "modify", "table": "t", "column": "x",
                              "rows": "many"})

    def test_bool_not_accepted_as_number(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_request({"op": "modify", "table": "t", "column": "x",
                              "rows": True})

    def test_wrong_optional_type_rejected(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_request({"op": "analyze", "table": "t", "column": "x",
                              "params": [1, 2]})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unexpected fields"):
            validate_request({"op": "ping", "extra": 1})

    def test_unknown_fields_rejected_on_telemetry_endpoints(self):
        for op in ("stats", "health", "watch"):
            with pytest.raises(ProtocolError, match="unexpected fields"):
                validate_request({"op": op, "extra": 1})

    def test_watch_cursor_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_request({"op": "watch", "cursor": "0"})

    def test_watch_cursor_bool_rejected(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_request({"op": "watch", "cursor": True})


class TestDeclarations:
    def test_optional_fields_only_for_declared_endpoints(self):
        assert set(OPTIONAL_FIELDS) <= set(ENDPOINTS)

    def test_every_endpoint_has_help(self):
        for spec in ENDPOINTS.values():
            assert spec.help.strip()
