"""AdmissionController: bounded in-flight builds, bounded queue, shed."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ParameterError
from repro.serve import AdmissionController, AdmissionDecision


class TestDecisions:
    def test_free_slot_is_admitted(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        assert controller.try_acquire() == AdmissionDecision.ADMITTED
        assert controller.inflight == 1
        controller.release()
        assert controller.inflight == 0

    def test_full_slots_and_queue_shed(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.try_acquire()
        assert controller.try_acquire() == AdmissionDecision.SHED
        controller.release()
        assert controller.counters() == {
            "admitted": 1, "queued": 0, "shed": 1,
        }

    def test_queue_timeout_sheds(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=1, timeout=0.05
        )
        controller.try_acquire()
        assert controller.try_acquire() == AdmissionDecision.SHED
        controller.release()
        assert controller.counters()["shed"] == 1

    def test_queued_caller_runs_after_release(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=1, timeout=10.0
        )
        controller.try_acquire()
        decisions = []
        waiting = threading.Event()

        def queued_caller():
            waiting.set()
            decisions.append(controller.try_acquire())
            controller.release()

        thread = threading.Thread(target=queued_caller)
        thread.start()
        assert waiting.wait(timeout=5.0)
        controller.release()
        thread.join(timeout=5.0)
        assert decisions == [AdmissionDecision.QUEUED]
        assert controller.counters() == {
            "admitted": 1, "queued": 1, "shed": 0,
        }

    def test_release_without_slot_rejected(self):
        with pytest.raises(ParameterError):
            AdmissionController().release()


class TestSlotContextManager:
    def test_slot_releases_on_exit(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        with controller.slot() as decision:
            assert decision == AdmissionDecision.ADMITTED
            assert controller.inflight == 1
        assert controller.inflight == 0

    def test_shed_slot_releases_nothing(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.try_acquire()
        with controller.slot() as decision:
            assert decision == AdmissionDecision.SHED
        assert controller.inflight == 1  # the held slot is untouched
        controller.release()

    def test_slot_releases_on_exception(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with controller.slot():
                raise RuntimeError("build blew up")
        assert controller.inflight == 0


class TestValidation:
    def test_limits_validated(self):
        with pytest.raises(ParameterError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ParameterError):
            AdmissionController(max_queue=-1)
