"""Regression: the accept loop must never block the event loop.

``repro lint --flow`` (CON102) found ``_serve_async`` calling
``atomic_write_text`` (fsync + rename) and ``server.checkpoint``
directly on the event loop — one slow disk write would stall every
connected client.  Both now run via ``asyncio.to_thread``; this test
pins that shape statically so the blocking form cannot quietly return.
"""

from __future__ import annotations

import ast
import pathlib

SERVER_PY = (
    pathlib.Path(__file__).resolve().parents[2]
    / "src" / "repro" / "serve" / "server.py"
)

#: callables _serve_async may only run through asyncio.to_thread.
OFFLOADED = {"checkpoint", "atomic_write_text"}


def _async_defs():
    tree = ast.parse(SERVER_PY.read_text())
    return [
        node for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    ]


def _tail(func: ast.AST) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class TestServeAsyncStaysNonBlocking:
    def test_blocking_helpers_are_never_called_directly(self):
        for fn in _async_defs():
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    called = _tail(node.func)
                    assert called not in OFFLOADED, (
                        f"async def {fn.name} calls {called}() directly "
                        "on the event loop; wrap it in asyncio.to_thread"
                    )

    def test_checkpoint_and_ready_file_go_through_to_thread(self):
        [serve] = [f for f in _async_defs() if f.name == "_serve_async"]
        offloaded = set()
        for node in ast.walk(serve):
            if not isinstance(node, ast.Call):
                continue
            if _tail(node.func) != "to_thread":
                continue
            for arg in node.args:
                name = _tail(arg)
                if name in OFFLOADED:
                    offloaded.add(name)
        assert offloaded == OFFLOADED, (
            "_serve_async no longer offloads its checkpoint/ready-file "
            f"writes via asyncio.to_thread (saw {sorted(offloaded)})"
        )
