"""StatsCache: version-validated LRU semantics over AutoStatistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import AutoStatistics, RefreshPolicy
from repro.exceptions import ParameterError, StatisticsNotFoundError
from repro.serve import StatsCache


def _auto():
    return AutoStatistics(policy=RefreshPolicy(fraction=0.2, floor_rows=100))


def _table(name="t", n=20_000):
    return Table(name, {"x": np.arange(n)})


class TestLookup:
    def test_first_lookup_misses_then_hits(self):
        table, auto = _table(), _auto()
        auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto)
        entry = cache.lookup(table, "x")
        again = cache.lookup(table, "x")
        assert again is entry
        assert cache.counters() == {
            "hits": 1, "misses": 1, "refreshes": 0, "evictions": 0,
        }

    def test_unanalyzed_column_raises(self):
        table, auto = _table(), _auto()
        cache = StatsCache(auto)
        with pytest.raises(StatisticsNotFoundError):
            cache.lookup(table, "x")
        assert len(cache) == 0

    def test_stale_lookup_refreshes_entry(self):
        table, auto = _table(), _auto()
        auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto)
        first = cache.lookup(table, "x")
        auto.record_modifications("t", "x", 5_000)  # past the threshold
        refreshed = cache.lookup(table, "x", rng=1)
        assert refreshed is not first
        assert refreshed.version == first.version + 1
        assert cache.counters()["refreshes"] == 1

    def test_entry_bundles_index_at_version(self):
        table, auto = _table(), _auto()
        auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto)
        entry = cache.lookup(table, "x")
        assert entry.index.k == entry.statistics.histogram.k
        assert entry.version == auto.manager.catalog.version("t", "x")


class TestInstall:
    def test_install_makes_peek_visible(self):
        table, auto = _table(), _auto()
        stats = auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto)
        entry = cache.install(stats)
        assert cache.peek("t", "x") is entry
        assert cache.peek("t", "missing") is None


class TestLru:
    def test_capacity_evicts_least_recent(self):
        auto = _auto()
        tables = [_table(name) for name in ("a", "b", "c")]
        for table in tables:
            auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto, capacity=2)
        cache.lookup(tables[0], "x")
        cache.lookup(tables[1], "x")
        cache.lookup(tables[0], "x")  # refresh a's recency
        cache.lookup(tables[2], "x")  # evicts b, the least recent
        assert cache.peek("b", "x") is None
        assert cache.peek("a", "x") is not None
        assert cache.peek("c", "x") is not None
        assert cache.counters()["evictions"] == 1

    def test_invalidate_drops_entry(self):
        table, auto = _table(), _auto()
        auto.analyze(table, "x", k=8, f=0.3, rng=0)
        cache = StatsCache(auto)
        cache.lookup(table, "x")
        cache.invalidate("t", "x")
        assert cache.peek("t", "x") is None
        cache.invalidate("t", "x")  # no-op when absent

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            StatsCache(capacity=0)
