"""StatsServer: endpoint behaviour, determinism, degraded mode, TCP loop."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import RefreshPolicy
from repro.serve import AdmissionController, StatsServer, serve_forever
from repro.serve.protocol import SHUTDOWN_OP


def _server(**kwargs):
    kwargs.setdefault(
        "policy", RefreshPolicy(fraction=0.2, floor_rows=100)
    )
    kwargs.setdefault("build_params", {"k": 8, "f": 0.3})
    return StatsServer(
        {"t": Table("t", {"x": np.arange(20_000)})}, **kwargs
    )


def _ok(response):
    assert response["ok"], response
    return response["result"]


class TestEndpoints:
    def test_ping(self):
        assert _ok(_server().handle({"op": "ping"})) == {"pong": True}

    def test_analyze_then_estimates(self):
        server = _server()
        built = _ok(server.handle(
            {"op": "analyze", "table": "t", "column": "x"}
        ))
        assert built["k"] == 8
        assert built["version"] == 1
        assert built["admission"] == "admitted"
        assert not built["degraded"]

        rng = _ok(server.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": 9_999.0}
        ))
        assert rng["rows"] == pytest.approx(10_000, rel=0.2)
        eq = _ok(server.handle(
            {"op": "estimate_equality", "table": "t", "column": "x",
             "value": 5.0}
        ))
        assert eq["rows"] >= 0
        quant = _ok(server.handle(
            {"op": "estimate_quantile", "table": "t", "column": "x",
             "q": 0.5}
        ))
        assert quant["value"] == pytest.approx(10_000, rel=0.2)
        distinct = _ok(server.handle(
            {"op": "estimate_distinct", "table": "t", "column": "x"}
        ))
        assert distinct["distinct"] > 0

    def test_estimate_cold_builds_on_demand(self):
        server = _server()
        result = _ok(server.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": 100.0}
        ))
        assert result["version"] == 1
        assert server.cache.counters()["misses"] == 1

    def test_modify_arms_staleness(self):
        server = _server()
        _ok(server.handle({"op": "analyze", "table": "t", "column": "x"}))
        _ok(server.handle(
            {"op": "modify", "table": "t", "column": "x", "rows": 5_000}
        ))
        result = _ok(server.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": 100.0}
        ))
        assert result["version"] == 2  # the touch triggered the refresh
        assert server.cache.counters()["refreshes"] == 1

    def test_status_counts_requests(self):
        server = _server()
        server.handle({"op": "ping"})
        server.handle({"op": "bogus"})  # rejected before counting
        status = _ok(server.handle({"op": "status"}))
        assert status["requests"] == {"ping": 1, "status": 1}
        assert status["tables"] == ["t"]
        assert status["columns"] == {"t": ["x"]}
        assert status["durable"] is False

    def test_error_envelope(self):
        response = _server().handle(
            {"op": "estimate_distinct", "table": "nope", "column": "x"}
        )
        assert not response["ok"]
        assert response["code"] == "StatisticsNotFoundError"
        bad = _server().handle({"op": "bogus"})
        assert not bad["ok"]
        assert bad["code"] == "ProtocolError"


class TestDeterminism:
    def test_same_seed_builds_identical_statistics(self):
        responses = []
        for _ in range(2):
            server = _server(seed=7)
            responses.append(_ok(server.handle(
                {"op": "analyze", "table": "t", "column": "x"}
            )))
        assert responses[0] == responses[1]

    def test_build_rng_depends_on_build_number_not_arrival(self):
        server_a = _server(seed=7)
        _ok(server_a.handle({"op": "analyze", "table": "t", "column": "x"}))
        _ok(server_a.handle(
            {"op": "modify", "table": "t", "column": "x", "rows": 5_000}
        ))
        second_a = _ok(server_a.handle(
            {"op": "estimate_distinct", "table": "t", "column": "x"}
        ))

        server_b = _server(seed=7)
        _ok(server_b.handle({"op": "analyze", "table": "t", "column": "x"}))
        # Interleave unrelated requests: the second build must not care.
        for _ in range(5):
            _ok(server_b.handle({"op": "ping"}))
        _ok(server_b.handle(
            {"op": "modify", "table": "t", "column": "x", "rows": 5_000}
        ))
        second_b = _ok(server_b.handle(
            {"op": "estimate_distinct", "table": "t", "column": "x"}
        ))
        assert second_a == second_b


class TestDegradedMode:
    def test_shed_analyze_serves_last_known_good(self):
        server = _server(
            admission=AdmissionController(max_inflight=1, max_queue=0)
        )
        _ok(server.handle({"op": "analyze", "table": "t", "column": "x"}))
        server.admission.try_acquire()  # hold the only build slot
        try:
            result = _ok(server.handle(
                {"op": "analyze", "table": "t", "column": "x"}
            ))
        finally:
            server.admission.release()
        assert result["admission"] == "shed"
        assert result["degraded"] is True
        assert result["pages_read"] == 0
        assert server.degraded_served == 1

    def test_shed_cold_build_is_overload(self):
        server = _server(
            admission=AdmissionController(max_inflight=1, max_queue=0)
        )
        server.admission.try_acquire()
        try:
            response = server.handle(
                {"op": "analyze", "table": "t", "column": "x"}
            )
        finally:
            server.admission.release()
        assert not response["ok"]
        assert response["code"] == "ServerOverloadError"


class TestWarmStart:
    def test_store_round_trip_serves_without_rebuild(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = _server(store=store_dir, seed=3)
        _ok(first.handle({"op": "analyze", "table": "t", "column": "x"}))
        want = _ok(first.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": 9_999.0}
        ))
        first.checkpoint()

        warm = _server(store=store_dir, seed=3)
        got = _ok(warm.handle(
            {"op": "estimate_range", "table": "t", "column": "x",
             "lo": 0.0, "hi": 9_999.0}
        ))
        assert got == want
        assert warm.admission.counters()["admitted"] == 0  # no rebuild
        assert _ok(warm.handle({"op": "status"}))["durable"] is True


class TestTcpFrontEnd:
    def test_json_lines_round_trip_and_shutdown(self, tmp_path):
        ready = tmp_path / "ready"
        server = _server(seed=5)
        thread = threading.Thread(
            target=serve_forever,
            kwargs={"server": server, "ready_path": str(ready)},
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        token = ready.read_text().split()
        assert token[0] == "SERVE_READY"
        host, port = token[1], int(token[2])

        with socket.create_connection((host, port), timeout=5.0) as sock:
            stream = sock.makefile("rwb")

            def roundtrip(payload):
                stream.write((json.dumps(payload) + "\n").encode())
                stream.flush()
                return json.loads(stream.readline())

            assert _ok(roundtrip({"op": "ping"})) == {"pong": True}
            built = _ok(roundtrip(
                {"op": "analyze", "table": "t", "column": "x"}
            ))
            assert built["version"] == 1
            stream.write(b"this is not json\n")
            stream.flush()
            garbage = json.loads(stream.readline())
            assert not garbage["ok"]
            assert garbage["code"] == "ProtocolError"
            bye = roundtrip({"op": SHUTDOWN_OP})
            assert _ok(bye) == {"stopping": True}
        thread.join(timeout=10.0)
        assert not thread.is_alive()
