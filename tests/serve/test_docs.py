"""docs/SERVING.md and docs/INDEX.md are documented-by-construction.

SERVING.md promises its endpoint table mirrors
``repro.serve.protocol.ENDPOINTS`` and that the serving metric/span/
scenario names it cites are declared in ``repro.obs.catalog`` and the
bench registry.  INDEX.md promises to list every documentation file.
These tests enforce both promises literally, mirroring
``tests/obs/test_docs.py``: the served surface cannot change without the
docs moving in lockstep.
"""

from __future__ import annotations

import pathlib
import re

from repro.obs.catalog import METRICS, SPANS
from repro.serve.protocol import ENDPOINTS, OPTIONAL_FIELDS, SHUTDOWN_OP

ROOT = pathlib.Path(__file__).resolve().parents[2]
SERVING_DOC = ROOT / "docs" / "SERVING.md"
INDEX_DOC = ROOT / "docs" / "INDEX.md"
README = ROOT / "README.md"

#: Exposition-format suffixes a histogram metric may legitimately appear
#: with in prose/examples (Prometheus-style derived series).
_EXPOSITION_SUFFIXES = ("_bucket", "_count", "_sum")

_SERVE_METRIC_NAME = re.compile(r"\brepro_serve_[a-z0-9_]+\b")
#: Span-shaped names; the lookbehind skips dotted module paths such as
#: ``repro.serve.protocol``.
_SERVE_SPAN_NAME = re.compile(r"(?<![.\w])serve\.[a-z_]+\b")


def _endpoint_table() -> list[tuple[str, str]]:
    """(op, required-fields cell) per row of the SERVING.md endpoint table."""
    section = SERVING_DOC.read_text().split("## Endpoints", 1)[1]
    section = section.split("\n## ", 1)[0]
    return re.findall(r"^\| `([a-z_]+)` \|([^|]*)\|", section, re.MULTILINE)


class TestEndpointTableSync:
    """The endpoint table covers exactly the declared protocol."""

    def test_every_endpoint_is_documented(self):
        """No op can be added to ENDPOINTS without a doc table row."""
        documented = {op for op, _ in _endpoint_table()}
        missing = set(ENDPOINTS) - documented
        assert not missing, f"undocumented endpoints: {sorted(missing)}"

    def test_no_phantom_endpoints_in_table(self):
        """The table never lists an op the protocol doesn't declare."""
        documented = {op for op, _ in _endpoint_table()}
        phantom = documented - set(ENDPOINTS)
        assert not phantom, f"doc lists undeclared endpoints: {sorted(phantom)}"
        assert documented == set(ENDPOINTS)

    def test_required_fields_listed_per_row(self):
        """Each row's fields cell names every required field in backticks."""
        rows = dict(_endpoint_table())
        for op, spec in ENDPOINTS.items():
            cell = rows[op]
            for field in spec.fields:
                assert f"`{field}`" in cell, (
                    f"{op}: required field {field!r} missing from its doc row"
                )
            for field in OPTIONAL_FIELDS.get(op, {}):
                assert f"`{field}`" in cell, (
                    f"{op}: optional field {field!r} missing from its doc row"
                )

    def test_shutdown_op_documented_outside_table(self):
        """The transport-level shutdown op is documented, but not as a row."""
        assert f"`{SHUTDOWN_OP}`" in SERVING_DOC.read_text()
        assert SHUTDOWN_OP not in {op for op, _ in _endpoint_table()}


class TestObservabilitySync:
    """Serving metric/span names cited in SERVING.md match the catalog."""

    def _doc_metric_names(self) -> set[str]:
        raw = set(_SERVE_METRIC_NAME.findall(SERVING_DOC.read_text()))
        names = set()
        for name in raw:
            for suffix in _EXPOSITION_SUFFIXES:
                base = name.removesuffix(suffix)
                if base != name and base in METRICS:
                    name = base
                    break
            names.add(name)
        return names

    def test_every_serve_metric_is_documented(self):
        declared = {n for n in METRICS if n.startswith("repro_serve_")}
        missing = declared - self._doc_metric_names()
        assert not missing, f"undocumented serve metrics: {sorted(missing)}"

    def test_no_phantom_serve_metrics(self):
        phantom = self._doc_metric_names() - set(METRICS)
        assert not phantom, f"doc cites undeclared metrics: {sorted(phantom)}"

    def test_serve_spans_documented_and_declared(self):
        text = SERVING_DOC.read_text()
        declared = {n for n in SPANS if n.startswith("serve.")}
        missing = [n for n in declared if f"`{n}`" not in text]
        assert not missing, f"undocumented serve spans: {missing}"
        phantom = set(_SERVE_SPAN_NAME.findall(text)) - set(SPANS)
        assert not phantom, f"doc cites undeclared spans: {sorted(phantom)}"

    def test_serve_scenarios_documented(self):
        from repro.obs.bench import SCENARIOS

        text = SERVING_DOC.read_text()
        serve = [n for n in SCENARIOS if n.startswith("serve_")]
        assert serve, "no serve_* scenarios registered"
        missing = [n for n in serve if f"`{n}`" not in text]
        assert not missing, f"undocumented serve scenarios: {missing}"


class TestDocsIndex:
    """docs/INDEX.md is the complete navigation page README points at."""

    def test_every_docs_file_is_indexed(self):
        """Each docs/*.md (except the index itself) is linked from INDEX.md."""
        text = INDEX_DOC.read_text()
        missing = [
            path.name
            for path in sorted(ROOT.glob("docs/*.md"))
            if path != INDEX_DOC and f"]({path.name})" not in text
        ]
        assert not missing, f"docs files missing from INDEX.md: {missing}"

    def test_no_phantom_docs_links(self):
        """Every docs-relative link in INDEX.md resolves to a real file."""
        text = INDEX_DOC.read_text()
        for target in re.findall(r"\]\(([A-Za-z0-9_./-]+\.md)\)", text):
            assert (INDEX_DOC.parent / target).resolve().is_file(), (
                f"INDEX.md links missing file: {target}"
            )

    def test_top_level_docs_are_indexed(self):
        text = INDEX_DOC.read_text()
        for name in ("README", "DESIGN", "EXPERIMENTS", "ROADMAP"):
            assert f"](../{name}.md)" in text, f"{name}.md missing from index"

    def test_readme_links_the_index(self):
        assert "docs/INDEX.md" in README.read_text()
