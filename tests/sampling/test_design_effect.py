"""Tests for the intraclass-correlation / design-effect model."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sampling.design_effect import (
    design_effect,
    effective_sample_size,
    estimate_rho_from_pilot,
    intraclass_correlation,
    required_blocks_with_correlation,
)
from repro.storage import HeapFile


def paged(values, b):
    values = np.asarray(values)
    return [values[i : i + b] for i in range(0, values.size, b)]


class TestIntraclassCorrelation:
    def test_random_placement_is_near_zero(self, rng):
        values = rng.permutation(10_000)
        rho = intraclass_correlation(paged(values, 50))
        assert abs(rho) < 0.05

    def test_sorted_placement_is_near_one(self):
        values = np.arange(10_000)
        rho = intraclass_correlation(paged(values, 50))
        assert rho > 0.95

    def test_partial_clustering_is_in_between(self, rng):
        from repro.storage.layout import partially_clustered_layout

        base = np.repeat(np.arange(200), 50)
        partial = partially_clustered_layout(base, cluster_fraction=0.5, rng=rng)
        rho_partial = intraclass_correlation(paged(partial, 50))
        shuffled = base[rng.permutation(base.size)]
        rho_random = intraclass_correlation(paged(shuffled, 50))
        assert rho_random < rho_partial < 1.0

    def test_distribution_free(self):
        """Rank-based: a monotone transform of the values leaves rho fixed."""
        values = np.arange(10_000, dtype=np.float64)
        rho_linear = intraclass_correlation(paged(values, 50))
        rho_exp = intraclass_correlation(paged(np.exp(values / 2_000), 50))
        assert rho_linear == pytest.approx(rho_exp, abs=0.01)

    def test_too_few_pages_rejected(self):
        with pytest.raises(ParameterError):
            intraclass_correlation([np.arange(10)])


class TestDesignEffect:
    def test_rho_zero_is_one(self):
        assert design_effect(100, 0.0) == 1.0

    def test_rho_one_is_b(self):
        assert design_effect(100, 1.0) == 100.0

    def test_effective_size_endpoints(self):
        # Scenario (a): every tuple counts.  Scenario (b): one per page.
        assert effective_sample_size(10_000, 100, 0.0) == 10_000
        assert effective_sample_size(10_000, 100, 1.0) == 100

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            design_effect(0, 0.5)
        with pytest.raises(ParameterError):
            design_effect(10, 2.0)
        with pytest.raises(ParameterError):
            effective_sample_size(-1, 10, 0.0)


class TestPilotEstimation:
    def test_detects_layouts(self):
        values = np.repeat(np.arange(400), 50)
        random_hf = HeapFile.from_values(
            values, layout="random", rng=0, blocking_factor=50
        )
        sorted_hf = HeapFile.from_values(
            values, layout="sorted", blocking_factor=50
        )
        rho_random = estimate_rho_from_pilot(random_hf, pilot_blocks=80, rng=1)
        rho_sorted = estimate_rho_from_pilot(sorted_hf, pilot_blocks=80, rng=1)
        assert rho_random < 0.1
        assert rho_sorted > 0.8

    def test_pilot_costs_page_reads(self):
        hf = HeapFile.from_values(np.arange(10_000), rng=0, blocking_factor=50)
        estimate_rho_from_pilot(hf, pilot_blocks=20, rng=1)
        assert hf.iostats.page_reads == 20

    def test_small_pilot_rejected(self):
        hf = HeapFile.from_values(np.arange(100), rng=0, blocking_factor=10)
        with pytest.raises(ParameterError):
            estimate_rho_from_pilot(hf, pilot_blocks=1)


class TestCorrectedBlockBudget:
    def test_rho_zero_matches_paper_g0(self):
        from repro.core import bounds

        n, k, f, gamma, b = 10**6, 100, 0.2, 0.01, 100
        g = required_blocks_with_correlation(n, k, f, gamma, b, rho=0.0)
        assert g == bounds.initial_blocks(n, k, f, gamma, b)

    def test_rho_one_matches_scenario_b(self):
        from repro.core import bounds

        n, k, f, gamma, b = 10**6, 100, 0.2, 0.01, 100
        r = bounds.corollary1_sample_size(n, k, f, gamma)
        g = required_blocks_with_correlation(n, k, f, gamma, b, rho=1.0)
        assert g == r  # one useful tuple per page: g = r blocks

    def test_monotone_in_rho(self):
        budgets = [
            required_blocks_with_correlation(10**6, 100, 0.2, 0.01, 100, rho)
            for rho in (0.0, 0.2, 0.5, 1.0)
        ]
        assert budgets == sorted(budgets)

    def test_prediction_matches_cvb_ordering(self):
        """The model's predicted budgets order layouts the same way CVB's
        measured spend does (random < partial < sorted)."""
        from repro.experiments.runner import build_heapfile, cvb_sampling_cost
        from repro.workloads import make_dataset

        dataset = make_dataset("zipf2", 100_000, rng=2)
        predictions, spends = [], []
        for layout in ("random", "partial", "sorted"):
            hf = build_heapfile(dataset.values, layout, 50, rng=3)
            rho = estimate_rho_from_pilot(hf, pilot_blocks=60, rng=4)
            predictions.append(
                required_blocks_with_correlation(
                    dataset.n, 50, 0.2, 0.01, 50, max(0.0, rho)
                )
            )
            spends.append(
                cvb_sampling_cost(
                    hf, dataset.values, k=50, f=0.2, rng=5
                ).blocks_sampled
            )
        assert predictions == sorted(predictions)
        assert spends[0] <= spends[1] <= spends[2] * 1.01
