"""Tests for the samplers' fault-tolerant access paths.

The load-bearing claims: without retry/budget the samplers are byte-for-byte
the original code paths (same values, same RNG stream, same accounting); with
them, unreadable pages are skipped and *replaced by fresh draws*, so batches
stay full-size and samples stay uniform over the readable portion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BuildAbortedError, PageCorruptionError
from repro.sampling.block_sampler import BlockSampleStream, sample_blocks
from repro.sampling.record_sampler import sample_records_from_file
from repro.storage.faults import (
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
)
from repro.storage.heapfile import HeapFile

N, BF = 2000, 20


def make_file(rng=0):
    return HeapFile.from_values(
        np.arange(1, N + 1), layout="random", rng=rng, blocking_factor=BF
    )


def make_faulty(transient=0.3, corrupt=0.1, seed=11, rng=0):
    return FaultyHeapFile(
        make_file(rng=rng),
        FaultPolicy(transient_rate=transient, corrupt_fraction=corrupt, seed=seed),
    )


RETRY = RetryPolicy(max_attempts=8, seed=1)


class TestFaultFreeEquivalence:
    """retry/budget must not change results on a healthy file."""

    def test_sample_blocks_same_values_same_reads(self):
        a, b = make_file(), make_file()
        plain = sample_blocks(a, 10, rng=42)
        resilient = sample_blocks(b, 10, rng=42, retry=RETRY)
        np.testing.assert_array_equal(plain, resilient)
        assert a.iostats.page_reads == b.iostats.page_reads

    def test_stream_same_values_same_reads(self):
        a, b = make_file(), make_file()
        s1 = BlockSampleStream(a, rng=7)
        s2 = BlockSampleStream(b, rng=7, retry=RETRY)
        np.testing.assert_array_equal(s1.take(12), s2.take(12))
        assert s2.pages_skipped == 0
        assert a.iostats.snapshot() == b.iostats.snapshot()

    def test_record_sampler_same_draws(self):
        # The resilient path consumes the RNG differently by design, so
        # equivalence here means distributional sanity, not bit-equality:
        # on a healthy file it returns exactly r readable records.
        hf = make_file()
        sample = sample_records_from_file(hf, 50, rng=3, retry=RETRY)
        assert sample.size == 50
        assert set(sample).issubset(set(range(1, N + 1)))


class TestBlockStreamSkipAndRedraw:
    def test_batches_stay_full_size(self):
        faulty = make_faulty()
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY)
        batch = stream.take(20)
        # 20 full readable pages: skipped pages were replaced by redraws.
        assert batch.size == 20 * BF
        assert stream.pages_taken == 20 + stream.pages_skipped

    def test_skipped_pages_are_the_unreadable_ones(self):
        faulty = make_faulty(transient=0.0)  # only corruption: deterministic
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY)
        stream.take(faulty.num_pages)  # ask for everything
        assert stream.exhausted
        assert set(stream.skipped_ids) == set(faulty.corrupt_pages)

    def test_sample_values_all_from_readable_pages(self):
        faulty = make_faulty()
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY)
        batch = stream.take(30)
        readable = set(faulty.readable_values_unaccounted().tolist())
        assert set(batch.tolist()).issubset(readable)

    def test_skipped_pages_never_reoffered(self):
        faulty = make_faulty(transient=0.0)
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY)
        stream.take(faulty.num_pages)
        taken = stream.taken_ids.tolist()
        assert len(taken) == len(set(taken))  # each page consumed once

    def test_without_retry_faults_propagate(self):
        faulty = make_faulty(transient=0.0)
        stream = BlockSampleStream(faulty, rng=5)
        with pytest.raises(PageCorruptionError):
            stream.take(faulty.num_pages)

    def test_budget_abort_propagates(self):
        faulty = make_faulty(transient=0.0, corrupt=0.3)
        tracker = ReadBudget(max_skipped_pages=1).tracker()
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY, budget=tracker)
        with pytest.raises(BuildAbortedError):
            stream.take(faulty.num_pages)

    def test_take_one_tuple_per_block_skips_too(self):
        faulty = make_faulty()
        stream = BlockSampleStream(faulty, rng=5, retry=RETRY)
        all_tuples, reps = stream.take_one_tuple_per_block(15, rng=6)
        assert reps.size == 15
        assert all_tuples.size == 15 * BF


class TestResilientRecordSampler:
    def test_sample_uniform_over_readable_records(self):
        faulty = make_faulty()
        sample = sample_records_from_file(faulty, 100, rng=9, retry=RETRY)
        assert sample.size == 100
        readable = set(faulty.readable_values_unaccounted().tolist())
        assert set(sample.tolist()).issubset(readable)

    def test_without_replacement_terminates_and_is_readable_only(self):
        faulty = make_faulty()
        sample = sample_records_from_file(
            faulty, 100, rng=9, with_replacement=False, retry=RETRY
        )
        assert sample.size == 100
        assert len(set(sample.tolist())) == 100  # genuinely without replacement

    def test_short_sample_when_readable_records_run_out(self):
        # Corrupt most pages: fewer readable records than requested.
        faulty = make_faulty(transient=0.0, corrupt=0.9, seed=2)
        readable_records = faulty.num_readable_pages * BF
        assert readable_records < N
        sample = sample_records_from_file(
            faulty, N, rng=9, with_replacement=False, retry=RETRY
        )
        assert 0 < sample.size <= readable_records

    def test_deterministic_across_runs(self):
        def run():
            faulty = make_faulty()
            return sample_records_from_file(
                faulty, 80, rng=13, retry=RETRY
            ).tolist()

        assert run() == run()

    def test_budget_abort_propagates(self):
        faulty = make_faulty(transient=0.5, corrupt=0.0, seed=4)
        tracker = ReadBudget(max_failed_reads=1).tracker()
        with pytest.raises(BuildAbortedError):
            sample_records_from_file(
                faulty, 200, rng=9, retry=RetryPolicy(max_attempts=2), budget=tracker
            )
