"""Tests for Bernoulli and systematic page sampling."""

import numpy as np
import pytest

from repro.core.histogram import EquiHeightHistogram
from repro.core.error_metrics import max_error_fraction
from repro.exceptions import ParameterError
from repro.sampling.page_samplers import (
    bernoulli_page_sample,
    systematic_page_sample,
)
from repro.storage import HeapFile


class TestBernoulli:
    def test_expected_size(self, rng):
        hf = HeapFile(np.arange(100_000), blocking_factor=100)
        out = bernoulli_page_sample(hf, 0.2, rng)
        assert out.size == pytest.approx(20_000, rel=0.25)
        # Whole pages: size is a multiple of the blocking factor.
        assert out.size % 100 == 0

    def test_p_zero_and_one(self, rng):
        hf = HeapFile(np.arange(1000), blocking_factor=10)
        assert bernoulli_page_sample(hf, 0.0, rng).size == 0
        assert bernoulli_page_sample(hf, 1.0, rng).size == 1000

    def test_charges_page_reads(self, rng):
        hf = HeapFile(np.arange(1000), blocking_factor=10)
        out = bernoulli_page_sample(hf, 0.5, rng)
        assert hf.iostats.page_reads == out.size // 10

    def test_invalid_p_rejected(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        with pytest.raises(ParameterError):
            bernoulli_page_sample(hf, 1.5, rng)


class TestSystematic:
    def test_reads_every_stride_th_page(self, rng):
        hf = HeapFile(np.arange(1000), blocking_factor=10)
        out = systematic_page_sample(hf, stride=4, rng=rng)
        assert out.size in (250, 260)  # 25 pages, +-1 from the offset
        assert hf.iostats.page_reads == out.size // 10

    def test_stride_one_is_full_scan(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        out = systematic_page_sample(hf, stride=1, rng=rng)
        np.testing.assert_array_equal(np.sort(out), np.arange(100))

    def test_invalid_stride_rejected(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        with pytest.raises(ParameterError):
            systematic_page_sample(hf, stride=0, rng=rng)

    def test_empty_file(self, rng):
        hf = HeapFile(np.array([]), blocking_factor=10)
        assert systematic_page_sample(hf, stride=3, rng=rng).size == 0

    def test_bias_on_periodic_layout(self):
        """The documented failure mode: when the layout is periodic with a
        period sharing a factor with the stride, systematic sampling sees a
        biased slice while Bernoulli sampling does not."""
        # Period-4 pages: page i holds only values congruent to i mod 4.
        b = 10
        pages = [np.full(b, i % 4) for i in range(400)]
        hf = HeapFile(np.concatenate(pages), blocking_factor=b)

        systematic_errors, bernoulli_errors = [], []
        data = np.sort(hf.values_unaccounted())
        for seed in range(10):
            sys_sample = systematic_page_sample(hf, stride=4, rng=seed)
            hist = EquiHeightHistogram.from_values(sys_sample, 4)
            systematic_errors.append(
                max_error_fraction(hist.recount(data).counts)
            )
            bern_sample = bernoulli_page_sample(hf, 0.25, rng=seed)
            hist = EquiHeightHistogram.from_values(bern_sample, 4)
            bernoulli_errors.append(
                max_error_fraction(hist.recount(data).counts)
            )
        assert np.mean(systematic_errors) > 2 * np.mean(bernoulli_errors)
