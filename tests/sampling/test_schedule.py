"""Tests for CVB step schedules."""

import itertools

import pytest

from repro.exceptions import ParameterError
from repro.sampling.schedule import (
    DoublingSchedule,
    LinearSchedule,
    SqrtSchedule,
    make_schedule,
)


def first(schedule, count):
    return list(itertools.islice(schedule.increments(), count))


class TestDoubling:
    def test_paper_sequence(self):
        """g_0 = g, g_1 = g, g_2 = 2g, g_3 = 4g, ... (Section 4.2)."""
        assert first(DoublingSchedule(5), 6) == [5, 5, 10, 20, 40, 80]

    def test_each_increment_equals_total_so_far(self):
        incs = first(DoublingSchedule(3), 8)
        totals = list(itertools.accumulate(incs))
        for i in range(1, len(incs)):
            assert incs[i] == totals[i - 1]

    def test_invalid_initial_rejected(self):
        with pytest.raises(ParameterError):
            DoublingSchedule(0)

    def test_describe(self):
        assert "doubling" in DoublingSchedule(4).describe()


class TestLinear:
    def test_constant(self):
        assert first(LinearSchedule(7), 5) == [7] * 5

    def test_invalid_rejected(self):
        with pytest.raises(ParameterError):
            LinearSchedule(-1)


class TestSqrt:
    def test_increment_is_5_sqrt_n_in_blocks(self):
        sched = SqrtSchedule(n=1_000_000, blocking_factor=100)
        incs = first(sched, 3)
        # 5 * sqrt(1e6) = 5000 tuples = 50 blocks per step.
        assert incs == [50, 50, 50]

    def test_minimum_one_block(self):
        sched = SqrtSchedule(n=100, blocking_factor=10_000)
        assert first(sched, 2) == [1, 1]

    def test_multiplier(self):
        base = SqrtSchedule(n=1_000_000, blocking_factor=100)
        double = SqrtSchedule(n=1_000_000, blocking_factor=100, multiplier=10)
        assert first(double, 1)[0] == 2 * first(base, 1)[0]

    def test_invalid_params_rejected(self):
        with pytest.raises(ParameterError):
            SqrtSchedule(n=0, blocking_factor=10)
        with pytest.raises(ParameterError):
            SqrtSchedule(n=10, blocking_factor=0)
        with pytest.raises(ParameterError):
            SqrtSchedule(n=10, blocking_factor=10, multiplier=0)


class TestFactory:
    def test_doubling(self):
        assert isinstance(make_schedule("doubling", 5), DoublingSchedule)

    def test_linear(self):
        assert isinstance(make_schedule("linear", 5), LinearSchedule)

    def test_sqrt(self):
        sched = make_schedule("sqrt", 5, n=10_000, blocking_factor=10)
        assert isinstance(sched, SqrtSchedule)

    def test_sqrt_needs_n_and_b(self):
        with pytest.raises(ParameterError):
            make_schedule("sqrt", 5)

    def test_unknown_rejected(self):
        with pytest.raises(ParameterError):
            make_schedule("fibonacci", 5)
