"""Tests for block-level sampling and the incremental stream CVB uses."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sampling.block_sampler import (
    BlockSampleStream,
    sample_block_ids,
    sample_blocks,
)
from repro.storage import HeapFile


class TestSampleBlockIds:
    def test_without_replacement_unique(self, rng):
        ids = sample_block_ids(100, 50, rng)
        assert np.unique(ids).size == 50
        assert ids.max() < 100

    def test_with_replacement_allows_duplicates(self, rng):
        ids = sample_block_ids(5, 100, rng, with_replacement=True)
        assert ids.size == 100

    def test_oversample_without_replacement_rejected(self, rng):
        with pytest.raises(ParameterError):
            sample_block_ids(10, 11, rng)

    def test_zero_count(self, rng):
        assert sample_block_ids(10, 0, rng).size == 0

    def test_empty_file_rejected(self, rng):
        with pytest.raises(ParameterError):
            sample_block_ids(0, 1, rng)


class TestSampleBlocks:
    def test_returns_whole_pages(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        out = sample_blocks(hf, 3, rng)
        assert out.size == 30
        assert hf.iostats.page_reads == 3

    def test_all_blocks_is_full_file(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        out = sample_blocks(hf, 10, rng)
        np.testing.assert_array_equal(np.sort(out), np.arange(100))


class TestBlockSampleStream:
    def test_batches_are_disjoint_pages(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        a = stream.take(4)
        b = stream.take(4)
        # Values are distinct integers, so disjoint pages mean disjoint values.
        assert np.intersect1d(a, b).size == 0

    def test_union_covers_file_when_exhausted(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        chunks = [stream.take(3) for _ in range(4)]
        assert stream.exhausted
        union = np.concatenate(chunks)
        np.testing.assert_array_equal(np.sort(union), np.arange(100))

    def test_take_beyond_end_returns_short(self, rng):
        hf = HeapFile(np.arange(50), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        out = stream.take(100)
        assert out.size == 50
        assert stream.exhausted
        assert stream.take(5).size == 0

    def test_counters(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        assert stream.pages_remaining == 10
        stream.take(3)
        assert stream.pages_taken == 3
        assert stream.pages_remaining == 7

    def test_negative_take_rejected(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        with pytest.raises(ParameterError):
            stream.take(-1)

    def test_uniformity_of_first_batch(self):
        """The first batch is a uniform page sample: over many seeds every
        page appears roughly equally often."""
        hf = HeapFile(np.arange(100), blocking_factor=10)
        hits = np.zeros(10)
        for seed in range(2000):
            stream = BlockSampleStream(hf, seed)
            payload = stream.take(2)
            pages = np.unique(payload // 10)
            hits[pages] += 1
        expected = 2000 * 2 / 10
        assert abs(hits - expected).max() < 100

    def test_one_tuple_per_block(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        full, reps = stream.take_one_tuple_per_block(4, rng=rng)
        assert full.size == 40
        assert reps.size == 4
        # Each representative comes from a distinct sampled page.
        rep_pages = np.unique(reps // 10)
        assert rep_pages.size == 4
        assert set(reps) <= set(full)

    def test_one_tuple_per_block_exhaustion(self, rng):
        hf = HeapFile(np.arange(30), blocking_factor=10)
        stream = BlockSampleStream(hf, rng)
        full, reps = stream.take_one_tuple_per_block(10, rng=rng)
        assert full.size == 30
        assert reps.size == 3
