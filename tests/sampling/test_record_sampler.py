"""Tests for record-level sampling primitives."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sampling.record_sampler import (
    bernoulli_sample,
    reservoir_sample,
    sample_records_from_file,
    sample_with_replacement,
    sample_without_replacement,
)
from repro.storage import HeapFile


class TestWithReplacement:
    def test_size(self, rng):
        out = sample_with_replacement(np.arange(100), 250, rng)
        assert out.size == 250

    def test_values_come_from_population(self, rng):
        pop = np.array([2, 4, 8])
        out = sample_with_replacement(pop, 100, rng)
        assert set(out) <= set(pop)

    def test_zero_size(self, rng):
        assert sample_with_replacement(np.arange(10), 0, rng).size == 0

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ParameterError):
            sample_with_replacement(np.array([]), 5, rng)

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ParameterError):
            sample_with_replacement(np.arange(10), -1, rng)

    def test_approximately_uniform(self, rng):
        pop = np.arange(10)
        out = sample_with_replacement(pop, 100_000, rng)
        counts = np.bincount(out, minlength=10)
        assert abs(counts - 10_000).max() < 600  # ~6 sigma


class TestWithoutReplacement:
    def test_no_duplicates(self, rng):
        out = sample_without_replacement(np.arange(1000), 500, rng)
        assert np.unique(out).size == 500

    def test_full_population(self, rng):
        out = sample_without_replacement(np.arange(50), 50, rng)
        np.testing.assert_array_equal(np.sort(out), np.arange(50))

    def test_oversampling_rejected(self, rng):
        with pytest.raises(ParameterError):
            sample_without_replacement(np.arange(10), 11, rng)


class TestBernoulli:
    def test_expected_size(self, rng):
        out = bernoulli_sample(np.arange(100_000), 0.1, rng)
        assert out.size == pytest.approx(10_000, rel=0.1)

    def test_p_zero_and_one(self, rng):
        assert bernoulli_sample(np.arange(100), 0.0, rng).size == 0
        assert bernoulli_sample(np.arange(100), 1.0, rng).size == 100

    def test_invalid_p_rejected(self, rng):
        with pytest.raises(ParameterError):
            bernoulli_sample(np.arange(10), 1.5, rng)


class TestReservoir:
    def test_size_capped(self, rng):
        out = reservoir_sample(iter(range(1000)), 32, rng)
        assert out.size == 32

    def test_short_stream_returned_whole(self, rng):
        out = reservoir_sample(iter(range(5)), 32, rng)
        np.testing.assert_array_equal(np.sort(out), np.arange(5))

    def test_uniformity(self):
        """Each element of a 20-stream should land in a 5-reservoir with
        probability 1/4."""
        hits = np.zeros(20)
        for seed in range(3000):
            out = reservoir_sample(iter(range(20)), 5, seed)
            hits[out] += 1
        expected = 3000 * 5 / 20
        assert abs(hits - expected).max() < 120  # loose 4-sigma bound

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ParameterError):
            reservoir_sample(iter(range(5)), -1, rng)


class TestFromFile:
    def test_each_record_costs_a_page(self, rng):
        hf = HeapFile(np.arange(1000), blocking_factor=10)
        out = sample_records_from_file(hf, 50, rng)
        assert out.size == 50
        assert hf.iostats.page_reads == 50

    def test_without_replacement(self, rng):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        out = sample_records_from_file(hf, 100, rng, with_replacement=False)
        np.testing.assert_array_equal(np.sort(out), np.arange(100))

    def test_without_replacement_oversample_rejected(self, rng):
        hf = HeapFile(np.arange(10), blocking_factor=5)
        with pytest.raises(ParameterError):
            sample_records_from_file(hf, 11, rng, with_replacement=False)

    def test_empty_file_rejected(self, rng):
        hf = HeapFile(np.array([]), blocking_factor=5)
        with pytest.raises(ParameterError):
            sample_records_from_file(hf, 1, rng)
