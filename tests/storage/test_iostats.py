"""Tests for the I/O accounting counters."""

from repro.storage.iostats import IOStats


class TestIOStats:
    def test_record_and_touch(self):
        stats = IOStats()
        stats.record_read(3)
        stats.record_read(3)
        stats.record_read(7)
        assert stats.page_reads == 3
        assert stats.pages_touched == 2

    def test_touched_is_a_set_of_ints(self):
        stats = IOStats()
        stats.record_read(5)
        stats.record_read(5)
        assert stats._touched == {5}
        assert isinstance(stats._touched, set)

    def test_fault_counters(self):
        stats = IOStats()
        stats.record_failed_read(2)
        stats.record_retry(2)
        stats.record_retry(2)
        stats.record_skip(2)
        stats.record_latency(0.25)
        stats.record_latency(0.5)
        assert stats.failed_reads == 1
        assert stats.retries == 2
        assert stats.pages_skipped == 1
        assert stats.simulated_latency_s == 0.75
        # Failed reads never count as successful page reads.
        assert stats.page_reads == 0
        assert stats.pages_touched == 0

    def test_reset_clears_everything_including_fault_counters(self):
        stats = IOStats()
        stats.record_read(1)
        stats.record_failed_read(1)
        stats.record_retry(1)
        stats.record_skip(1)
        stats.record_latency(1.0)
        stats.reset()
        assert stats.page_reads == 0
        assert stats.pages_touched == 0
        assert stats.failed_reads == 0
        assert stats.retries == 0
        assert stats.pages_skipped == 0
        assert stats.simulated_latency_s == 0.0

    def test_merge_sums_counters_and_unions_touched(self):
        a = IOStats()
        a.record_read(0)
        a.record_read(1)
        a.record_failed_read(2)
        a.record_latency(0.1)
        b = IOStats()
        b.record_read(1)
        b.record_read(3)
        b.record_retry(3)
        b.record_skip(4)
        b.record_latency(0.2)
        merged = a.merge(b)
        assert merged is a  # in-place, returns self for chaining
        assert a.page_reads == 4
        assert a.pages_touched == 3  # {0, 1, 3}
        assert a.failed_reads == 1
        assert a.retries == 1
        assert a.pages_skipped == 1
        assert a.simulated_latency_s == 0.1 + 0.2
        # The other side is untouched.
        assert b.page_reads == 2

    def test_merge_chains_from_fresh_accumulator(self):
        parts = []
        for i in range(3):
            s = IOStats()
            s.record_read(i)
            parts.append(s)
        total = IOStats()
        for part in parts:
            total.merge(part)
        assert total.page_reads == 3
        assert total.pages_touched == 3

    def test_snapshot_is_plain_dict(self):
        stats = IOStats()
        stats.record_read(0)
        snap = stats.snapshot()
        assert snap == {
            "page_reads": 1,
            "pages_touched": 1,
            "failed_reads": 0,
            "retries": 0,
            "pages_skipped": 0,
            "simulated_latency_s": 0.0,
        }
        # Snapshot is a copy: further reads do not mutate it.
        stats.record_read(1)
        assert snap["page_reads"] == 1
