"""Tests for the I/O accounting counters."""

from repro.storage.iostats import IOStats


class TestIOStats:
    def test_record_and_touch(self):
        stats = IOStats()
        stats.record_read(3)
        stats.record_read(3)
        stats.record_read(7)
        assert stats.page_reads == 3
        assert stats.pages_touched == 2

    def test_reset(self):
        stats = IOStats()
        stats.record_read(1)
        stats.reset()
        assert stats.page_reads == 0
        assert stats.pages_touched == 0

    def test_snapshot_is_plain_dict(self):
        stats = IOStats()
        stats.record_read(0)
        snap = stats.snapshot()
        assert snap == {"page_reads": 1, "pages_touched": 1}
        # Snapshot is a copy: further reads do not mutate it.
        stats.record_read(1)
        assert snap["page_reads"] == 1
