"""Tests for the physical layouts (Section 4.1 scenarios)."""

import numpy as np
import pytest

from repro.exceptions import ParameterError, UnknownLayoutError
from repro.storage.layout import (
    LAYOUT_NAMES,
    apply_layout,
    partially_clustered_layout,
    random_layout,
    sorted_layout,
    value_runs_layout,
)


def duplicated_values(num_distinct=100, multiplicity=50):
    return np.repeat(np.arange(1, num_distinct + 1), multiplicity)


class TestMultisetPreservation:
    """Every layout is a permutation: the multiset must be unchanged."""

    @pytest.mark.parametrize("layout", LAYOUT_NAMES)
    def test_preserves_multiset(self, layout):
        values = duplicated_values()
        out = apply_layout(values, layout=layout, rng=0)
        np.testing.assert_array_equal(np.sort(out), np.sort(values))

    @pytest.mark.parametrize("layout", LAYOUT_NAMES)
    def test_empty_input(self, layout):
        out = apply_layout(np.array([]), layout=layout, rng=0)
        assert out.size == 0


class TestRandomLayout:
    def test_shuffles(self):
        values = np.arange(1000)
        out = random_layout(values, rng=0)
        assert not np.array_equal(out, values)

    def test_deterministic_given_seed(self):
        values = np.arange(1000)
        a = random_layout(values, rng=42)
        b = random_layout(values, rng=42)
        np.testing.assert_array_equal(a, b)


class TestSortedLayout:
    def test_sorts(self):
        values = np.random.default_rng(0).permutation(1000)
        out = sorted_layout(values)
        assert (np.diff(out) >= 0).all()


class TestPartiallyClusteredLayout:
    def test_cluster_fraction_zero_is_fully_random(self):
        values = duplicated_values()
        out = partially_clustered_layout(values, cluster_fraction=0.0, rng=0)
        # No runs enforced: adjacency rate should be near the random baseline.
        adj = (out[:-1] == out[1:]).mean()
        assert adj < 0.05

    def test_cluster_fraction_one_groups_all_duplicates(self):
        values = duplicated_values(num_distinct=20, multiplicity=30)
        out = partially_clustered_layout(values, cluster_fraction=1.0, rng=0)
        # Each value forms one contiguous run: exactly 19 boundaries.
        changes = int((out[:-1] != out[1:]).sum())
        assert changes == 19

    def test_intermediate_fraction_increases_adjacency(self):
        values = duplicated_values()
        random_adj = (random_layout(values, rng=1)[:-1] ==
                      random_layout(values, rng=1)[1:]).mean()
        partial = partially_clustered_layout(values, cluster_fraction=0.5, rng=1)
        partial_adj = (partial[:-1] == partial[1:]).mean()
        assert partial_adj > random_adj + 0.1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ParameterError):
            partially_clustered_layout(np.arange(10), cluster_fraction=1.5)

    def test_run_lengths_respect_fraction(self):
        """Each value's clustered run holds ~20% of its duplicates."""
        values = np.repeat([7], 100)
        out = partially_clustered_layout(values, cluster_fraction=0.2, rng=0)
        assert out.size == 100  # trivially same value; just no crash


class TestValueRunsLayout:
    def test_each_value_contiguous(self):
        values = duplicated_values(num_distinct=10, multiplicity=7)
        out = value_runs_layout(values, rng=0)
        changes = int((out[:-1] != out[1:]).sum())
        assert changes == 9

    def test_runs_shuffled(self):
        values = duplicated_values(num_distinct=50, multiplicity=3)
        out = value_runs_layout(values, rng=0)
        firsts = out[::3]
        assert not np.array_equal(firsts, np.sort(firsts))


class TestDispatch:
    def test_unknown_layout(self):
        with pytest.raises(UnknownLayoutError):
            apply_layout(np.arange(10), layout="zigzag")

    def test_partial_dispatch_uses_fraction(self):
        values = duplicated_values(num_distinct=20, multiplicity=30)
        out = apply_layout(values, layout="partial", rng=0, cluster_fraction=1.0)
        changes = int((out[:-1] != out[1:]).sum())
        assert changes == 19
