"""Tests for the record-level Page object."""

import numpy as np
import pytest

from repro.exceptions import PageFullError, ParameterError
from repro.storage.page import Page


class TestPage:
    def test_append_and_read(self):
        page = Page(page_id=0, capacity=4)
        assert page.append(10) == 0
        assert page.append(20) == 1
        assert page.slot(0) == 10
        assert page.slot(1) == 20
        assert len(page) == 2

    def test_full_page_rejects_append(self):
        page = Page(page_id=0, capacity=2)
        page.append(1)
        page.append(2)
        assert page.is_full
        with pytest.raises(PageFullError):
            page.append(3)

    def test_free_slots(self):
        page = Page(page_id=0, capacity=3)
        assert page.free_slots == 3
        page.append(1)
        assert page.free_slots == 2

    def test_values_in_slot_order(self):
        page = Page(page_id=1, capacity=5)
        for v in (3, 1, 2):
            page.append(v)
        np.testing.assert_array_equal(page.values(), [3, 1, 2])

    def test_slot_out_of_range(self):
        page = Page(page_id=0, capacity=3)
        page.append(1)
        with pytest.raises(IndexError):
            page.slot(1)
        with pytest.raises(IndexError):
            page.slot(-1)

    def test_from_values(self):
        page = Page.from_values(2, np.array([5, 6, 7]), capacity=4)
        assert len(page) == 3
        assert page.page_id == 2

    def test_from_values_overflow_rejected(self):
        with pytest.raises(PageFullError):
            Page.from_values(0, np.arange(10), capacity=5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ParameterError):
            Page(page_id=0, capacity=0)

    def test_negative_page_id_rejected(self):
        with pytest.raises(ParameterError):
            Page(page_id=-1, capacity=4)
