"""Tests for record/page geometry."""

import pytest

from repro.exceptions import ParameterError
from repro.storage.record import DEFAULT_PAGE_SIZE, RecordSpec


class TestRecordSpec:
    def test_default_geometry(self):
        spec = RecordSpec()
        assert spec.page_size == DEFAULT_PAGE_SIZE == 8192
        assert spec.blocking_factor > 0

    def test_blocking_factor_shrinks_with_record_size(self):
        sizes = [16, 32, 64, 128]
        factors = [RecordSpec(record_size=s).blocking_factor for s in sizes]
        assert factors == sorted(factors, reverse=True)
        # Doubling record size roughly halves the blocking factor.
        assert factors[0] == pytest.approx(2 * factors[1], rel=0.05)

    def test_pages_for(self):
        spec = RecordSpec(record_size=64)
        b = spec.blocking_factor
        assert spec.pages_for(0) == 0
        assert spec.pages_for(1) == 1
        assert spec.pages_for(b) == 1
        assert spec.pages_for(b + 1) == 2
        assert spec.pages_for(10 * b) == 10

    def test_pages_for_negative_rejected(self):
        with pytest.raises(ParameterError):
            RecordSpec().pages_for(-1)

    def test_record_too_large_for_page_rejected(self):
        with pytest.raises(ParameterError):
            RecordSpec(record_size=9000, page_size=8192)

    def test_non_positive_record_size_rejected(self):
        with pytest.raises(ParameterError):
            RecordSpec(record_size=0)

    def test_for_blocking_factor_at_least_requested(self):
        for target in (1, 10, 50, 100, 126):
            spec = RecordSpec.for_blocking_factor(target)
            assert spec.blocking_factor >= target

    def test_for_blocking_factor_too_large_rejected(self):
        with pytest.raises(ParameterError):
            RecordSpec.for_blocking_factor(100_000)

    def test_for_blocking_factor_non_positive_rejected(self):
        with pytest.raises(ParameterError):
            RecordSpec.for_blocking_factor(0)

    def test_frozen(self):
        spec = RecordSpec()
        with pytest.raises(AttributeError):
            spec.record_size = 32
