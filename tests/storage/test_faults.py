"""Tests for the fault-injection layer and the retrying access paths.

The contracts under test:

- fault decisions are pure functions of the policy seed (never of draw
  order), so every faulty read sequence is reproducible;
- an all-zero :class:`FaultPolicy` makes :class:`FaultyHeapFile` behave
  byte-identically to the wrapped file, including ``IOStats.page_reads``;
- corruption is detected *through the checksum*, transients are retried
  with deterministic jittered backoff, and a :class:`ReadBudget` converts
  runaway failure into :class:`BuildAbortedError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    BuildAbortedError,
    PageCorruptionError,
    ParameterError,
    ReproError,
    StorageError,
    TransientIOError,
)
from repro.storage.faults import (
    BudgetTracker,
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
    read_page_resilient,
    read_record_resilient,
    resilient_scan,
)
from repro.storage.heapfile import HeapFile


def make_file(n=1000, bf=20, rng=0):
    return HeapFile.from_values(
        np.arange(1, n + 1), layout="random", rng=rng, blocking_factor=bf
    )


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            FaultPolicy(transient_rate=1.0)
        with pytest.raises(ParameterError):
            FaultPolicy(transient_rate=-0.1)
        with pytest.raises(ParameterError):
            FaultPolicy(corrupt_fraction=1.5)
        with pytest.raises(ParameterError):
            FaultPolicy(read_latency_s=-1.0)
        with pytest.raises(ParameterError):
            FaultPolicy(seed=-1)

    def test_transient_fault_is_deterministic_and_order_free(self):
        policy = FaultPolicy(transient_rate=0.3, seed=42)
        # Query in two different orders: identical answers.
        forward = [policy.transient_fault(p, a) for p in range(50) for a in range(3)]
        backward = [
            policy.transient_fault(p, a)
            for p in reversed(range(50))
            for a in reversed(range(3))
        ]
        backward_reordered = list(reversed(backward))
        assert forward == backward_reordered
        # And it actually fires at roughly the configured rate.
        rate = sum(forward) / len(forward)
        assert 0.15 < rate < 0.45

    def test_transient_fault_varies_per_attempt(self):
        policy = FaultPolicy(transient_rate=0.5, seed=7)
        outcomes = {
            (p, a): policy.transient_fault(p, a)
            for p in range(20)
            for a in range(4)
        }
        # Some page must fail on one attempt and succeed on another —
        # otherwise retries could never help.
        per_page = [
            {outcomes[(p, a)] for a in range(4)} for p in range(20)
        ]
        assert any(len(s) == 2 for s in per_page)

    def test_corrupt_page_ids_fixed_and_sized(self):
        policy = FaultPolicy(corrupt_fraction=0.1, seed=3)
        ids = policy.corrupt_page_ids(100)
        assert ids == policy.corrupt_page_ids(100)  # stable
        assert len(ids) == 10
        assert all(0 <= p < 100 for p in ids)
        assert policy.corrupt_page_ids(0) == frozenset()
        assert FaultPolicy().corrupt_page_ids(100) == frozenset()

    def test_different_seeds_differ(self):
        a = FaultPolicy(corrupt_fraction=0.2, seed=1).corrupt_page_ids(200)
        b = FaultPolicy(corrupt_fraction=0.2, seed=2).corrupt_page_ids(200)
        assert a != b

    def test_seeded_constructor_spawns_from_rng(self):
        a = FaultPolicy.seeded(123, transient_rate=0.1)
        b = FaultPolicy.seeded(123, transient_rate=0.1)
        c = FaultPolicy.seeded(124, transient_rate=0.1)
        assert a == b
        assert a.seed != c.seed


class TestRateZeroEquivalence:
    """FaultPolicy() wrapping must be invisible: same bytes, same accounting."""

    def test_payloads_and_iostats_identical(self):
        base = make_file()
        faulty = FaultyHeapFile(make_file(), FaultPolicy())
        for pid in range(base.num_pages):
            np.testing.assert_array_equal(
                base.read_page(pid), faulty.read_page(pid)
            )
        assert faulty.iostats.page_reads == base.iostats.page_reads
        assert faulty.iostats.snapshot() == base.iostats.snapshot()

    def test_scan_identical(self):
        base = make_file(n=500, bf=13)
        faulty = FaultyHeapFile(make_file(n=500, bf=13), FaultPolicy())
        np.testing.assert_array_equal(base.scan(), faulty.scan())

    def test_default_policy_when_none(self):
        faulty = FaultyHeapFile(make_file())
        assert faulty.policy == FaultPolicy()
        assert faulty.corrupt_pages == frozenset()
        assert faulty.num_readable_pages == faulty.num_pages

    def test_shares_geometry_with_inner(self):
        inner = make_file(n=777, bf=19)
        faulty = FaultyHeapFile(inner, FaultPolicy())
        assert faulty.num_pages == inner.num_pages
        assert faulty.num_records == inner.num_records
        assert faulty.blocking_factor == inner.blocking_factor
        np.testing.assert_array_equal(
            faulty.values_unaccounted(), inner.values_unaccounted()
        )


class TestTransientFaults:
    def test_read_raises_transient_and_counts_failure(self):
        policy = FaultPolicy(transient_rate=0.6, seed=5)
        faulty = FaultyHeapFile(make_file(), policy)
        # Find a page whose first attempt fails under this seed.
        bad = next(
            p for p in range(faulty.num_pages) if policy.transient_fault(p, 0)
        )
        with pytest.raises(TransientIOError) as exc_info:
            faulty.read_page(bad)
        assert exc_info.value.page_id == bad
        assert exc_info.value.attempt == 0
        assert faulty.iostats.failed_reads == 1
        assert faulty.iostats.page_reads == 0

    def test_attempt_counter_advances_so_retries_can_succeed(self):
        policy = FaultPolicy(transient_rate=0.6, seed=5)
        faulty = FaultyHeapFile(make_file(), policy)
        # A page that fails attempt 0 but succeeds attempt 1.
        pid = next(
            p
            for p in range(faulty.num_pages)
            if policy.transient_fault(p, 0) and not policy.transient_fault(p, 1)
        )
        with pytest.raises(TransientIOError):
            faulty.read_page(pid)
        payload = faulty.read_page(pid)  # second physical attempt succeeds
        lo, hi = faulty.page_bounds(pid)
        np.testing.assert_array_equal(
            payload, faulty.values_unaccounted()[lo:hi]
        )

    def test_latency_charged_per_attempt(self):
        policy = FaultPolicy(read_latency_s=0.01, seed=0)
        faulty = FaultyHeapFile(make_file(), policy)
        faulty.read_page(0)
        faulty.read_page(1)
        assert faulty.iostats.simulated_latency_s == pytest.approx(0.02)


class TestCorruption:
    def test_checksum_detects_tampered_payload(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        faulty = FaultyHeapFile(make_file(), policy)
        assert faulty.corrupt_pages  # the fraction resolved to >= 1 page
        bad = min(faulty.corrupt_pages)
        with pytest.raises(PageCorruptionError) as exc_info:
            faulty.read_page(bad)
        assert exc_info.value.page_id == bad
        assert faulty.iostats.failed_reads == 1

    def test_corruption_is_permanent(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        faulty = FaultyHeapFile(make_file(), policy)
        bad = min(faulty.corrupt_pages)
        for _ in range(3):
            with pytest.raises(PageCorruptionError):
                faulty.read_page(bad)

    def test_readable_values_excludes_corrupt_pages(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        inner = make_file()
        faulty = FaultyHeapFile(inner, policy)
        readable = faulty.readable_values_unaccounted()
        lost = sum(
            faulty.page_bounds(p)[1] - faulty.page_bounds(p)[0]
            for p in faulty.corrupt_pages
        )
        assert len(readable) == inner.num_records - lost
        assert faulty.num_readable_pages == (
            faulty.num_pages - len(faulty.corrupt_pages)
        )

    def test_read_record_routes_through_faulty_page(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        faulty = FaultyHeapFile(make_file(), policy)
        bad = min(faulty.corrupt_pages)
        with pytest.raises(PageCorruptionError):
            faulty.read_record(bad * faulty.blocking_factor)
        good = next(
            p for p in range(faulty.num_pages) if p not in faulty.corrupt_pages
        )
        value = faulty.read_record(good * faulty.blocking_factor)
        lo, _ = faulty.page_bounds(good)
        assert value == faulty.values_unaccounted()[lo]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ParameterError):
            RetryPolicy(seed=-2)

    def test_backoff_grows_exponentially(self):
        retry = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.0)
        assert retry.backoff_s(0, 0) == pytest.approx(0.01)
        assert retry.backoff_s(0, 1) == pytest.approx(0.02)
        assert retry.backoff_s(0, 2) == pytest.approx(0.04)

    def test_jitter_is_deterministic_and_bounded(self):
        retry = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.2, seed=3)
        delays = [retry.backoff_s(p, a) for p in range(10) for a in range(3)]
        again = [retry.backoff_s(p, a) for p in range(10) for a in range(3)]
        assert delays == again
        for (p, a), d in zip(
            [(p, a) for p in range(10) for a in range(3)], delays
        ):
            base = 0.01 * 2.0**a
            assert base * 0.8 <= d <= base * 1.2
        # Jitter actually varies across pages.
        assert len({round(d, 12) for d in delays}) > 1

    def test_seeded_constructor(self):
        assert RetryPolicy.seeded(5) == RetryPolicy.seeded(5)
        assert RetryPolicy.seeded(5).seed != RetryPolicy.seeded(6).seed


class TestResilientReads:
    def test_plain_heapfile_passthrough(self):
        hf = make_file()
        payload = read_page_resilient(hf, 0, retry=RetryPolicy())
        np.testing.assert_array_equal(payload, hf.values_unaccounted()[:20])
        assert hf.iostats.page_reads == 1
        assert hf.iostats.retries == 0

    def test_transient_retried_to_success(self):
        policy = FaultPolicy(transient_rate=0.6, seed=5)
        faulty = FaultyHeapFile(make_file(), policy)
        pid = next(
            p
            for p in range(faulty.num_pages)
            if policy.transient_fault(p, 0) and not policy.transient_fault(p, 1)
        )
        payload = read_page_resilient(faulty, pid, retry=RetryPolicy(max_attempts=3))
        assert payload is not None
        assert faulty.iostats.retries == 1
        assert faulty.iostats.failed_reads == 1
        assert faulty.iostats.page_reads == 1
        assert faulty.iostats.simulated_latency_s > 0  # backoff charged

    def test_exhausted_retries_skip(self):
        policy = FaultPolicy(transient_rate=0.6, seed=5)
        faulty = FaultyHeapFile(make_file(), policy)
        pid = next(
            p
            for p in range(faulty.num_pages)
            if all(policy.transient_fault(p, a) for a in range(2))
        )
        payload = read_page_resilient(faulty, pid, retry=RetryPolicy(max_attempts=2))
        assert payload is None
        assert faulty.iostats.pages_skipped == 1
        assert faulty.iostats.failed_reads == 2

    def test_corruption_never_retried(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        faulty = FaultyHeapFile(make_file(), policy)
        bad = min(faulty.corrupt_pages)
        payload = read_page_resilient(
            faulty, bad, retry=RetryPolicy(max_attempts=10)
        )
        assert payload is None
        assert faulty.iostats.failed_reads == 1  # one attempt, no retries
        assert faulty.iostats.retries == 0
        assert faulty.iostats.pages_skipped == 1

    def test_read_record_resilient_none_on_loss(self):
        policy = FaultPolicy(corrupt_fraction=0.2, seed=9)
        faulty = FaultyHeapFile(make_file(), policy)
        bad = min(faulty.corrupt_pages)
        assert (
            read_record_resilient(faulty, bad * faulty.blocking_factor) is None
        )

    def test_resilient_scan_returns_readable_values(self):
        policy = FaultPolicy(
            transient_rate=0.3, corrupt_fraction=0.1, seed=11
        )
        faulty = FaultyHeapFile(make_file(), policy)
        got = resilient_scan(faulty, retry=RetryPolicy(max_attempts=8, seed=1))
        expected = faulty.readable_values_unaccounted()
        # With 8 attempts at rate 0.3, every readable page comes through.
        np.testing.assert_array_equal(np.sort(got), np.sort(expected))

    def test_faulty_reads_are_bit_identical_across_runs(self):
        def run():
            policy = FaultPolicy(
                transient_rate=0.4, corrupt_fraction=0.1, seed=21
            )
            faulty = FaultyHeapFile(make_file(), policy)
            values = resilient_scan(
                faulty, retry=RetryPolicy(max_attempts=5, seed=2)
            )
            return values.tolist(), faulty.iostats.snapshot()

        assert run() == run()


class TestReadBudget:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ReadBudget(max_failed_reads=-1)
        with pytest.raises(ParameterError):
            ReadBudget(max_skipped_pages=-1)
        with pytest.raises(ParameterError):
            ReadBudget(max_skipped_fraction=1.5)
        with pytest.raises(ParameterError):
            ReadBudget(max_simulated_s=-0.1)

    def test_tracker_resolves_fraction(self):
        tracker = ReadBudget(max_skipped_fraction=0.25).tracker(num_pages=40)
        assert tracker.max_skipped_pages == 10
        # Explicit page cap wins when tighter.
        tracker = ReadBudget(
            max_skipped_pages=3, max_skipped_fraction=0.5
        ).tracker(num_pages=40)
        assert tracker.max_skipped_pages == 3

    def test_unlimited_budget_never_aborts(self):
        tracker = ReadBudget().tracker()
        for _ in range(1000):
            tracker.charge_failure()
            tracker.charge_skip()
            tracker.charge_delay(1.0)

    def test_failure_cap_aborts_with_snapshot(self):
        tracker = BudgetTracker(max_failed_reads=2)
        tracker.charge_failure()
        tracker.charge_failure()
        with pytest.raises(BuildAbortedError) as exc_info:
            tracker.charge_failure()
        assert exc_info.value.snapshot["failed_reads"] == 3
        assert "failed reads" in str(exc_info.value)

    def test_skip_cap_aborts(self):
        tracker = BudgetTracker(max_skipped_pages=1)
        tracker.charge_skip()
        with pytest.raises(BuildAbortedError):
            tracker.charge_skip()

    def test_delay_cap_aborts(self):
        tracker = BudgetTracker(max_simulated_s=0.5)
        tracker.charge_delay(0.4)
        with pytest.raises(BuildAbortedError):
            tracker.charge_delay(0.2)

    def test_budget_abort_propagates_from_resilient_read(self):
        policy = FaultPolicy(transient_rate=0.6, seed=5)
        faulty = FaultyHeapFile(make_file(), policy)
        tracker = ReadBudget(max_failed_reads=0).tracker()
        bad = next(
            p for p in range(faulty.num_pages) if policy.transient_fault(p, 0)
        )
        with pytest.raises(BuildAbortedError):
            read_page_resilient(
                faulty, bad, retry=RetryPolicy(max_attempts=3), budget=tracker
            )

    def test_new_exceptions_are_repro_and_storage_errors(self):
        assert issubclass(TransientIOError, StorageError)
        assert issubclass(TransientIOError, IOError)
        assert issubclass(PageCorruptionError, StorageError)
        assert issubclass(BuildAbortedError, ReproError)
        assert issubclass(StorageError, ReproError)
