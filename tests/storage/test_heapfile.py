"""Tests for the heap file and its page-read accounting."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.storage import HeapFile, RecordSpec


class TestGeometry:
    def test_page_count(self):
        hf = HeapFile(np.arange(105), blocking_factor=10)
        assert hf.num_pages == 11
        assert hf.num_records == 105
        assert hf.blocking_factor == 10

    def test_exact_multiple(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        assert hf.num_pages == 10

    def test_page_bounds(self):
        hf = HeapFile(np.arange(105), blocking_factor=10)
        assert hf.page_bounds(0) == (0, 10)
        assert hf.page_bounds(10) == (100, 105)  # short last page

    def test_page_bounds_out_of_range(self):
        hf = HeapFile(np.arange(10), blocking_factor=10)
        with pytest.raises(ParameterError):
            hf.page_bounds(1)

    def test_two_dimensional_values_rejected(self):
        with pytest.raises(ParameterError):
            HeapFile(np.zeros((3, 3)), blocking_factor=2)

    def test_bad_blocking_factor_rejected(self):
        with pytest.raises(ParameterError):
            HeapFile(np.arange(10), blocking_factor=0)

    def test_from_values_uses_spec_blocking_factor(self):
        spec = RecordSpec(record_size=64)
        hf = HeapFile.from_values(np.arange(1000), spec=spec, rng=0)
        assert hf.blocking_factor == spec.blocking_factor

    def test_from_values_blocking_factor_override(self):
        hf = HeapFile.from_values(np.arange(1000), blocking_factor=7, rng=0)
        assert hf.blocking_factor == 7


class TestAccessAndAccounting:
    def test_read_page_returns_payload_and_charges(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        payload = hf.read_page(3)
        np.testing.assert_array_equal(payload, np.arange(30, 40))
        assert hf.iostats.page_reads == 1
        assert hf.iostats.pages_touched == 1

    def test_read_pages_charges_each(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        payload = hf.read_pages([0, 5, 5])
        assert payload.size == 30
        assert hf.iostats.page_reads == 3
        assert hf.iostats.pages_touched == 2  # page 5 counted once

    def test_read_pages_empty(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        assert hf.read_pages([]).size == 0
        assert hf.iostats.page_reads == 0

    def test_read_record_charges_whole_page(self):
        """The record-level cost model: one tuple costs one page read."""
        hf = HeapFile(np.arange(100), blocking_factor=10)
        assert hf.read_record(55) == 55
        assert hf.iostats.page_reads == 1

    def test_read_record_out_of_range(self):
        hf = HeapFile(np.arange(10), blocking_factor=5)
        with pytest.raises(ParameterError):
            hf.read_record(10)

    def test_scan_charges_all_pages(self):
        hf = HeapFile(np.arange(105), blocking_factor=10)
        values = hf.scan()
        assert values.size == 105
        assert hf.iostats.page_reads == 11

    def test_iter_pages_covers_everything(self):
        hf = HeapFile(np.arange(105), blocking_factor=10)
        total = sum(p.size for p in hf.iter_pages())
        assert total == 105
        assert hf.iostats.page_reads == 11

    def test_values_unaccounted_is_free(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        hf.values_unaccounted()
        assert hf.iostats.page_reads == 0

    def test_iostats_reset(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        hf.read_page(0)
        hf.iostats.reset()
        assert hf.iostats.page_reads == 0
        assert hf.iostats.pages_touched == 0

    def test_materialize_page(self):
        hf = HeapFile(np.arange(100), blocking_factor=10)
        page = hf.materialize_page(2)
        assert page.page_id == 2
        np.testing.assert_array_equal(page.values(), np.arange(20, 30))


class TestLayoutIntegration:
    def test_random_layout_preserves_multiset(self):
        values = np.arange(1000)
        hf = HeapFile.from_values(values, layout="random", rng=0)
        np.testing.assert_array_equal(
            np.sort(hf.values_unaccounted()), values
        )

    def test_sorted_layout_orders_pages(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10_000, size=1000)
        hf = HeapFile.from_values(values, layout="sorted", blocking_factor=10)
        first = hf.read_page(0)
        last = hf.read_page(hf.num_pages - 1)
        assert first.max() <= last.min()

    def test_unknown_layout_rejected(self):
        from repro.exceptions import UnknownLayoutError

        with pytest.raises(UnknownLayoutError):
            HeapFile.from_values(np.arange(10), layout="bogus")
