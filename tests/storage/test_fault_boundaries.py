"""Boundary behaviour of RetryPolicy and ReadBudget/BudgetTracker.

The retry/budget specs guard the paper's "degraded but bounded" builds
(PR 2); these tests pin their edges: zero budgets, exactly-exhausted
limits, backoff determinism, and parameter validation.
"""

from __future__ import annotations

import pytest

from repro.exceptions import BuildAbortedError, ParameterError
from repro.storage.faults import BudgetTracker, ReadBudget, RetryPolicy


class TestRetryPolicyValidation:
    def test_single_attempt_is_the_floor(self):
        assert RetryPolicy(max_attempts=1).max_attempts == 1
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay_s": -0.001},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
            {"seed": -1},
        ],
    )
    def test_out_of_range_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            RetryPolicy(**kwargs)


class TestBackoffDeterminism:
    def test_jitterless_backoff_is_exact_geometric(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.0)
        assert [policy.backoff_s(3, a) for a in range(4)] == [
            0.01, 0.02, 0.04, 0.08,
        ]

    def test_zero_base_delay_never_waits(self):
        policy = RetryPolicy(base_delay_s=0.0, jitter=0.3)
        assert [policy.backoff_s(9, a) for a in range(3)] == [0.0, 0.0, 0.0]

    def test_jitter_stays_within_its_amplitude(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=1.0, jitter=0.2)
        for page_id in range(50):
            delay = policy.backoff_s(page_id, 0)
            assert 0.01 * 0.8 <= delay <= 0.01 * 1.2

    def test_identical_seeds_reproduce_identical_backoffs(self):
        a = RetryPolicy(seed=42, jitter=0.5)
        b = RetryPolicy(seed=42, jitter=0.5)
        schedule = [(p, att) for p in range(10) for att in range(3)]
        assert [a.backoff_s(p, t) for p, t in schedule] == [
            b.backoff_s(p, t) for p, t in schedule
        ]

    def test_jitter_decorrelates_across_pages(self):
        policy = RetryPolicy(seed=7, jitter=0.5)
        delays = {policy.backoff_s(page, 0) for page in range(20)}
        assert len(delays) > 1


class TestReadBudgetValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_failed_reads": -1},
            {"max_skipped_pages": -1},
            {"max_skipped_fraction": -0.1},
            {"max_skipped_fraction": 1.5},
            {"max_simulated_s": -1.0},
        ],
    )
    def test_out_of_range_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            ReadBudget(**kwargs)

    def test_fraction_and_absolute_limits_take_the_minimum(self):
        budget = ReadBudget(max_skipped_pages=10, max_skipped_fraction=0.5)
        assert budget.tracker(num_pages=8).max_skipped_pages == 4
        assert budget.tracker(num_pages=100).max_skipped_pages == 10

    def test_fraction_without_page_count_is_ignored(self):
        tracker = ReadBudget(max_skipped_fraction=0.5).tracker()
        assert tracker.max_skipped_pages is None


class TestBudgetExhaustion:
    def test_zero_failed_reads_budget_aborts_on_first_failure(self):
        tracker = ReadBudget(max_failed_reads=0).tracker()
        with pytest.raises(BuildAbortedError):
            tracker.charge_failure()

    def test_zero_skip_budget_aborts_on_first_skip(self):
        tracker = ReadBudget(max_skipped_pages=0).tracker()
        with pytest.raises(BuildAbortedError):
            tracker.charge_skip()

    def test_exactly_exhausted_budget_survives_the_last_charge(self):
        tracker = ReadBudget(max_failed_reads=2).tracker()
        tracker.charge_failure()
        tracker.charge_failure()  # spend == limit: still within budget
        with pytest.raises(BuildAbortedError):
            tracker.charge_failure()
        assert tracker.failed_reads == 3

    def test_simulated_time_limit_is_exclusive(self):
        tracker = ReadBudget(max_simulated_s=0.01).tracker()
        tracker.charge_delay(0.01)  # == limit: allowed
        with pytest.raises(BuildAbortedError):
            tracker.charge_delay(1e-9)

    def test_abort_carries_the_spend_snapshot(self):
        tracker = ReadBudget(max_failed_reads=1).tracker()
        tracker.charge_failure()
        tracker.charge_delay(0.25)
        with pytest.raises(BuildAbortedError) as excinfo:
            tracker.charge_failure()
        assert excinfo.value.snapshot == {
            "failed_reads": 2,
            "skipped_pages": 0,
            "simulated_s": 0.25,
        }

    def test_unlimited_budget_never_aborts(self):
        tracker = ReadBudget().tracker(num_pages=10)
        for _ in range(1000):
            tracker.charge_failure()
            tracker.charge_skip()
            tracker.charge_delay(10.0)
        assert tracker.snapshot()["failed_reads"] == 1000

    def test_standalone_tracker_defaults_are_unlimited(self):
        tracker = BudgetTracker()
        tracker.charge_failure()
        tracker.charge_skip()
        tracker.charge_delay(5.0)
        assert tracker.snapshot() == {
            "failed_reads": 1,
            "skipped_pages": 1,
            "simulated_s": 5.0,
        }
