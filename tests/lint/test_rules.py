"""Per-rule detection tests: each fixture trips exactly its intended rule.

Two layers of coverage:

- ``lint_text`` unit tests: minimal snippets per rule, positive and
  negative, including the path-scoping of DET004/FLT001 and the
  import-resolution that catches aliased calls (``np.random.seed``,
  ``from time import time``).
- fixture-file tests: each module in ``tests/lint/fixtures`` is linted
  with the *full* rule set and must report only its own rule — the
  acceptance criterion that violations are detected by exactly the rule
  they were seeded for.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import lint_text, run_lint

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _rules_hit(source: str, rel_path: str = "src/repro/module.py") -> set:
    report = lint_text(source, rel_path=rel_path, root=FIXTURES)
    return {f.rule for f in report.findings}


class TestDET001:
    def test_numpy_global_state_flagged(self):
        src = '"""m."""\nimport numpy as np\nnp.random.seed(0)\n'
        assert _rules_hit(src) == {"DET001"}

    def test_stdlib_global_state_flagged(self):
        src = '"""m."""\nimport random\nrandom.shuffle([1])\n'
        assert _rules_hit(src) == {"DET001"}

    def test_from_import_alias_resolved(self):
        src = (
            '"""m."""\nfrom numpy import random as nprand\n'
            "nprand.random()\n"
        )
        assert _rules_hit(src) == {"DET001"}

    def test_explicit_generators_allowed(self):
        src = (
            '"""m."""\nimport numpy as np\nimport random\n'
            "_G = np.random.default_rng(0)\n"
            "_B = np.random.SeedSequence(1)\n"
            "_R = random.Random(2)\n"
        )
        assert _rules_hit(src) == set()

    def test_generator_method_not_flagged(self):
        src = (
            '"""m."""\nfrom repro._rng import ensure_rng\n'
            "_V = ensure_rng(0).random()\n"
        )
        assert _rules_hit(src) == set()


class TestDET002:
    @pytest.mark.parametrize(
        "call",
        [
            "time.perf_counter()",
            "time.time_ns()",
            "os.urandom(16)",
            "uuid.uuid1()",
            "secrets.token_bytes(8)",
        ],
    )
    def test_denylisted_calls_flagged(self, call):
        module = call.split(".", 1)[0]
        src = f'"""m."""\nimport {module}\n_V = {call}\n'
        assert _rules_hit(src) == {"DET002"}

    def test_from_import_resolved(self):
        src = '"""m."""\nfrom time import time\n_T = time()\n'
        assert _rules_hit(src) == {"DET002"}

    def test_datetime_constructor_allowed(self):
        src = (
            '"""m."""\nimport datetime\n'
            "_D = datetime.datetime(1998, 6, 1)\n"
        )
        assert _rules_hit(src) == set()


class TestDET003:
    def test_for_loop_over_set_flagged(self):
        src = '"""m."""\nfor _x in {1, 2}:\n    pass\n'
        assert _rules_hit(src) == {"DET003"}

    def test_list_call_over_set_flagged(self):
        src = '"""m."""\n_L = list({1, 2})\n'
        assert _rules_hit(src) == {"DET003"}

    def test_join_over_setcomp_flagged(self):
        src = '"""m."""\n_S = ",".join({c for c in "ab"})\n'
        assert _rules_hit(src) == {"DET003"}

    def test_sorted_blesses_the_set(self):
        src = '"""m."""\nfor _x in sorted({1, 2}):\n    pass\n'
        assert _rules_hit(src) == set()

    def test_sorted_generator_over_set_allowed(self):
        src = '"""m."""\n_L = sorted(x for x in {1, 2})\n'
        assert _rules_hit(src) == set()

    def test_iterating_a_list_is_fine(self):
        src = '"""m."""\nfor _x in [2, 1]:\n    pass\n'
        assert _rules_hit(src) == set()


class TestDET004:
    SRC = '"""m."""\n_T = sum([0.1, 0.2])\n'

    def test_bare_sum_flagged_in_scoped_path(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/obs/metrics.py")
        assert hit == {"DET004"}

    def test_parallel_module_is_scoped(self):
        hit = _rules_hit(
            self.SRC, rel_path="src/repro/experiments/parallel.py"
        )
        assert hit == {"DET004"}

    def test_out_of_scope_path_not_flagged(self):
        assert _rules_hit(self.SRC, rel_path="src/repro/core/other.py") == set()

    def test_fsum_is_the_fix(self):
        src = '"""m."""\nimport math\n_T = math.fsum([0.1, 0.2])\n'
        assert _rules_hit(src, rel_path="src/repro/obs/metrics.py") == set()


class TestOBS001:
    def test_undeclared_metric_literal_fails(self):
        """The acceptance demo: an undeclared name is a lint error."""
        src = '"""m."""\n\n\ndef _f(m):\n    m.inc("repro_phantom_total")\n'
        assert _rules_hit(src) == {"OBS001"}

    def test_undeclared_span_literal_fails(self):
        src = '"""m."""\n\n\ndef _f(t):\n    t.span("phantom.span")\n'
        assert _rules_hit(src) == {"OBS001"}

    def test_declared_names_pass(self):
        src = (
            '"""m."""\n\n\ndef _f(m, t):\n'
            '    m.inc("repro_good_total")\n'
            '    t.span("good.span")\n'
        )
        assert _rules_hit(src) == set()

    def test_real_catalog_guards_the_real_repo(self):
        """Against the actual repro.obs.catalog, not just the fixture."""
        src = '"""m."""\n\n\ndef _f(m):\n    m.inc("repro_not_a_metric")\n'
        report = lint_text(src, rules=["OBS001"])  # default root = repo
        assert [f.rule for f in report.findings] == ["OBS001"]

    def test_non_literal_names_are_skipped(self):
        src = '"""m."""\n\n\ndef _f(m, name):\n    m.inc(name)\n'
        assert _rules_hit(src) == set()


class TestEXC001:
    def test_dropped_argument_flagged(self):
        src = (
            '"""m."""\n\n\nclass _E(Exception):\n'
            '    """doc."""\n\n'
            "    def __init__(self, msg, extra):\n"
            "        super().__init__(msg)\n"
            "        self.extra = extra\n"
        )
        assert _rules_hit(src) == {"EXC001"}

    def test_forwarding_all_args_passes(self):
        src = (
            '"""m."""\n\n\nclass _E(Exception):\n'
            '    """doc."""\n\n'
            "    def __init__(self, msg, extra=None):\n"
            "        super().__init__(msg, extra)\n"
            "        self.extra = extra\n"
        )
        assert _rules_hit(src) == set()

    def test_reduce_opts_out(self):
        src = (
            '"""m."""\n\n\nclass _E(Exception):\n'
            '    """doc."""\n\n'
            "    def __init__(self, msg, extra):\n"
            "        super().__init__(msg)\n"
            "        self.extra = extra\n\n"
            "    def __reduce__(self):\n"
            '        """doc."""\n'
            "        return (type(self), (self.args[0], self.extra))\n"
        )
        assert _rules_hit(src) == set()

    def test_no_custom_init_passes(self):
        src = '"""m."""\n\n\nclass _E(Exception):\n    """doc."""\n'
        assert _rules_hit(src) == set()

    def test_non_exception_class_ignored(self):
        src = (
            '"""m."""\n\n\nclass _Builder:\n'
            '    """doc."""\n\n'
            "    def __init__(self, a, b):\n"
            "        self.a = a\n"
        )
        assert _rules_hit(src) == set()


class TestEXC002:
    SRC = '"""m."""\nwith open("x.json", "w") as _h:\n    _h.write("{}")\n'

    def test_write_mode_open_flagged_in_persisting_module(self):
        assert _rules_hit(self.SRC, rel_path="src/repro/cli.py") == {"EXC002"}

    def test_durability_package_is_scoped(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/durability/x.py")
        assert hit == {"EXC002"}

    def test_out_of_scope_module_not_flagged(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/core/other.py")
        assert hit == set()

    def test_mode_keyword_resolved(self):
        src = '"""m."""\n_H = open("x.json", mode="w")\n'
        assert _rules_hit(src, rel_path="src/repro/cli.py") == {"EXC002"}

    def test_path_write_text_flagged(self):
        src = (
            '"""m."""\nfrom pathlib import Path\n'
            'Path("x.json").write_text("{}")\n'
        )
        assert _rules_hit(src, rel_path="src/repro/cli.py") == {"EXC002"}

    def test_journal_append_mode_exempt(self):
        src = '"""m."""\n_H = open("run.journal", "ab")\n'
        assert _rules_hit(src, rel_path="src/repro/durability/j.py") == set()

    def test_read_mode_untouched(self):
        src = '"""m."""\n_H = open("x.json")\n_G = open("y.json", "rb")\n'
        assert _rules_hit(src, rel_path="src/repro/cli.py") == set()


class TestEXC003:
    def test_silent_broad_except_flagged(self):
        src = (
            '"""m."""\n\n\ndef _f(task):\n    try:\n        task()\n'
            "    except Exception:\n        pass\n"
        )
        assert _rules_hit(src) == {"EXC003"}

    def test_bare_except_flagged(self):
        src = (
            '"""m."""\n\n\ndef _f(task):\n    try:\n        task()\n'
            "    except:\n        ...\n"
        )
        assert _rules_hit(src) == {"EXC003"}

    def test_broad_member_of_tuple_flagged(self):
        src = (
            '"""m."""\n\n\ndef _f(task):\n    try:\n        task()\n'
            "    except (ValueError, BaseException):\n        pass\n"
        )
        assert _rules_hit(src) == {"EXC003"}

    def test_narrow_silent_except_allowed(self):
        src = (
            '"""m."""\n\n\ndef _f(task):\n    try:\n        task()\n'
            "    except OSError:\n        pass\n"
        )
        assert _rules_hit(src) == set()

    def test_broad_except_with_observable_body_allowed(self):
        src = (
            '"""m."""\n\n\ndef _f(task):\n    try:\n        return task()\n'
            "    except Exception:\n        return None\n"
        )
        assert _rules_hit(src) == set()


class TestFLT001:
    SRC = '"""m."""\n\n\ndef _f(hf):\n    return hf.read_page(0)\n'

    def test_raw_read_flagged_in_sampling(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/sampling/x.py")
        assert hit == {"FLT001"}

    def test_adaptive_module_is_scoped(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/core/adaptive.py")
        assert hit == {"FLT001"}

    def test_storage_layer_itself_exempt(self):
        hit = _rules_hit(self.SRC, rel_path="src/repro/storage/faults.py")
        assert hit == set()

    def test_resilient_wrapper_passes(self):
        src = (
            '"""m."""\nfrom repro.storage.faults import read_page_resilient\n'
            "\n\ndef _f(hf):\n    return read_page_resilient(hf, 0)\n"
        )
        assert _rules_hit(src, rel_path="src/repro/sampling/x.py") == set()


class TestFixturesHitExactlyTheirRule:
    """Full-registry runs over each seeded fixture module."""

    EXPECTED = {
        "src/repro/det001.py": {"DET001"},
        "src/repro/det002.py": {"DET002"},
        "src/repro/det003.py": {"DET003"},
        "src/repro/obs/det004.py": {"DET004"},
        "src/repro/obs001.py": {"OBS001"},
        "src/repro/exc001.py": {"EXC001"},
        "src/repro/durability/exc002.py": {"EXC002"},
        "src/repro/exc003.py": {"EXC003"},
        "src/repro/sampling/flt001.py": {"FLT001"},
        "src/repro/doc001.py": {"DOC001"},
        "src/repro/noqa.py": {"NOQA001"},
    }

    @pytest.mark.parametrize("rel_path", sorted(EXPECTED))
    def test_fixture_module(self, rel_path):
        report = run_lint(root=FIXTURES, paths=[FIXTURES / rel_path])
        assert {f.rule for f in report.findings} == self.EXPECTED[rel_path]

    def test_markdown_fixtures_hit_only_doc002(self):
        report = run_lint(
            root=FIXTURES,
            paths=[FIXTURES / "README.md", FIXTURES / "docs" / "NOTES.md"],
        )
        assert {f.rule for f in report.findings} == {"DOC002"}
        assert len(report.findings) == 2
