"""Call-graph construction over a fixture mini-project.

Pins the resolution tiers — plain calls, constructors, ``self.method``,
``self.attr.method`` through inferred attribute types, local-variable
method calls — plus the deterministic DOT rendering as a golden file.

Regenerate the golden DOT after intentional changes with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_callgraph.py
"""

from __future__ import annotations

import os
import pathlib

from repro.lint.callgraph import build_call_graph
from repro.lint.symbols import build_symbol_table

GOLDEN = pathlib.Path(__file__).parent / "golden" / "callgraph.dot"

UTIL = '''"""util."""


def helper(x):
    """H."""
    return x


class Widget:
    """W."""

    def __init__(self, size):
        """Init."""
        self.size = size

    def spin(self):
        """S."""
        return helper(self.size)
'''

APP = '''"""app."""

import time

from .util import Widget, helper


def run():
    """R."""
    w = Widget(3)
    time.sleep(0)
    return helper(w.spin())


class App:
    """A."""

    def __init__(self):
        """Init."""
        self.widget = Widget(5)

    def go(self):
        """G."""
        return self.widget.spin()

    async def tick(self):
        """T."""
        return self.go()
'''

SOURCES = {
    "src/repro/__init__.py": '"""pkg."""\n',
    "src/repro/util.py": UTIL,
    "src/repro/app.py": APP,
}


def _graph(tmp_path):
    return build_call_graph(build_symbol_table(tmp_path, sources=SOURCES))


def _project_edges(graph):
    return {
        (e.caller, e.callee) for e in graph.edges if not e.external
    }


class TestResolutionTiers:
    def test_plain_and_constructor_calls(self, tmp_path):
        edges = _project_edges(_graph(tmp_path))
        assert ("repro.app.run", "repro.util.helper") in edges
        assert ("repro.app.run", "repro.util.Widget.__init__") in edges

    def test_local_variable_method_call(self, tmp_path):
        edges = _project_edges(_graph(tmp_path))
        assert ("repro.app.run", "repro.util.Widget.spin") in edges

    def test_self_method_call(self, tmp_path):
        edges = _project_edges(_graph(tmp_path))
        assert ("repro.app.App.tick", "repro.app.App.go") in edges

    def test_self_attr_method_via_inferred_type(self, tmp_path):
        graph = _graph(tmp_path)
        assert graph.attr_types["repro.app.App"]["widget"] == {
            "repro.util.Widget"
        }
        assert ("repro.app.App.go", "repro.util.Widget.spin") in (
            _project_edges(graph)
        )

    def test_external_calls_keep_their_dotted_name(self, tmp_path):
        graph = _graph(tmp_path)
        externals = {
            e.callee for e in graph.calls_from("repro.app.run") if e.external
        }
        assert "time.sleep" in externals

    def test_reverse_index(self, tmp_path):
        graph = _graph(tmp_path)
        callers = {e.caller for e in graph.callers_of("repro.util.helper")}
        assert callers == {"repro.app.run", "repro.util.Widget.spin"}

    def test_async_units_are_marked(self, tmp_path):
        graph = _graph(tmp_path)
        assert graph.units["repro.app.App.tick"].is_async
        assert not graph.units["repro.app.App.go"].is_async


class TestDotRendering:
    def test_dot_matches_golden(self, tmp_path):
        actual = _graph(tmp_path).to_dot()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.write_text(actual)
        assert actual == GOLDEN.read_text(), (
            "fixture call graph drifted from its golden DOT; if the "
            "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
        )

    def test_dot_is_deterministic(self, tmp_path):
        assert _graph(tmp_path).to_dot() == _graph(tmp_path).to_dot()
