"""docs/LINTING.md is documented-by-construction: diff it vs the registry.

Same stance as ``tests/obs/test_docs.py`` for the observability catalog:
the rule catalog doc must describe exactly the registered rules — id,
severity, summary, rationale and example fix all verbatim — and may not
mention rule ids that do not exist.  README and docs/ARCHITECTURE.md must
name the lint layer so the subsystem is discoverable.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.lint import RULES, rule_ids

ROOT = pathlib.Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "LINTING.md"
README = ROOT / "README.md"
ARCHITECTURE = ROOT / "docs" / "ARCHITECTURE.md"

_RULE_ID = re.compile(r"\b(?:DET|OBS|EXC|FLT|DOC|NOQA|SEED|CON)\d{3}\b")


def _doc_text() -> str:
    return DOC.read_text()


class TestRuleCatalogSync:
    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_rule_has_a_detail_section(self, rule_id):
        rule = RULES[rule_id]
        assert f"### {rule_id} — {rule.summary}" in _doc_text(), (
            f"{rule_id}: detail heading missing or summary drifted"
        )

    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_rule_summary_table_row(self, rule_id):
        rule = RULES[rule_id]
        row = f"| {rule_id} | {rule.severity} | {rule.summary} |"
        assert row in _doc_text(), f"{rule_id}: summary table row drifted"

    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_rationale_is_verbatim(self, rule_id):
        assert RULES[rule_id].rationale in _doc_text(), (
            f"{rule_id}: rationale in docs/LINTING.md drifted from the "
            "registry; regenerate the section from the Rule attributes"
        )

    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_example_fix_is_verbatim(self, rule_id):
        assert RULES[rule_id].example_fix in _doc_text(), (
            f"{rule_id}: example fix in docs/LINTING.md drifted"
        )

    def test_no_phantom_rule_ids(self):
        mentioned = set(_RULE_ID.findall(_doc_text()))
        phantom = mentioned - set(rule_ids())
        assert not phantom, f"doc mentions unregistered rules: {phantom}"


class TestLayerIsDiscoverable:
    def test_readme_names_the_lint_layer(self):
        text = README.read_text()
        assert "repro lint" in text
        assert "LINTING.md" in text

    def test_architecture_names_the_lint_layer(self):
        text = ARCHITECTURE.read_text()
        assert "repro.lint" in text or "repro/lint" in text
        assert "LINTING.md" in text
