"""FLT001 fixture: a raw heap-file read in a sampling path."""


def _draw(heapfile, page_ids):
    return [heapfile.read_page(pid) for pid in page_ids]


def _draw_resilient(heapfile, page_ids, read_page_resilient):
    # Allowed: routed through the resilient wrapper.
    return [read_page_resilient(heapfile, pid) for pid in page_ids]
