"""EXC003 fixture: swallowed broad excepts beside observable handlers."""


def swallow_everything(task):
    """Three silent broad handlers: bare, typed, and tuple-typed."""
    try:
        task()
    except:  # noqa: E722
        pass
    try:
        task()
    except Exception:
        pass
    try:
        task()
    except (ValueError, BaseException):
        ...


def handle_observably(task):
    """Narrow types and non-empty bodies are all acceptable."""
    try:
        task()
    except ValueError:
        pass
    try:
        return task()
    except Exception:
        return None
