"""Suppression fixture: one used noqa, one justified noqa, one stale."""

import time

# Suppressed with justification: this finding must NOT appear.
_T0 = time.time()  # repro: noqa[DET002] -- fixture for suppression tests

_PLAIN = 1 + 1  # repro: noqa[DET001] -- stale: nothing to suppress here
