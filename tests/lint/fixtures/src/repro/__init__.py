"""Fixture mini-repo for the lint-engine tests (never imported)."""
