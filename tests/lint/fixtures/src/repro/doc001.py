import math


def undocumented_helper(x):
    return math.sqrt(x)
