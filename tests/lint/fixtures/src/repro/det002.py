"""DET002 fixture: wall-clock and entropy reads in a logic path."""

import os
import time
import uuid
from datetime import datetime

_STAMP = time.time()
_WHEN = datetime.now()
_ENTROPY = os.urandom(8)
_TOKEN = uuid.uuid4()

# Allowed: deterministic time arithmetic, no clock consulted.
_DELTA = 60 * 60
