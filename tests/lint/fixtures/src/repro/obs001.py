"""OBS001 fixture: one undeclared metric and one undeclared span."""


def _inc(name, value=1):
    """Stand-in metric helper; OBS001 matches on the call shape."""


def _record(registry, tracer):
    registry.inc("repro_phantom_total")
    with tracer.span("phantom.span"):
        pass
    # Allowed: names declared in the fixture catalog.
    registry.inc("repro_good_total")
    with tracer.span("good.span"):
        pass
