"""DET004 fixture: bare float accumulation in a metrics path."""

import math

_DURATIONS = [0.1, 0.2, 0.3]

_NAIVE_TOTAL = sum(_DURATIONS)

# Allowed: exactly-rounded, order-independent accumulation.
_EXACT_TOTAL = math.fsum(_DURATIONS)
