"""Fixture obs package: hosts the catalog OBS001 reads statically."""
