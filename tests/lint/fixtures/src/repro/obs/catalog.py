"""Fixture observability catalog: one declared metric, one declared span."""


class MetricSpec:
    """Stand-in spec; OBS001 only reads the first-argument literal."""

    def __init__(self, name, kind, help):
        self.name = name
        self.kind = kind
        self.help = help


_SPECS = [
    MetricSpec("repro_good_total", "counter", "a declared metric"),
]

SPANS: dict[str, str] = {
    "good.span": "a declared span",
}
