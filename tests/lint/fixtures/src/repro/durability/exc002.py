"""EXC002 fixture: in-place durable writes beside the sanctioned forms."""

import json
from pathlib import Path


def save_report(path, payload):
    """Writes the artifact in place: both statements are flagged."""
    with open(path, "w") as handle:
        json.dump(payload, handle)
    Path(path).write_text(json.dumps(payload))


def append_journal(path, frame):
    """Journal appends are the sanctioned in-place protocol: clean."""
    with open(path, "ab") as handle:
        handle.write(frame)


def load_report(path):
    """Read mode never persists anything: clean."""
    with open(path) as handle:
        return json.load(handle)
