"""EXC001 fixture: a pickle-lossy exception beside two clean ones."""


class LossyError(Exception):
    """Drops ``payload`` from args: pickle reconstruction loses it."""

    def __init__(self, message, payload=None):
        super().__init__(message)
        self.payload = payload


class FaithfulError(Exception):
    """Forwards every constructor argument; round-trips exactly."""

    def __init__(self, message, payload=None):
        super().__init__(message, payload)
        self.payload = payload


class ReducedError(Exception):
    """Opts out via __reduce__; also acceptable to EXC001."""

    def __init__(self, message, payload=None):
        super().__init__(message)
        self.payload = payload

    def __reduce__(self):
        """Reconstruct from (message, payload)."""
        return (type(self), (self.args[0], self.payload))
