"""DET001 fixture: global-state RNG calls (plus allowed constructions)."""

import random

import numpy as np

np.random.seed(0)
_GLOBAL_DRAW = np.random.random()
_STDLIB_DRAW = random.random()

# Allowed: explicit generator construction, never global state.
_RNG = np.random.default_rng(0)
_BITGEN = np.random.PCG64(1)
_INSTANCE = random.Random(2)
