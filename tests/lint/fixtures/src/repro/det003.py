"""DET003 fixture: set iteration feeding ordered output."""

_NAMES = {"b", "a", "c"}


def _loop_over_set() -> list:
    out = []
    for name in {"x", "y"}:
        out.append(name)
    return out


def _listcomp_over_set() -> list:
    return [name for name in set("abc")]


def _join_over_set() -> str:
    return ",".join({"p", "q"})


# Allowed: order-erasing consumers.
_SORTED = sorted({"b", "a"})
_COUNT = len({"b", "a"})
_SORTED_COMP = sorted(name for name in {"m", "n"})
