"""The project symbol table: naming, imports, re-exports, caching.

Everything runs over synthetic in-memory mini-projects (the ``sources``
argument of :func:`build_symbol_table`), so these tests pin the
resolution semantics without depending on the real package layout.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.lint.symbols import (
    build_symbol_table,
    clear_summary_cache,
    module_name_for,
)

PKG = '"""pkg."""\nfrom .server import Thing\n'
SERVER = '"""server."""\n\n\nclass Thing:\n    """T."""\n'
SUB_PKG = '"""sub."""\n'
SUB_MOD = (
    '"""mod."""\n'
    "from ..server import Thing\n"
    "from .helper import aid as assist\n"
    "import json\n"
    "import numpy as np\n"
)
SUB_HELPER = '"""helper."""\n\n\ndef aid(x):\n    """A."""\n    return x\n'

SOURCES = {
    "src/repro/__init__.py": PKG,
    "src/repro/server.py": SERVER,
    "src/repro/sub/__init__.py": SUB_PKG,
    "src/repro/sub/mod.py": SUB_MOD,
    "src/repro/sub/helper.py": SUB_HELPER,
}


def _table(tmp_path, sources=SOURCES):
    return build_symbol_table(tmp_path, sources=sources)


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_for("src/repro/serve/server.py") == (
            "repro.serve.server"
        )

    def test_package_init(self):
        assert module_name_for("src/repro/serve/__init__.py") == "repro.serve"

    def test_root_init(self):
        assert module_name_for("src/repro/__init__.py") == "repro"

    def test_unnameable_path_rejected(self):
        with pytest.raises(ParameterError, match="cannot derive"):
            module_name_for("src")


class TestImportResolution:
    def test_relative_import_from_module(self, tmp_path):
        table = _table(tmp_path)
        mod = table.modules["repro.sub.mod"]
        assert mod.imports["Thing"] == "repro.server.Thing"
        assert mod.imports["assist"] == "repro.sub.helper.aid"

    def test_relative_import_from_package_init(self, tmp_path):
        table = _table(tmp_path)
        pkg = table.modules["repro"]
        assert pkg.imports["Thing"] == "repro.server.Thing"

    def test_absolute_imports_and_aliases(self, tmp_path):
        mod = _table(tmp_path).modules["repro.sub.mod"]
        assert mod.imports["json"] == "json"
        assert mod.imports["np"] == "numpy"

    def test_resolve_local_prefers_imports_then_own_defs(self, tmp_path):
        table = _table(tmp_path)
        mod = table.modules["repro.sub.mod"]
        assert mod.resolve_local("Thing") == "repro.server.Thing"
        helper = table.modules["repro.sub.helper"]
        assert helper.resolve_local("aid") == "repro.sub.helper.aid"
        assert helper.resolve_local("len") == "len"


class TestSymbolResolution:
    def test_direct_class_lookup(self, tmp_path):
        table = _table(tmp_path)
        summary, symbol = table.resolve_symbol("repro.server.Thing")
        assert summary.name == "repro.server"
        assert symbol == "Thing"

    def test_package_reexport_is_followed(self, tmp_path):
        table = _table(tmp_path)
        summary, symbol = table.resolve_symbol("repro.Thing")
        assert summary.name == "repro.server"
        assert symbol == "Thing"

    def test_external_names_resolve_to_none(self, tmp_path):
        table = _table(tmp_path)
        assert table.resolve_symbol("numpy.random.default_rng") is None
        assert table.resolve_symbol("repro.server.Missing") is None

    def test_module_of_maps_paths_back(self, tmp_path):
        table = _table(tmp_path)
        summary = table.module_of("src/repro/sub/helper.py")
        assert summary is not None and summary.name == "repro.sub.helper"
        assert table.module_of("src/repro/nope.py") is None


class TestSummaryCache:
    def test_edit_reanalyzes_only_the_changed_module(self, tmp_path):
        clear_summary_cache()
        first = _table(tmp_path)
        assert sorted(first.analyzed) == sorted(
            s.name for s in first.modules.values()
        )

        second = _table(tmp_path)
        assert second.analyzed == []  # warm cache: nothing re-parsed

        edited = dict(SOURCES)
        edited["src/repro/server.py"] = (
            SERVER + '\n\nclass Other:\n    """O."""\n'
        )
        third = _table(tmp_path, sources=edited)
        assert third.analyzed == ["repro.server"]
        assert "Other" in third.modules["repro.server"].classes

    def test_signature_tracks_content(self, tmp_path):
        clear_summary_cache()
        table = _table(tmp_path)
        same = _table(tmp_path)
        assert table.signature() == same.signature()
        edited = dict(SOURCES)
        edited["src/repro/server.py"] = SERVER + "_X = 1\n"
        assert _table(tmp_path, sources=edited).signature() != (
            table.signature()
        )
