"""Source fragments the visitors used to fall through.

Building the call graph exposed constructs the per-module rules missed:
walrus-wrapped iterables, ``async for``/async comprehensions (DET003)
and defs nested in conditional statements (DOC001).  Each fragment here
pins one of those gaps, positive and negative.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_text


def _rules(src, rules):
    return [f.rule for f in lint_text(src, rules=rules).findings]


class TestDet003WalrusAndAsync:
    def test_walrus_wrapped_set_is_flagged(self):
        src = (
            '"""m."""\n\n\n'
            "def f():\n"
            '    """F."""\n'
            "    for x in (s := {1, 2}):\n"
            "        print(x)\n"
            "    return s\n"
        )
        assert _rules(src, ["DET003"]) == ["DET003"]

    def test_walrus_wrapped_sorted_set_is_clean(self):
        src = (
            '"""m."""\n\n\n'
            "def f():\n"
            '    """F."""\n'
            "    for x in (s := sorted({1, 2})):\n"
            "        print(x)\n"
            "    return s\n"
        )
        assert _rules(src, ["DET003"]) == []

    def test_async_for_over_a_set_is_flagged(self):
        src = (
            '"""m."""\n\n\n'
            "async def f():\n"
            '    """F."""\n'
            "    async for x in {1, 2}:\n"
            "        print(x)\n"
        )
        assert _rules(src, ["DET003"]) == ["DET003"]

    def test_async_set_comprehension_iterable_is_flagged(self):
        src = (
            '"""m."""\n\n\n'
            "async def f(gen):\n"
            '    """F."""\n'
            "    for x in {i async for i in gen}:\n"
            "        print(x)\n"
        )
        assert _rules(src, ["DET003"]) == ["DET003"]


class TestDoc001ConditionalDefs:
    @pytest.mark.parametrize(
        "src, expected",
        [
            (
                '"""m."""\nif True:\n    def f():\n        return 1\n',
                ["DOC001"],
            ),
            (
                '"""m."""\ntry:\n    def f():\n        return 1\n'
                "except ImportError:\n    def f():\n        return 2\n",
                ["DOC001", "DOC001"],
            ),
            (
                '"""m."""\nmatch 1:\n    case 1:\n'
                "        def f():\n            return 1\n",
                ["DOC001"],
            ),
            (
                '"""m."""\nwith open("x") as fh:\n'
                "    def f():\n        return 1\n",
                ["DOC001"],
            ),
        ],
        ids=["if", "try-except", "match-case", "with"],
    )
    def test_conditional_def_without_docstring_is_flagged(
        self, src, expected
    ):
        assert _rules(src, ["DOC001"]) == expected

    def test_documented_conditional_def_is_clean(self):
        src = (
            '"""m."""\n'
            "try:\n"
            "    def f():\n"
            '        """F."""\n'
            "        return 1\n"
            "except ImportError:\n"
            "    def f():\n"
            '        """Fallback."""\n'
            "        return 2\n"
        )
        assert _rules(src, ["DOC001"]) == []

    def test_private_conditional_def_is_exempt(self):
        src = '"""m."""\nif True:\n    def _f():\n        return 1\n'
        assert _rules(src, ["DOC001"]) == []

    def test_async_method_without_docstring_is_flagged(self):
        src = (
            '"""m."""\n\n\n'
            "class C:\n"
            '    """C."""\n\n'
            "    async def go(self):\n"
            "        return 1\n"
        )
        assert _rules(src, ["DOC001"]) == ["DOC001"]
