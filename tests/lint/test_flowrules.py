"""SEED1xx / CON1xx flow rules: one positive + one negative per rule.

Single-module fixtures go through :func:`lint_text` (which builds a
one-file project model); the seed-boundary rules need real module
graphs, so those fixtures are written to a throwaway ``src/repro`` tree
on disk and linted with :func:`run_lint`.
"""

from __future__ import annotations

from repro.lint import lint_text, run_lint


def _rules(report):
    return [f.rule for f in report.findings]


def _disk_project(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


POOL = '''"""Trial pool."""


class TrialPool:
    """Pool."""

    def map(self, fn, seeds):
        """Run fn over seeds."""
        return [fn(s) for s in seeds]
'''

RNG = '''"""Seed helpers."""


def spawn_seeds(rng, count):
    """Child seeds."""
    return list(range(count))


def spawn_rngs(rng, count):
    """Child generators."""
    return [object() for _ in range(count)]


def ensure_rng(seed=None):
    """Normalise."""
    return seed
'''

BASE = {
    "src/repro/__init__.py": '"""pkg."""\n',
    "src/repro/pool.py": POOL,
    "src/repro/rng.py": RNG,
}

APP_HEAD = '''"""app."""

from .pool import TrialPool
from .rng import ensure_rng, spawn_rngs, spawn_seeds


def work(seed):
    """W."""
    return seed


'''


def _lint_app(tmp_path, app_body, rules):
    files = dict(BASE)
    files["src/repro/app.py"] = APP_HEAD + app_body
    root = _disk_project(tmp_path, files)
    return run_lint(root=root, rules=rules)


class TestSeed101AmbientEntropy:
    def test_argless_default_rng_flagged(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_RNG = np.random.default_rng()\n"
        )
        report = lint_text(src, rules=["SEED101"])
        assert _rules(report) == ["SEED101"]
        assert "ambient OS entropy" in report.findings[0].message

    def test_explicit_none_and_seedsequence_flagged(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_A = np.random.default_rng(None)\n"
            "_B = np.random.SeedSequence()\n"
        )
        assert _rules(lint_text(src, rules=["SEED101"])) == (
            ["SEED101", "SEED101"]
        )

    def test_seeded_construction_clean(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_RNG = np.random.default_rng(7)\n"
            "_SEQ = np.random.SeedSequence(7)\n"
        )
        assert lint_text(src, rules=["SEED101"]).findings == []

    def test_noqa_with_reason_suppresses(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_RNG = np.random.default_rng()"
            "  # repro: noqa[SEED101] -- fixture\n"
        )
        assert lint_text(src, rules=["SEED101"]).findings == []


class TestSeed102RawDraws:
    def test_raw_draw_seeds_flagged(self, tmp_path):
        body = (
            "def launch(seed):\n"
            '    """L."""\n'
            "    rng = ensure_rng(seed)\n"
            "    seeds = [rng.integers(2**63) for _ in range(4)]\n"
            "    pool = TrialPool()\n"
            "    return pool.map(work, seeds)\n"
        )
        report = _lint_app(tmp_path, body, ["SEED102"])
        assert _rules(report) == ["SEED102"]
        assert "raw generator draws" in report.findings[0].message

    def test_spawn_seeds_clean(self, tmp_path):
        body = (
            "def launch(seed):\n"
            '    """L."""\n'
            "    rng = ensure_rng(seed)\n"
            "    pool = TrialPool()\n"
            "    return pool.map(work, spawn_seeds(rng, 4))\n"
        )
        assert _lint_app(tmp_path, body, ["SEED102"]).findings == []


class TestSeed103GeneratorBoundary:
    def test_generators_crossing_map_flagged(self, tmp_path):
        body = (
            "def launch(seed):\n"
            '    """L."""\n'
            "    rng = ensure_rng(seed)\n"
            "    pool = TrialPool()\n"
            "    return pool.map(work, spawn_rngs(rng, 4))\n"
        )
        report = _lint_app(tmp_path, body, ["SEED103"])
        assert _rules(report) == ["SEED103"]
        assert "rebuild the generator" in report.findings[0].message

    def test_finding_lands_at_the_caller_of_a_dispatch_helper(
        self, tmp_path
    ):
        body = (
            "def dispatch(fn, seeds):\n"
            '    """D."""\n'
            "    pool = TrialPool()\n"
            "    return pool.map(fn, seeds)\n"
            "\n"
            "\n"
            "def launch(seed):\n"
            '    """L."""\n'
            "    rng = ensure_rng(seed)\n"
            "    return dispatch(work, spawn_rngs(rng, 4))\n"
        )
        report = _lint_app(tmp_path, body, ["SEED103"])
        assert _rules(report) == ["SEED103"]
        [finding] = report.findings
        assert "app.dispatch" in finding.message
        launch_call_line = (APP_HEAD + body).splitlines().index(
            "    return dispatch(work, spawn_rngs(rng, 4))"
        ) + 1
        assert finding.line == launch_call_line

    def test_dispatch_helper_with_spawned_seeds_clean(self, tmp_path):
        body = (
            "def dispatch(fn, seeds):\n"
            '    """D."""\n'
            "    pool = TrialPool()\n"
            "    return pool.map(fn, seeds)\n"
            "\n"
            "\n"
            "def launch(seed):\n"
            '    """L."""\n'
            "    rng = ensure_rng(seed)\n"
            "    return dispatch(work, spawn_seeds(rng, 4))\n"
        )
        assert _lint_app(tmp_path, body, ["SEED103"]).findings == []


class TestCon101AwaitRaces:
    POSITIVE = (
        '"""m."""\nimport asyncio\n\n\n'
        "class Counter:\n"
        '    """C."""\n\n'
        "    async def bump(self):\n"
        '        """B."""\n'
        "        self.count += 1\n"
        "        await asyncio.sleep(0)\n"
        "        self.count = 0\n"
    )

    def test_unlocked_write_across_await_flagged(self):
        report = lint_text(self.POSITIVE, rules=["CON101"])
        assert _rules(report) == ["CON101"]
        assert "self.count" in report.findings[0].message

    def test_lock_held_on_both_sides_clean(self):
        src = (
            '"""m."""\nimport asyncio\n\n\n'
            "class Counter:\n"
            '    """C."""\n\n'
            "    async def bump(self):\n"
            '        """B."""\n'
            "        async with self._lock:\n"
            "            self.count += 1\n"
            "        await asyncio.sleep(0)\n"
            "        async with self._lock:\n"
            "            self.count = 0\n"
        )
        assert lint_text(src, rules=["CON101"]).findings == []

    def test_reads_only_clean(self):
        src = (
            '"""m."""\nimport asyncio\n\n\n'
            "class Counter:\n"
            '    """C."""\n\n'
            "    async def peek(self):\n"
            '        """P."""\n'
            "        before = self.count\n"
            "        await asyncio.sleep(0)\n"
            "        return before + self.count\n"
        )
        assert lint_text(src, rules=["CON101"]).findings == []


class TestCon102BlockingCalls:
    def test_time_sleep_in_async_def_flagged(self):
        src = (
            '"""m."""\nimport time\n\n\n'
            "async def pause():\n"
            '    """P."""\n'
            "    time.sleep(1)\n"
        )
        report = lint_text(src, rules=["CON102"])
        assert _rules(report) == ["CON102"]
        assert "time.sleep" in report.findings[0].message

    def test_to_thread_wrapped_call_clean(self):
        src = (
            '"""m."""\nimport asyncio\nimport time\n\n\n'
            "async def pause():\n"
            '    """P."""\n'
            "    await asyncio.to_thread(time.sleep, 1)\n"
        )
        assert lint_text(src, rules=["CON102"]).findings == []

    def test_transitively_blocking_helper_flagged(self):
        src = (
            '"""m."""\n\n\n'
            "def persist(path):\n"
            '    """W."""\n'
            '    path.write_text("x")\n'
            "\n\n"
            "async def handler(path):\n"
            '    """H."""\n'
            "    persist(path)\n"
        )
        report = lint_text(src, rules=["CON102"])
        assert _rules(report) == ["CON102"]
        message = report.findings[0].message
        assert "persist" in message and "write_text" in message

    def test_async_callee_is_not_blocking(self):
        src = (
            '"""m."""\nimport asyncio\n\n\n'
            "async def nap():\n"
            '    """N."""\n'
            "    await asyncio.sleep(0)\n"
            "\n\n"
            "async def outer():\n"
            '    """O."""\n'
            "    await nap()\n"
        )
        assert lint_text(src, rules=["CON102"]).findings == []


class TestCon103LockBalance:
    def test_unreleased_acquire_flagged(self):
        src = (
            '"""m."""\nimport threading\n\n'
            "_LOCK = threading.Lock()\n\n\n"
            "def grab():\n"
            '    """G."""\n'
            "    _LOCK.acquire()\n"
            "    return 1\n"
        )
        report = lint_text(src, rules=["CON103"])
        assert _rules(report) == ["CON103"]
        assert "_LOCK.acquire()" in report.findings[0].message

    def test_balanced_acquire_release_clean(self):
        src = (
            '"""m."""\nimport threading\n\n'
            "_LOCK = threading.Lock()\n\n\n"
            "def grab():\n"
            '    """G."""\n'
            "    _LOCK.acquire()\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        _LOCK.release()\n"
        )
        assert lint_text(src, rules=["CON103"]).findings == []

    def test_non_lock_objects_are_ignored(self):
        src = (
            '"""m."""\n\n\n'
            "def grab(pool):\n"
            '    """G."""\n'
            "    pool.acquire()\n"
            "    return 1\n"
        )
        assert lint_text(src, rules=["CON103"]).findings == []


class TestFlowSelection:
    def test_flow_rules_are_off_by_default(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_RNG = np.random.default_rng()\n"
        )
        assert lint_text(src).findings == []

    def test_flow_flag_enables_them(self):
        src = (
            '"""m."""\nimport numpy as np\n\n'
            "_RNG = np.random.default_rng()\n"
        )
        report = lint_text(src, flow=True)
        assert "SEED101" in _rules(report)
        assert "SEED101" in report.rules and "CON102" in report.rules
