"""The repo gates itself: a full lint run must report zero findings.

This is the in-repo twin of the CI lint job — any committed violation of
the determinism/invariant rule set fails tier-1 locally, not just CI.
"""

from __future__ import annotations

from repro.lint import render_text, run_lint


class TestRepoIsLintClean:
    def test_full_run_has_zero_findings(self):
        report = run_lint()
        assert report.findings == [], (
            "repo violates its own lint rules:\n" + render_text(report)
        )

    def test_full_run_covers_the_package_and_docs(self):
        report = run_lint()
        assert report.files > 60  # src/repro modules + Markdown docs
        assert report.nodes > 10_000
        assert len(report.rules) >= 9

    def test_flow_run_has_zero_findings(self):
        """The whole-program SEED/CON analysis is also a zero gate."""
        report = run_lint(flow=True)
        assert report.findings == [], (
            "repo violates its own flow rules:\n" + render_text(report)
        )
        assert report.flow is not None
        assert report.flow["modules"] > 60
        assert report.flow["call_edges"] > 1_000
