"""``changed_files`` — the git-aware file set behind ``--changed-only``.

Each test fabricates a real git repo in ``tmp_path`` (init, commit,
dirty edits) and asserts the exact file set: lintable changes in, other
files out, with a hard error when no ``main`` merge-base exists.
"""

from __future__ import annotations

import subprocess

import pytest

from repro.exceptions import ReproError
from repro.lint import changed_files


def _git(cwd, *args):
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True, text=True
    )


def _seed_repo(tmp_path, branch="main"):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text('"""pkg."""\n')
    (tmp_path / "src" / "repro" / "a.py").write_text('"""a."""\n')
    (tmp_path / "README.md").write_text("# readme\n")
    _git(tmp_path, "init", "-b", branch)
    _git(tmp_path, "config", "user.email", "lint@test")
    _git(tmp_path, "config", "user.name", "lint test")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-m", "seed")
    return tmp_path


class TestChangedFiles:
    def test_clean_worktree_has_no_changes(self, tmp_path):
        root = _seed_repo(tmp_path)
        assert changed_files(root) == []

    def test_dirty_worktree_reports_only_lintable_changes(self, tmp_path):
        root = _seed_repo(tmp_path)
        (root / "src" / "repro" / "a.py").write_text('"""a2."""\n')
        (root / "src" / "repro" / "b.py").write_text('"""b."""\n')  # untracked
        (root / "README.md").write_text("# readme v2\n")
        (root / "notes.txt").write_text("not lintable\n")
        changed = {p.resolve() for p in changed_files(root)}
        assert changed == {
            (root / "src" / "repro" / "a.py").resolve(),
            (root / "src" / "repro" / "b.py").resolve(),
            (root / "README.md").resolve(),
        }

    def test_branch_commits_diff_against_the_main_merge_base(self, tmp_path):
        root = _seed_repo(tmp_path)
        _git(root, "checkout", "-q", "-b", "feature")
        (root / "src" / "repro" / "a.py").write_text('"""branched."""\n')
        _git(root, "add", "-A")
        _git(root, "commit", "-m", "branch edit")
        changed = [p.resolve() for p in changed_files(root)]
        assert changed == [(root / "src" / "repro" / "a.py").resolve()]

    def test_deleted_files_are_skipped(self, tmp_path):
        root = _seed_repo(tmp_path)
        (root / "src" / "repro" / "a.py").unlink()
        assert changed_files(root) == []

    def test_missing_main_branch_is_an_error(self, tmp_path):
        root = _seed_repo(tmp_path, branch="trunk")
        with pytest.raises(ReproError, match="merge-base"):
            changed_files(root)
