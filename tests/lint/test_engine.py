"""Engine-level behaviour: suppressions, baselines, reports, golden JSON.

Covers the machinery around the rules: inline ``# repro: noqa[...]``
handling (suppression, justification text, stale-suppression NOQA001,
rule-subset scoping), baseline diffing (multiset semantics, round-trip,
validation), deterministic rendering (text + schema-versioned JSON), and
a golden full-run over the fixture mini-repo.

Regenerate the golden report after intentional changes with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_engine.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.exceptions import ParameterError
from repro.lint import (
    LINT_SCHEMA_VERSION,
    RULES,
    apply_baseline,
    lint_text,
    load_baseline,
    make_baseline,
    render_json,
    render_text,
    rule_ids,
    run_lint,
    write_baseline,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN = pathlib.Path(__file__).parent / "golden" / "report.json"


class TestRegistry:
    def test_expected_rules_registered(self):
        assert set(rule_ids()) == {
            "DET001", "DET002", "DET003", "DET004",
            "OBS001", "EXC001", "EXC002", "EXC003", "FLT001",
            "DOC001", "DOC002", "DOC003", "NOQA001",
            "SEED101", "SEED102", "SEED103",
            "CON101", "CON102", "CON103",
        }

    def test_every_rule_is_described(self):
        for rule in RULES.values():
            assert rule.summary, f"{rule.id} has no summary"
            assert rule.rationale, f"{rule.id} has no rationale"
            assert rule.example_fix, f"{rule.id} has no example fix"
            assert rule.severity in ("warning", "error")

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(ParameterError, match="unknown lint rule"):
            run_lint(root=FIXTURES, rules=["DET999"])


class TestSuppressions:
    def test_noqa_suppresses_on_the_finding_line(self):
        src = (
            '"""m."""\nimport time\n'
            "_T = time.time()  # repro: noqa[DET002] -- test fixture\n"
        )
        assert lint_text(src, root=FIXTURES).findings == []

    def test_unsuppressed_line_still_flagged(self):
        src = (
            '"""m."""\nimport time\n'
            "_A = time.time()  # repro: noqa[DET002]\n"
            "_B = time.time()\n"
        )
        report = lint_text(src, root=FIXTURES)
        assert [(f.rule, f.line) for f in report.findings] == [("DET002", 4)]

    def test_multiple_ids_in_one_annotation(self):
        src = (
            '"""m."""\nimport time\n'
            "_T = sum([time.time()])  # repro: noqa[DET002, DET004]\n"
        )
        report = lint_text(
            src, rel_path="src/repro/obs/x.py", root=FIXTURES
        )
        assert report.findings == []

    def test_stale_suppression_reported_as_noqa001(self):
        src = '"""m."""\n_X = 1  # repro: noqa[DET001]\n'
        report = lint_text(src, root=FIXTURES)
        assert [f.rule for f in report.findings] == ["NOQA001"]
        assert "DET001" in report.findings[0].message

    def test_docstring_mention_is_not_a_suppression(self):
        src = '"""Docs may show `# repro: noqa[DET002]` verbatim."""\n'
        assert lint_text(src, root=FIXTURES).findings == []

    def test_subset_run_ignores_foreign_suppressions(self):
        """`--rules DOC001` must not call DET002 annotations stale."""
        src = (
            '"""m."""\nimport time\n'
            "_T = time.time()  # repro: noqa[DET002] -- justified\n"
        )
        report = lint_text(src, root=FIXTURES, rules=["DOC001"])
        assert report.findings == []


class TestBaseline:
    SRC = (
        '"""m."""\nimport time\n'
        "_A = time.time()\n"
        "_B = time.time()\n"
    )

    def _report(self):
        return lint_text(self.SRC, root=FIXTURES)

    def test_baseline_absorbs_known_findings(self):
        report = self._report()
        assert len(report.findings) == 2
        remaining = apply_baseline(report, make_baseline(report))
        assert remaining.findings == []

    def test_new_instance_of_known_violation_still_fails(self):
        """Multiset semantics: N baselined, N+1 present -> 1 fresh."""
        report = self._report()
        one = make_baseline(
            lint_text('"""m."""\nimport time\n_A = time.time()\n',
                      root=FIXTURES)
        )
        remaining = apply_baseline(report, one)
        assert len(remaining.findings) == 1

    def test_baseline_is_line_insensitive(self):
        shifted = lint_text(
            '"""m."""\nimport time\n\n\n_A = time.time()\n'
            "_B = time.time()\n",
            root=FIXTURES,
        )
        remaining = apply_baseline(shifted, make_baseline(self._report()))
        assert remaining.findings == []

    def test_write_load_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        doc = load_baseline(path)
        assert doc["schema_version"] == LINT_SCHEMA_VERSION
        assert apply_baseline(report, doc).findings == []

    def test_load_rejects_non_baseline_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "bench"}))
        with pytest.raises(ParameterError, match="not a lint baseline"):
            load_baseline(path)


class TestRendering:
    def test_text_lines_carry_position_rule_severity(self):
        report = lint_text(
            '"""m."""\nimport time\n_T = time.time()\n',
            rel_path="src/repro/x.py", root=FIXTURES,
        )
        text = render_text(report)
        assert "src/repro/x.py:3:5 DET002 [error]" in text
        assert "1 finding(s)" in text

    def test_clean_text_report_summarises(self):
        report = lint_text('"""m."""\n', root=FIXTURES)
        assert render_text(report).startswith("lint OK")

    def test_json_schema_and_counts(self):
        report = lint_text(
            '"""m."""\nimport time\n_T = time.time()\n', root=FIXTURES
        )
        doc = json.loads(render_json(report))
        assert doc["schema_version"] == LINT_SCHEMA_VERSION
        assert doc["kind"] == "lint"
        assert doc["counts"] == {
            "total": 1, "errors": 1, "by_rule": {"DET002": 1},
        }
        [finding] = doc["findings"]
        assert finding["rule"] == "DET002"
        assert finding["severity"] == "error"


class TestGoldenFixtureRun:
    """The full fixture mini-repo, pinned as machine-readable output."""

    def test_fixture_report_matches_golden(self):
        report = run_lint(root=FIXTURES)
        actual = render_json(report)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.write_text(actual)
        assert actual == GOLDEN.read_text(), (
            "fixture lint report drifted from its golden file; if the "
            "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
        )

    def test_fixture_run_is_deterministic(self):
        assert render_json(run_lint(root=FIXTURES)) == render_json(
            run_lint(root=FIXTURES)
        )
