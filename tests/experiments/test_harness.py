"""Tests for the experiment harness: config, reporting, runner kernels."""

import numpy as np
import pytest

from repro.experiments.config import SCALES, get_scale
from repro.experiments.reporting import (
    Series,
    format_series,
    format_table,
    paper_note,
)
from repro.experiments.runner import (
    build_heapfile,
    cvb_sampling_cost,
    error_at_rate,
    histogram_quality,
    mean_cvb_cost,
    mean_error_at_rate,
)
from repro.exceptions import ParameterError


class TestConfig:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale("paper").name == "paper"

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_scales_are_increasing_in_n(self):
        assert SCALES["small"].n < SCALES["medium"].n < SCALES["paper"].n


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_series_accumulates(self):
        s = Series("lbl", "x", "y")
        s.add(1, 2.0)
        s.add(3, 4.0)
        assert s.rows() == [(1, 2.0), (3, 4.0)]

    def test_format_series_single(self):
        s = Series("lbl", "rate", "err")
        s.add(0.1, 0.5)
        text = format_series("Figure X", [s])
        assert "Figure X" in text
        assert "rate" in text

    def test_format_series_multi_uses_labels(self):
        a = Series("Z=0", "rate", "err")
        b = Series("Z=2", "rate", "err")
        a.add(0.1, 0.5)
        b.add(0.1, 0.6)
        text = format_series("Figure 5", [a, b])
        assert "Z=0" in text and "Z=2" in text

    def test_paper_note(self):
        text = paper_note("error falls", caveat="scaled down")
        assert "paper expectation" in text
        assert "scaled down" in text


class TestRunnerKernels:
    def test_histogram_quality_zero_for_self(self):
        values = np.arange(1, 10_001)
        assert histogram_quality(values, values, 10) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_histogram_quality_invalid_metric(self):
        values = np.arange(100)
        with pytest.raises(ParameterError):
            histogram_quality(values, values, 5, metric="bogus")

    def test_error_at_rate_decreases_with_rate(self, rng):
        values = np.arange(1, 50_001)
        hf = build_heapfile(values, "random", 25, rng=0)
        coarse = mean_error_at_rate(hf, values, 0.01, 20, trials=5, rng=1)
        fine = mean_error_at_rate(hf, values, 0.4, 20, trials=5, rng=2)
        assert fine < coarse

    def test_error_at_rate_invalid_rate(self):
        values = np.arange(1000)
        hf = build_heapfile(values, "random", 25, rng=0)
        with pytest.raises(ParameterError):
            error_at_rate(hf, values, 0.0, 10)

    def test_cvb_cost_reports_consistent_fields(self):
        values = np.arange(1, 30_001)
        hf = build_heapfile(values, "random", 25, rng=3)
        cost = cvb_sampling_cost(hf, values, k=10, f=0.3, rng=4)
        assert cost.tuples_sampled == pytest.approx(
            cost.sampling_rate * values.size
        )
        assert cost.blocks_sampled * 25 >= cost.tuples_sampled

    def test_mean_cvb_cost_averages(self):
        values = np.arange(1, 30_001)
        cost = mean_cvb_cost(
            make_heapfile=lambda r: build_heapfile(values, "random", 25, rng=r),
            sorted_values=values,
            k=10,
            f=0.3,
            trials=2,
            rng=5,
        )
        assert cost.converged
        assert 0 < cost.sampling_rate <= 1

    def test_mean_cvb_cost_invalid_trials(self):
        values = np.arange(100)
        with pytest.raises(ParameterError):
            mean_cvb_cost(lambda r: None, values, 5, 0.2, trials=0)
