"""Smoke tests for the figure series builders, at a micro scale.

The benchmarks run the figures at full (default) scale; these tests use a
tiny custom :class:`ExperimentScale` so the whole file runs in seconds and
failures localise to the series-builder plumbing rather than statistics.
"""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_10,
    figure11_12,
    figures_3_and_4,
)

MICRO = ExperimentScale(
    name="micro",
    n=20_000,
    n_sweep=(10_000, 20_000),
    k=10,
    bins_sweep=(5, 10),
    blocking_factor=25,
    record_sizes=(32, 128),
    trials=2,
    rates=(0.05, 0.2),
    f_target=0.3,
    f_bins=0.3,
)


class TestFigureBuilders:
    def test_figures_3_and_4(self):
        result = figures_3_and_4(scale=MICRO, seed=0)
        assert len(result["rate"].x) == 2
        assert len(result["blocks"].x) == 2
        assert all(0 < r <= 1 for r in result["rate"].y)
        assert all(b >= 1 for b in result["blocks"].y)
        assert result["scale"] == "micro"

    def test_figure5(self):
        result = figure5(scale=MICRO, seed=0, zs=(0, 2))
        assert len(result["series"]) == 2
        for series in result["series"]:
            assert len(series.x) == len(MICRO.rates)
            assert all(e >= 0 for e in series.y)

    def test_figure6(self):
        result = figure6(scale=MICRO, seed=0)
        assert list(result["series"].x) == list(MICRO.bins_sweep)
        assert all(0 < r <= 1 for r in result["series"].y)

    def test_figure7(self):
        result = figure7(scale=MICRO, seed=0)
        labels = [s.label for s in result["series"]]
        assert labels == ["random", "partial"]

    def test_figure8(self):
        result = figure8(scale=MICRO, seed=0)
        assert list(result["blocks"].x) == list(MICRO.record_sizes)
        assert all(b >= 1 for b in result["blocks"].y)

    def test_figure9_10(self):
        result = figure9_10("zipf2", scale=MICRO, seed=0)
        assert result["num_distinct"] > 0
        assert len(result["estimate"].y) == len(MICRO.rates)
        # Real series is constant.
        assert len(set(result["real"].y)) == 1

    def test_figure11_12(self):
        result = figure11_12("unif_dup", scale=MICRO, seed=0)
        assert all(e >= 0 for e in result["err_estimate"].y)

    def test_string_scale_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        # Passing the name works and threads through to the metadata.
        result = figure9_10("zipf2", scale=None, seed=0)
        assert result["scale"] == "small"

    def test_determinism(self):
        a = figures_3_and_4(scale=MICRO, seed=5)
        b = figures_3_and_4(scale=MICRO, seed=5)
        assert a["rate"].y == b["rate"].y
        assert a["blocks"].y == b["blocks"].y
