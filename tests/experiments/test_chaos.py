"""Tests for the chaos sweep and the CVB-under-faults property.

Two guarantees are locked down here:

1. *Degraded but still bounded* — a resilient CVB build over a faulty file
   that reports ``converged`` really did pass the paper's ``f·s/k``
   cross-validation test, and its sample/histogram are drawn entirely from
   the readable portion of the table (the population the stopping rule can
   certify anything about).
2. *Deterministic chaos* — ``chaos_sweep`` is bit-identical across runs,
   worker counts, and chunkings, exactly like every other experiment.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import cvb_build
from repro.experiments.chaos import (
    ChaosPoint,
    chaos_sweep,
    format_chaos_report,
)
from repro.storage.faults import (
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
)
from repro.storage.heapfile import HeapFile

SWEEP_KWARGS = dict(
    fault_rates=(0.0, 0.1),
    n=10_000,
    k=10,
    f=0.25,
    corrupt_fraction=0.02,
    blocking_factor=25,
    trials=2,
    seed=17,
)


class TestCVBUnderFaultsProperty:
    """Property: the resilient build still honours the stopping criterion."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        transient=st.sampled_from([0.0, 0.1, 0.3]),
        corrupt=st.sampled_from([0.0, 0.05, 0.1]),
    )
    @settings(max_examples=10, deadline=None)
    def test_converged_build_passed_threshold_on_readable_data(
        self, seed, transient, corrupt
    ):
        rng = np.random.default_rng(seed)
        values = rng.integers(1, 10_000, size=8000)
        base = HeapFile.from_values(
            values, layout="random", rng=seed, blocking_factor=20
        )
        faulty = FaultyHeapFile(
            base,
            FaultPolicy(
                transient_rate=transient, corrupt_fraction=corrupt, seed=seed
            ),
        )
        result = cvb_build(
            faulty,
            k=10,
            f=0.25,
            rng=seed + 1,
            retry=RetryPolicy(max_attempts=8, seed=seed + 2),
            budget=ReadBudget(max_skipped_fraction=0.9),
        )
        # The build always completes (skip-and-redraw, never raises here).
        assert result.converged
        # Convergence means the f·s/k (resp. fractional-f) test passed on the
        # final validation round — unless the file was exhausted, in which
        # case the histogram is exact over what was readable.
        if not result.exhausted:
            final = result.iterations[-1]
            assert final.passed
            assert final.observed_error < final.threshold
        # The sample is drawn entirely from readable pages.
        readable = set(faulty.readable_values_unaccounted().tolist())
        assert set(result.sample.tolist()).issubset(readable)
        # Accounting agrees between the result and the stream's skips.
        assert result.pages_skipped <= faulty.iostats.pages_skipped

    def test_rate_zero_build_matches_unfaulted_build(self):
        values = np.arange(1, 10_001)
        a = HeapFile.from_values(values, layout="random", rng=3, blocking_factor=25)
        b = FaultyHeapFile(
            HeapFile.from_values(values, layout="random", rng=3, blocking_factor=25),
            FaultPolicy(),
        )
        plain = cvb_build(a, k=10, f=0.25, rng=4)
        faulted = cvb_build(
            b, k=10, f=0.25, rng=4,
            retry=RetryPolicy(max_attempts=4), budget=ReadBudget(),
        )
        np.testing.assert_array_equal(plain.sample, faulted.sample)
        assert plain.histogram.separators.tolist() == \
            faulted.histogram.separators.tolist()
        assert a.iostats.page_reads == b.iostats.page_reads
        assert faulted.pages_skipped == 0


class TestChaosSweepDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self):
        return chaos_sweep(**SWEEP_KWARGS)

    def test_repeatable_same_seed(self, baseline):
        again = chaos_sweep(**SWEEP_KWARGS)
        assert format_chaos_report(again) == format_chaos_report(baseline)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_does_not_change_results(self, baseline, workers):
        par = chaos_sweep(**SWEEP_KWARGS, workers=workers)
        assert format_chaos_report(par) == format_chaos_report(baseline)
        for a, b in zip(par["points"], baseline["points"]):
            assert a.iostats.snapshot() == b.iostats.snapshot()
            assert (a.mean_error == b.mean_error) or (
                math.isnan(a.mean_error) and math.isnan(b.mean_error)
            )

    def test_chunking_does_not_change_results(self, baseline):
        par = chaos_sweep(**SWEEP_KWARGS, workers=2, chunk_size=1)
        assert format_chaos_report(par) == format_chaos_report(baseline)

    def test_different_seed_differs(self, baseline):
        other = chaos_sweep(**{**SWEEP_KWARGS, "seed": 18})
        assert format_chaos_report(other) != format_chaos_report(baseline)


class TestChaosSweepContent:
    @pytest.fixture(scope="class")
    def result(self):
        return chaos_sweep(**SWEEP_KWARGS)

    def test_points_shape(self, result):
        assert len(result["points"]) == 2
        for point, rate in zip(result["points"], SWEEP_KWARGS["fault_rates"]):
            assert isinstance(point, ChaosPoint)
            assert point.fault_rate == rate
            assert point.trials == SWEEP_KWARGS["trials"]
            assert point.converged + point.aborted <= point.trials

    def test_builds_complete_and_errors_are_finite(self, result):
        # With generous retries and a 50% skip allowance, small-rate chaos
        # must not abort the build.
        for point in result["points"]:
            assert point.aborted == 0
            assert math.isfinite(point.mean_error)
            assert point.mean_error <= point.worst_error

    def test_fault_accounting_appears_at_positive_rates(self, result):
        quiet, noisy = result["points"]
        assert noisy.iostats.retries > 0 or noisy.iostats.failed_reads > 0
        # Rate 0 has no transient failures (corruption may still skip pages).
        assert quiet.iostats.retries == 0

    def test_report_renders(self, result):
        text = format_chaos_report(result)
        assert "fault_rate" in text
        assert "2f_bound" in text
        assert str(SWEEP_KWARGS["trials"]) in text

    def test_bound_fields(self, result):
        assert result["target_f"] == SWEEP_KWARGS["f"]
        assert result["theorem7_bound"] == 2 * SWEEP_KWARGS["f"]
        assert result["pool_stats"].trials == 4
