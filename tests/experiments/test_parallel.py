"""Tests for the deterministic parallel trial engine.

The load-bearing guarantee is *bit-identical serial/parallel equivalence*:
for any worker count and chunking, ``TrialPool.map(fn, seeds)`` must equal
``[fn(s) for s in seeds]`` element for element.  A Hypothesis harness locks
that down over random trial counts, seeds, and worker counts; the remaining
tests cover validation, the sequential fallback, stats aggregation, and the
runner kernels' wiring.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rng import spawn_rngs, spawn_seeds
from repro.exceptions import ParameterError
from repro.experiments.parallel import (
    TrialPool,
    TrialRecord,
    resolve_workers,
    run_trials,
)
from repro.experiments.runner import (
    build_heapfile,
    mean_cvb_cost,
    mean_error_at_rate,
    required_blocks_for_error,
)


def _draw_floats(seed: int) -> tuple[float, float]:
    """A picklable trial kernel exercising the RNG stream shape."""
    rng = np.random.default_rng(seed)
    return float(rng.random()), float(rng.normal())


def _record_trial(seed: int) -> TrialRecord:
    rng = np.random.default_rng(seed)
    return TrialRecord(float(rng.random()), page_reads=seed % 7)


class TestSeedSpawning:
    def test_spawn_seeds_matches_spawn_rngs(self):
        """The contract the whole engine rests on: reconstructing a
        generator from a spawned seed reproduces the in-process child."""
        seeds = spawn_seeds(123, 8)
        rngs = spawn_rngs(123, 8)
        for seed, rng in zip(seeds, rngs):
            assert np.random.default_rng(seed).random(5).tolist() == \
                rng.random(5).tolist()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ParameterError):
            TrialPool(max_workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(-3)

    def test_zero_chunk_rejected(self):
        with pytest.raises(ParameterError):
            TrialPool(max_workers=1, chunk_size=0)

    def test_negative_chunk_rejected_at_map(self):
        pool = TrialPool(max_workers=1)
        with pytest.raises(ParameterError):
            pool.map(_draw_floats, [1, 2], chunk_size=-1)

    def test_bool_workers_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(True)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3


class TestSequentialFallback:
    def test_single_worker_is_serial(self):
        with TrialPool(max_workers=1) as pool:
            pool.map(_draw_floats, [1, 2, 3])
            assert pool.last_stats.mode == "serial"

    def test_lambda_falls_back_to_serial(self):
        """Pickling-hostile callables degrade gracefully, same results."""
        offset = 10.0
        fn = lambda seed: float(np.random.default_rng(seed).random()) + offset
        with TrialPool(max_workers=2) as pool:
            got = pool.map(fn, [4, 5, 6])
            assert pool.last_stats.mode == "serial"
        assert got == [fn(s) for s in (4, 5, 6)]

    def test_single_trial_is_serial(self):
        with TrialPool(max_workers=4) as pool:
            pool.map(_draw_floats, [9])
            assert pool.last_stats.mode == "serial"

    def test_empty_seeds(self):
        with TrialPool(max_workers=2) as pool:
            assert pool.map(_draw_floats, []) == []
            assert pool.last_stats.trials == 0


class TestStats:
    def test_stats_fields(self):
        with TrialPool(max_workers=2, chunk_size=2) as pool:
            pool.map(_draw_floats, list(range(6)))
            stats = pool.last_stats
        assert stats.trials == 6
        assert stats.mode == "process"
        assert stats.num_chunks == 3
        assert stats.elapsed_s > 0
        assert stats.trial_time_total_s > 0
        assert stats.trial_time_max_s <= stats.trial_time_total_s
        assert stats.trial_time_mean_s == pytest.approx(
            stats.trial_time_total_s / 6
        )

    def test_page_reads_aggregated_and_records_unwrapped(self):
        seeds = list(range(10))
        with TrialPool(max_workers=2, chunk_size=3) as pool:
            got = pool.map(_record_trial, seeds)
            assert pool.last_stats.page_reads == sum(s % 7 for s in seeds)
        assert got == [_record_trial(s).value for s in seeds]

    def test_summary_mentions_mode(self):
        with TrialPool(max_workers=1) as pool:
            pool.map(_draw_floats, [1, 2])
            assert "serial" in pool.last_stats.summary()


class TestSerialParallelEquivalence:
    """The property harness: same seeds -> same floats, order preserved,
    for random trial counts, seeds, worker counts, and chunkings."""

    @given(
        trials=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        workers=st.sampled_from([1, 2, 4]),
        chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    )
    @settings(max_examples=12, deadline=None)
    def test_pool_map_equals_serial_loop(self, trials, seed, workers, chunk):
        seeds = spawn_seeds(seed, trials)
        expected = [_draw_floats(s) for s in seeds]
        with TrialPool(max_workers=workers, chunk_size=chunk) as pool:
            got = pool.map(_draw_floats, seeds)
        assert got == expected  # element-wise, bit-identical, in order

    def test_worker_count_does_not_change_results(self):
        seeds = spawn_seeds(7, 9)
        baselines = run_trials(_draw_floats, seeds)
        for workers in (2, 4):
            with TrialPool(max_workers=workers) as pool:
                assert pool.map(_draw_floats, seeds) == baselines

    def test_chunking_does_not_change_results(self):
        seeds = spawn_seeds(11, 8)
        expected = [_draw_floats(s) for s in seeds]
        with TrialPool(max_workers=2) as pool:
            for chunk in (1, 2, 3, 8):
                assert pool.map(_draw_floats, seeds, chunk_size=chunk) == expected


class TestRunnerKernelEquivalence:
    """The wired measurement kernels return bit-identical values for any
    worker count."""

    @pytest.fixture(scope="class")
    def heapfile_and_values(self):
        values = np.arange(1, 30_001)
        return build_heapfile(values, "random", 25, rng=0), values

    def test_mean_error_at_rate(self, heapfile_and_values):
        hf, values = heapfile_and_values
        serial = mean_error_at_rate(hf, values, 0.05, 20, trials=5, rng=1)
        for workers in (2, 4):
            par = mean_error_at_rate(
                hf, values, 0.05, 20, trials=5, rng=1, workers=workers
            )
            assert par == serial

    def test_mean_error_at_rate_statistic_mean(self, heapfile_and_values):
        hf, values = heapfile_and_values
        serial = mean_error_at_rate(
            hf, values, 0.1, 20, trials=4, rng=2, statistic="mean"
        )
        par = mean_error_at_rate(
            hf, values, 0.1, 20, trials=4, rng=2, statistic="mean", workers=2
        )
        assert par == serial

    def test_required_blocks_for_error(self, heapfile_and_values):
        hf, values = heapfile_and_values
        serial = required_blocks_for_error(hf, values, 20, 0.25, trials=5, rng=3)
        par = required_blocks_for_error(
            hf, values, 20, 0.25, trials=5, rng=3, workers=2
        )
        assert par == serial

    def test_mean_cvb_cost_with_closure_falls_back(self, heapfile_and_values):
        _, values = heapfile_and_values
        make = lambda r: build_heapfile(values, "random", 25, rng=r)
        serial = mean_cvb_cost(make, values, 10, 0.3, trials=2, rng=5)
        par = mean_cvb_cost(make, values, 10, 0.3, trials=2, rng=5, workers=2)
        assert par == serial

    def test_mean_cvb_cost_parallel_with_picklable_factory(
        self, heapfile_and_values
    ):
        _, values = heapfile_and_values
        make = partial(_make_heapfile, values)
        serial = mean_cvb_cost(make, values, 10, 0.3, trials=3, rng=5)
        pool = TrialPool(max_workers=2)
        try:
            par = mean_cvb_cost(make, values, 10, 0.3, trials=3, rng=5, pool=pool)
            assert pool.last_stats.mode == "process"
        finally:
            pool.close()
        assert par == serial

    def test_shared_pool_is_reused_across_kernels(self, heapfile_and_values):
        hf, values = heapfile_and_values
        with TrialPool(max_workers=2) as pool:
            a = mean_error_at_rate(hf, values, 0.05, 20, trials=4, rng=1, pool=pool)
            b = required_blocks_for_error(
                hf, values, 20, 0.25, trials=4, rng=3, pool=pool
            )
        assert a == mean_error_at_rate(hf, values, 0.05, 20, trials=4, rng=1)
        assert b == required_blocks_for_error(hf, values, 20, 0.25, trials=4, rng=3)


def _poison(seed: int) -> float:
    """A trial kernel that blows up on one specific seed."""
    if seed == 13:
        raise RuntimeError("poisoned trial 13")
    return float(np.random.default_rng(seed).random())


class TestCleanShutdownOnFailure:
    """A crashing trial must surface its exception promptly — not hang the
    map behind surviving workers — and leave the pool reusable."""

    def test_poison_pill_surfaces_original_exception(self):
        pool = TrialPool(max_workers=2, chunk_size=1)
        try:
            with pytest.raises(RuntimeError, match="poisoned trial 13"):
                pool.map(_poison, [1, 2, 13, 4, 5, 6])
        finally:
            pool.close()

    def test_workers_are_torn_down_after_poison(self):
        pool = TrialPool(max_workers=2, chunk_size=1)
        try:
            with pytest.raises(RuntimeError):
                pool.map(_poison, [13, 1, 2, 3])
            # The executor was terminated, not left half-dead.
            assert pool._executor is None
        finally:
            pool.close()

    def test_pool_usable_again_after_poison(self):
        seeds = [1, 2, 3, 4]
        expected = [_poison(s) for s in seeds]
        with TrialPool(max_workers=2, chunk_size=1) as pool:
            with pytest.raises(RuntimeError):
                pool.map(_poison, [5, 13, 6, 7])
            # A fresh executor spins up transparently; results are still
            # bit-identical to the serial loop.
            assert pool.map(_poison, seeds) == expected
            assert pool.last_stats.mode == "process"

    def test_serial_mode_propagates_without_pool_state(self):
        with TrialPool(max_workers=1) as pool:
            with pytest.raises(RuntimeError):
                pool.map(_poison, [13])
            assert pool.map(_poison, [1, 2]) == [_poison(1), _poison(2)]

    def test_close_is_idempotent_after_terminate(self):
        pool = TrialPool(max_workers=2, chunk_size=1)
        with pytest.raises(RuntimeError):
            pool.map(_poison, [13, 1])
        pool.close()
        pool.close()


def _make_heapfile(values, rng):
    return build_heapfile(values, "random", 25, rng=rng)
