"""Tests for the ASCII reporting helpers."""

from repro.experiments.reporting import (
    Series,
    format_series,
    format_table,
    paper_note,
)


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule only

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6], [0.0000001], [0.0]])
        assert "0.1235" in text
        assert "1.23e+04" in text or "12345.6" in text or "1.23e+4" in text
        assert "1e-07" in text
        assert "0" in text

    def test_mixed_types(self):
        text = format_table(["name", "count", "rate"], [["x", 10, 0.5]])
        assert "x" in text and "10" in text and "0.5" in text

    def test_columns_aligned(self):
        text = format_table(["aa", "b"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width


class TestSeries:
    def test_mismatched_series_lengths_render(self):
        a = Series("a", "x", "y")
        b = Series("b", "x", "y")
        a.add(1, 10)
        a.add(2, 20)
        b.add(1, 30)
        text = format_series("t", [a, b])
        # Shorter series renders blanks rather than crashing.
        assert "20" in text

    def test_empty_series_list(self):
        assert format_series("just a title", []) == "just a title"

    def test_single_series_uses_y_name(self):
        s = Series("ignored-label", "x", "throughput")
        s.add(1, 2)
        text = format_series("t", [s])
        assert "throughput" in text


class TestPaperNote:
    def test_without_caveat(self):
        assert paper_note("expectation").count("\n") == 0

    def test_with_caveat(self):
        text = paper_note("expectation", "caveat text")
        assert "note: caveat text" in text
