"""Tests for the Theorem 8 adversarial construction."""

import numpy as np
import pytest

from repro.distinct.bounds import (
    adversarial_pair,
    collision_probability,
    empirical_collision_free_rate,
    forced_ratio_error,
)
from repro.distinct.estimators import GEEEstimator, ScaleUpEstimator
from repro.exceptions import ParameterError


class TestConstruction:
    def test_sizes_match(self):
        pair = adversarial_pair(n=10_000, r=50, gamma=0.5)
        assert pair.high_values.size == 10_000
        assert pair.low_values.size == 10_000

    def test_high_is_all_distinct(self):
        pair = adversarial_pair(n=5_000, r=40, gamma=0.5)
        assert pair.high_distinct == 5_000

    def test_low_duplication(self):
        pair = adversarial_pair(n=10_000, r=50, gamma=0.5)
        assert pair.duplication > 1
        assert pair.low_distinct < pair.high_distinct

    def test_guaranteed_ratio_formula(self):
        pair = adversarial_pair(n=10_000, r=50, gamma=0.5)
        assert pair.guaranteed_ratio == pytest.approx(
            np.sqrt(pair.high_distinct / pair.low_distinct)
        )

    def test_smaller_sample_allows_more_duplication(self):
        wide = adversarial_pair(n=100_000, r=20, gamma=0.5)
        narrow = adversarial_pair(n=100_000, r=200, gamma=0.5)
        assert wide.duplication > narrow.duplication
        assert wide.guaranteed_ratio > narrow.guaranteed_ratio

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ParameterError):
            adversarial_pair(100, 10, 0.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ParameterError):
            adversarial_pair(0, 10, 0.5)


class TestCollisionProbability:
    def test_bound_formula(self):
        assert collision_probability(10_000, 10, 20) == pytest.approx(
            10 * 9 * 20 / 20_000
        )

    def test_capped_at_one(self):
        assert collision_probability(100, 50, 100) == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ParameterError):
            collision_probability(0, 1, 1)

    def test_construction_keeps_collision_prob_below_target(self):
        gamma = 0.5
        pair = adversarial_pair(n=100_000, r=30, gamma=gamma)
        assert collision_probability(pair.n, pair.r, pair.duplication) <= (
            1 - gamma + 0.01
        )


class TestEmpirical:
    def test_collision_free_rate_meets_gamma(self):
        """A size-r sample from the low relation is collision-free (hence
        uninformative) at least gamma of the time."""
        gamma = 0.5
        pair = adversarial_pair(n=50_000, r=30, gamma=gamma)
        rate = empirical_collision_free_rate(pair, trials=300, rng=0)
        assert rate >= gamma - 0.1  # union bound is conservative

    def test_forced_error_exceeds_guarantee_for_any_estimator(self):
        """For both a pessimistic and an optimistic estimator, the worse of
        the two relations forces a large ratio error."""
        pair = adversarial_pair(n=50_000, r=30, gamma=0.5)
        for estimator in (GEEEstimator(), ScaleUpEstimator()):
            errors = [
                forced_ratio_error(pair, estimator, rng=seed)
                for seed in range(10)
            ]
            # Median over trials: indistinguishability bites most times.
            assert np.median(errors) >= 0.5 * pair.guaranteed_ratio

    def test_invalid_trials_rejected(self):
        pair = adversarial_pair(n=1000, r=10, gamma=0.5)
        with pytest.raises(ParameterError):
            empirical_collision_free_rate(pair, trials=0)
