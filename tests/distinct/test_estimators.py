"""Tests for the distinct-value estimators (Section 6.2)."""

import math

import numpy as np
import pytest

from repro.distinct.estimators import (
    ALL_ESTIMATORS,
    ChaoEstimator,
    ChaoLeeEstimator,
    GEEEstimator,
    GoodmanEstimator,
    HybridEstimator,
    JackknifeEstimator,
    NaiveEstimator,
    ScaleUpEstimator,
    SecondOrderJackknifeEstimator,
    ShlosserEstimator,
    estimate_all,
)
from repro.distinct.frequency import FrequencyProfile
from repro.distinct.metrics import ratio_error
from repro.exceptions import ParameterError


def profile_of(sample):
    return FrequencyProfile.from_sample(np.asarray(sample))


class TestGEE:
    def test_formula(self):
        """e = sqrt(n/r)*f1 + sum_{j>=2} f_j, verified by hand."""
        sample = np.array([1, 2, 3, 3, 4, 4])  # r=6, f1=2, multiples=2
        n = 600
        expected = math.sqrt(600 / 6) * 2 + 2
        got = GEEEstimator().estimate(profile_of(sample), n)
        assert got == pytest.approx(expected)

    def test_f1_plus_floor(self):
        """With no singletons the sqrt term still contributes once."""
        sample = np.array([1, 1, 2, 2])  # f1 = 0
        n = 400
        expected = math.sqrt(400 / 4) * 1 + 2
        assert GEEEstimator().estimate(profile_of(sample), n) == pytest.approx(
            expected
        )

    def test_clamped_to_n(self):
        sample = np.arange(10)  # all singletons
        assert GEEEstimator().estimate(profile_of(sample), 12) <= 12

    def test_clamped_below_by_observed(self):
        sample = np.repeat(np.arange(50), 2)
        assert GEEEstimator().estimate(profile_of(sample), 10**6) >= 50

    def test_near_optimal_ratio_error_on_both_extremes(self):
        """GEE's defining property: on the adversarial extremes (all
        singletons representing either 1 or n/r distinct values each) the
        ratio error is about sqrt(n/r) rather than n/r."""
        n, r = 100_000, 1_000
        # All-distinct relation: d = n; sample likely all singletons.
        rng = np.random.default_rng(0)
        sample = rng.choice(n, size=r, replace=False)
        est = GEEEstimator().estimate(profile_of(sample), n)
        assert ratio_error(est, n) <= 1.5 * math.sqrt(n / r)
        # Heavy-duplicate relation: d = n/r distinct values.
        d_low = n // r
        values = np.repeat(np.arange(d_low), r)
        sample2 = values[rng.integers(0, values.size, size=r)]
        est2 = GEEEstimator().estimate(profile_of(sample2), n)
        assert ratio_error(est2, d_low) <= 1.5 * math.sqrt(n / r)

    def test_sample_larger_than_n_rejected(self):
        with pytest.raises(ParameterError):
            GEEEstimator().estimate(profile_of(np.arange(10)), 5)


class TestSimpleEstimators:
    def test_naive_reports_observed(self):
        sample = np.array([1, 1, 2, 3])
        assert NaiveEstimator().estimate(profile_of(sample), 100) == 3

    def test_scale_up(self):
        sample = np.array([1, 2, 3, 4])  # d=4, r=4
        assert ScaleUpEstimator().estimate(profile_of(sample), 100) == pytest.approx(
            100
        )

    def test_scale_up_clamped(self):
        sample = np.array([1, 2])
        assert ScaleUpEstimator().estimate(profile_of(sample), 3) == 3

    def test_jackknife1_formula(self):
        sample = np.array([1, 2, 3, 3])  # r=4, d=3, f1=2
        expected = 3 + 2 * (3 / 4)
        assert JackknifeEstimator().estimate(
            profile_of(sample), 100
        ) == pytest.approx(expected)

    def test_jackknife2_at_least_jackknife1_when_f2_zero(self):
        sample = np.array([1, 2, 3, 4, 4, 4])
        j1 = JackknifeEstimator().estimate(profile_of(sample), 1000)
        j2 = SecondOrderJackknifeEstimator().estimate(profile_of(sample), 1000)
        assert j2 >= j1

    def test_chao_formula(self):
        sample = np.array([1, 2, 3, 3, 4, 4])  # d=4, f1=2, f2=2
        expected = 4 + 4 / 4
        assert ChaoEstimator().estimate(profile_of(sample), 100) == pytest.approx(
            expected
        )

    def test_chao_f2_zero_fallback(self):
        sample = np.array([1, 2, 3])  # f1=3, f2=0
        est = ChaoEstimator().estimate(profile_of(sample), 100)
        assert est == pytest.approx(3 + 3 * 2 / 2)

    def test_chao_lee_full_coverage(self):
        """No singletons: coverage 1, estimate ~ d (plus small skew term)."""
        sample = np.repeat(np.arange(20), 5)
        est = ChaoLeeEstimator().estimate(profile_of(sample), 10_000)
        assert est == pytest.approx(20, rel=0.1)

    def test_chao_lee_zero_coverage_falls_back(self):
        sample = np.arange(10)  # all singletons: coverage 0
        est = ChaoLeeEstimator().estimate(profile_of(sample), 1000)
        assert est == pytest.approx(1000, rel=0.01)  # scale-up limit, clamped

    def test_shlosser_uniform_duplicates(self):
        """Shlosser is accurate on uniform-duplication data with a decent
        sampled fraction."""
        rng = np.random.default_rng(1)
        d_true, dup = 1000, 100
        values = np.repeat(np.arange(d_true), dup)
        sample = values[rng.integers(0, values.size, size=20_000)]  # q=0.2
        est = ShlosserEstimator().estimate(profile_of(sample), values.size)
        assert est == pytest.approx(d_true, rel=0.25)

    def test_goodman_full_sample_is_exact(self):
        sample = np.array([1, 1, 2, 3])
        assert GoodmanEstimator().estimate(profile_of(sample), 4) == 3

    def test_goodman_finite_and_clamped(self):
        """Goodman must never return NaN/inf even when its terms explode."""
        rng = np.random.default_rng(2)
        sample = rng.integers(0, 10_000, size=100)
        est = GoodmanEstimator().estimate(profile_of(sample), 10**7)
        assert math.isfinite(est)
        assert 1 <= est <= 10**7


class TestHybrid:
    def test_uniform_sample_routes_to_shlosser(self):
        hybrid = HybridEstimator()
        sample = np.repeat(np.arange(100), 3)  # perfectly uniform
        assert hybrid.looks_uniform(profile_of(sample))

    def test_skewed_sample_routes_to_gee(self):
        hybrid = HybridEstimator()
        sample = np.concatenate([np.full(500, 1), np.arange(2, 52)])
        assert not hybrid.looks_uniform(profile_of(sample))
        est = hybrid.estimate(profile_of(sample), 10_000)
        gee = GEEEstimator().estimate(profile_of(sample), 10_000)
        assert est == gee

    def test_invalid_significance_rejected(self):
        with pytest.raises(ParameterError):
            HybridEstimator(significance=0.0)


class TestEstimateAll:
    def test_runs_every_estimator(self, rng):
        sample = rng.integers(0, 1000, size=500)
        results = estimate_all(sample, 100_000)
        assert set(results) == {e.name for e in ALL_ESTIMATORS}
        for name, value in results.items():
            assert math.isfinite(value), name
            assert value >= 1

    def test_all_estimates_within_feasible_range(self, rng):
        """Every estimator respects d_samp <= estimate <= n (after clamping),
        except naive which reports d_samp."""
        n = 50_000
        sample = rng.integers(0, 200, size=2000)
        d_samp = np.unique(sample).size
        results = estimate_all(sample, n)
        for name, value in results.items():
            assert d_samp - 1e-9 <= value <= n + 1e-9, name

    def test_gee_beats_naive_and_scaleup_worst_case(self):
        """On the two adversarial extremes, GEE's worst ratio error is lower
        than both naive's and scale-up's worst — the Section 6.2 argument."""
        rng = np.random.default_rng(3)
        n, r = 100_000, 1_000
        worst = {"gee": 1.0, "naive": 1.0, "scale_up": 1.0}
        for values, d_true in [
            (np.arange(n), n),
            (np.repeat(np.arange(n // r), r), n // r),
        ]:
            sample = values[rng.integers(0, n, size=r)]
            results = estimate_all(sample, n)
            for name in worst:
                worst[name] = max(worst[name], ratio_error(results[name], d_true))
        assert worst["gee"] < worst["naive"]
        assert worst["gee"] < worst["scale_up"]


class TestFiniteJackknife:
    def test_full_sample_is_exact(self):
        from repro.distinct.estimators import FiniteJackknifeEstimator

        sample = np.array([1, 1, 2, 3])
        est = FiniteJackknifeEstimator().estimate(profile_of(sample), 4)
        assert est == 3  # q = 1: no correction

    def test_partial_sample_scales_up(self):
        from repro.distinct.estimators import FiniteJackknifeEstimator

        rng = np.random.default_rng(5)
        values = np.repeat(np.arange(500), 20)
        sample = values[rng.integers(0, values.size, 2000)]  # q = 0.2
        est = FiniteJackknifeEstimator().estimate(
            profile_of(sample), values.size
        )
        assert 400 <= est <= 700  # true d = 500

    def test_all_singletons_clamps_to_n(self):
        from repro.distinct.estimators import FiniteJackknifeEstimator

        sample = np.arange(100)
        est = FiniteJackknifeEstimator().estimate(profile_of(sample), 10**6)
        # Denominator collapses to q: the estimator reports ~n.
        assert est == pytest.approx(10**6, rel=1e-6)


class TestBootstrap:
    def test_formula(self):
        from repro.distinct.estimators import BootstrapEstimator

        sample = np.array([1, 1, 2])  # r=3: missing mass (1/3)^3 + (2/3)^3
        expected = 2 + (1 - 2 / 3) ** 3 + (1 - 1 / 3) ** 3
        est = BootstrapEstimator().estimate(profile_of(sample), 100)
        assert est == pytest.approx(expected)

    def test_no_correction_when_everything_heavy(self):
        from repro.distinct.estimators import BootstrapEstimator

        sample = np.repeat([1, 2], 50)  # (1 - 50/100)^100 ~ 0
        est = BootstrapEstimator().estimate(profile_of(sample), 10_000)
        assert est == pytest.approx(2, abs=0.01)

    def test_mild_correction_underestimates_sparse_population(self):
        from repro.distinct.estimators import BootstrapEstimator

        rng = np.random.default_rng(6)
        n = 100_000
        sample = rng.choice(n, size=100, replace=False)
        est = BootstrapEstimator().estimate(profile_of(sample), n)
        assert est < 0.01 * n  # can never see what was never sampled
