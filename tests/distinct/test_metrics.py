"""Tests for distinct-value error metrics (Definition 5 and rel-error)."""

import pytest

from repro.distinct.metrics import ratio_error, rel_error
from repro.exceptions import ParameterError


class TestRatioError:
    def test_exact_estimate(self):
        assert ratio_error(100, 100) == 1.0

    def test_overestimate(self):
        assert ratio_error(300, 100) == 3.0

    def test_underestimate_inverted(self):
        assert ratio_error(25, 100) == 4.0

    def test_always_at_least_one(self):
        for est, true in [(1, 7), (7, 1), (5, 5), (3, 4)]:
            assert ratio_error(est, true) >= 1.0

    def test_symmetric_in_log(self):
        assert ratio_error(50, 100) == ratio_error(200, 100)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            ratio_error(0, 10)
        with pytest.raises(ParameterError):
            ratio_error(10, 0)


class TestRelError:
    def test_paper_example(self):
        """Section 6.2: n=100,000, d=500, e=5,000 -> rel-error 0.045."""
        assert rel_error(5000, 500, 100_000) == pytest.approx(0.045)

    def test_exact_is_zero(self):
        assert rel_error(42, 42, 1000) == 0.0

    def test_bounded_by_one_when_estimates_feasible(self):
        # d and e both in [0, n] keeps rel-error within [0, 1].
        assert rel_error(0, 1000, 1000) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            rel_error(10, 10, 0)

    def test_negative_true_rejected(self):
        with pytest.raises(ParameterError):
            rel_error(10, -1, 100)
