"""Tests for sample frequency profiles."""

import numpy as np
import pytest

from repro.distinct.frequency import FrequencyProfile
from repro.exceptions import EmptyDataError


class TestFrequencyProfile:
    def test_basic_profile(self):
        sample = np.array([1, 1, 2, 3, 3, 3])
        p = FrequencyProfile.from_sample(sample)
        assert p.f(1) == 1  # value 2
        assert p.f(2) == 1  # value 1
        assert p.f(3) == 1  # value 3
        assert p.f(4) == 0

    def test_identities(self):
        """sum_j j*f_j = r and sum_j f_j = d_samp."""
        rng = np.random.default_rng(0)
        sample = rng.integers(0, 500, size=3000)
        p = FrequencyProfile.from_sample(sample)
        assert p.sample_size == 3000
        assert p.distinct_in_sample == np.unique(sample).size

    def test_singletons_and_multiples(self):
        sample = np.array([1, 2, 3, 3, 4, 4, 4])
        p = FrequencyProfile.from_sample(sample)
        assert p.singletons == 2
        assert p.multiples == 2
        assert p.singletons + p.multiples == p.distinct_in_sample

    def test_all_distinct(self):
        p = FrequencyProfile.from_sample(np.arange(100))
        assert p.singletons == 100
        assert p.multiples == 0

    def test_all_same(self):
        p = FrequencyProfile.from_sample(np.full(50, 9))
        assert p.distinct_in_sample == 1
        assert p.f(50) == 1
        assert p.singletons == 0

    def test_as_dense(self):
        sample = np.array([1, 1, 2])
        dense = FrequencyProfile.from_sample(sample).as_dense()
        np.testing.assert_array_equal(dense, [0, 1, 1])

    def test_as_dense_truncation(self):
        sample = np.concatenate([np.full(10, 1), [2]])
        dense = FrequencyProfile.from_sample(sample).as_dense(max_level=3)
        assert dense.size == 4
        assert dense[1] == 1

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            FrequencyProfile.from_sample(np.array([]))

    def test_works_on_floats_and_strings(self):
        p = FrequencyProfile.from_sample(np.array([0.5, 0.5, 1.5]))
        assert p.f(2) == 1
        p2 = FrequencyProfile.from_sample(np.array(["a", "b", "a"]))
        assert p2.singletons == 1
