"""Tests for the named dataset factory."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.workloads.datasets import DATASET_NAMES, make_dataset


class TestFactory:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_names_build(self, name):
        ds = make_dataset(name, 10_000, rng=0)
        assert ds.n == 10_000
        assert ds.name == name

    def test_values_sorted(self):
        ds = make_dataset("zipf2", 5_000, rng=1)
        assert (np.diff(ds.values) >= 0).all()

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            make_dataset("mystery", 100)

    def test_invalid_n_rejected(self):
        with pytest.raises(ParameterError):
            make_dataset("zipf0", 0)

    def test_unknown_override_rejected(self):
        with pytest.raises(ParameterError):
            make_dataset("zipf2", 100, rng=0, bogus=True)

    def test_deterministic_given_seed(self):
        a = make_dataset("zipf2", 5_000, rng=9)
        b = make_dataset("zipf2", 5_000, rng=9)
        np.testing.assert_array_equal(a.values, b.values)


class TestShapes:
    def test_zipf0_is_uniform(self):
        ds = make_dataset("zipf0", 10_000, rng=0)
        _, counts = np.unique(ds.values, return_counts=True)
        assert counts.max() - counts.min() <= 1

    def test_zipf4_is_highly_skewed(self):
        ds = make_dataset("zipf4", 10_000, rng=0)
        _, counts = np.unique(ds.values, return_counts=True)
        assert counts.max() > 0.8 * ds.n

    def test_skew_reduces_realised_distinct(self):
        flat = make_dataset("zipf0", 50_000, rng=0)
        skewed = make_dataset("zipf4", 50_000, rng=0)
        assert skewed.num_distinct < flat.num_distinct

    def test_unif_dup_multiplicity(self):
        ds = make_dataset("unif_dup", 10_000, rng=0, duplicates_per_value=25)
        _, counts = np.unique(ds.values, return_counts=True)
        assert (counts == 25).all()
        assert ds.params["duplicates_per_value"] == 25

    def test_all_distinct(self):
        ds = make_dataset("all_distinct", 1000)
        assert ds.num_distinct == 1000

    def test_num_distinct_override(self):
        ds = make_dataset("zipf1", 10_000, rng=0, num_distinct=37)
        assert ds.num_distinct <= 37
        assert ds.params["num_distinct"] == 37

    def test_describe_mentions_counts(self):
        ds = make_dataset("zipf2", 5_000, rng=0)
        text = ds.describe()
        assert "zipf2" in text
        assert "5,000" in text
