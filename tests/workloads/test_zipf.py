"""Tests for the Zipf generator."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.workloads.zipf import (
    sample_zipf,
    zipf_counts,
    zipf_value_set,
    zipf_weights,
)


class TestWeights:
    def test_normalised(self):
        w = zipf_weights(100, 2.0)
        assert w.sum() == pytest.approx(1.0)

    def test_z_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 1.5)
        assert (np.diff(w) <= 0).all()

    def test_skew_concentrates_mass(self):
        mild = zipf_weights(1000, 1.0)
        harsh = zipf_weights(1000, 3.0)
        assert harsh[0] > mild[0]

    def test_ratio_follows_power_law(self):
        w = zipf_weights(100, 2.0)
        assert w[0] / w[1] == pytest.approx(4.0)
        assert w[1] / w[3] == pytest.approx(4.0)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            zipf_weights(0, 1.0)
        with pytest.raises(ParameterError):
            zipf_weights(10, -1.0)


class TestCounts:
    def test_sum_exactly_n(self):
        for z in (0.0, 1.0, 2.0, 4.0):
            counts = zipf_counts(123_457, 1000, z)
            assert counts.sum() == 123_457

    def test_uniform_split(self):
        counts = zipf_counts(1000, 10, 0.0)
        np.testing.assert_array_equal(counts, np.full(10, 100))

    def test_high_skew_zeroes_the_tail(self):
        counts = zipf_counts(10_000, 10_000, 3.0)
        assert (counts == 0).sum() > 5_000

    def test_non_negative(self):
        counts = zipf_counts(999, 77, 2.5)
        assert (counts >= 0).all()

    def test_zero_n(self):
        assert zipf_counts(0, 10, 1.0).sum() == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ParameterError):
            zipf_counts(-1, 10, 1.0)


class TestValueSet:
    def test_size(self):
        values = zipf_value_set(10_000, 100, 2.0, rng=0)
        assert values.size == 10_000

    def test_values_in_domain(self):
        values = zipf_value_set(1000, 50, 1.0, rng=0, domain_spacing=3)
        domain = set(1 + 3 * np.arange(50))
        assert set(np.unique(values)) <= domain

    def test_permutation_decouples_rank_and_value(self):
        """With permutation the most frequent value is usually not value 1."""
        top_values = []
        for seed in range(20):
            values = zipf_value_set(10_000, 100, 2.0, rng=seed)
            distinct, counts = np.unique(values, return_counts=True)
            top_values.append(distinct[counts.argmax()])
        assert len(set(top_values)) > 5

    def test_no_permutation_keeps_rank_order(self):
        values = zipf_value_set(10_000, 100, 2.0, permute_values=False)
        distinct, counts = np.unique(values, return_counts=True)
        assert distinct[counts.argmax()] == 1

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ParameterError):
            zipf_value_set(100, 10, 1.0, domain_spacing=0)


class TestSampling:
    def test_size_and_domain(self):
        out = sample_zipf(5000, 20, 1.0, rng=0)
        assert out.size == 5000
        assert out.min() >= 1 and out.max() <= 20

    def test_skew_visible_in_sample(self):
        out = sample_zipf(50_000, 100, 2.0, rng=0)
        _, counts = np.unique(out, return_counts=True)
        assert counts.max() > 0.4 * out.size  # top value ~ 61% for Z=2

    def test_negative_n_rejected(self):
        with pytest.raises(ParameterError):
            sample_zipf(-5, 10, 1.0)


class TestStatisticalShape:
    def test_realised_distinct_matches_paper_regime(self):
        """At n=10^7 and Z=2 the paper saw 6,101 distinct values; our
        generator's realised count at the scaled default universe follows
        the same rounding-driven shrinkage pattern."""
        counts = zipf_counts(1_000_000, 10_000, 2.0)
        realised = int((counts > 0).sum())
        # Far fewer than the universe (tail rounds to zero), far more than
        # a handful.
        assert 1_000 < realised < 10_000

    def test_top_value_share_grows_with_z(self):
        shares = []
        for z in (0.5, 1.0, 2.0, 4.0):
            counts = zipf_counts(100_000, 1000, z)
            shares.append(counts.max() / 100_000)
        assert shares == sorted(shares)
        assert shares[-1] > 0.85  # Z=4: one value dominates

    def test_zipf2_top_share_near_61_percent(self):
        """For Z=2 the first rank's weight is 1/zeta(2) ~ 0.608."""
        counts = zipf_counts(1_000_000, 10_000, 2.0)
        assert counts.max() / 1_000_000 == pytest.approx(0.608, abs=0.01)
