"""Tests for range-query workloads and ground truth."""

import numpy as np
import pytest

from repro.exceptions import EmptyDataError, ParameterError
from repro.workloads.queries import (
    RangeQuery,
    fixed_selectivity_queries,
    random_range_queries,
    true_range_count,
)


class TestRangeQuery:
    def test_selects_closed_interval(self):
        q = RangeQuery(3, 7)
        mask = q.selects(np.array([2, 3, 5, 7, 8]))
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_point_query(self):
        q = RangeQuery(5, 5)
        assert q.selects(np.array([4, 5, 6])).sum() == 1

    def test_reversed_rejected(self):
        with pytest.raises(ParameterError):
            RangeQuery(10, 5)


class TestTrueRangeCount:
    def test_matches_brute_force(self, rng):
        values = np.sort(rng.integers(0, 1000, size=5000))
        for _ in range(25):
            lo, hi = np.sort(rng.integers(0, 1000, size=2))
            q = RangeQuery(float(lo), float(hi))
            assert true_range_count(values, q) == int(q.selects(values).sum())

    def test_empty_range(self):
        values = np.arange(0, 100, 10)
        assert true_range_count(values, RangeQuery(1, 9)) == 0

    def test_duplicates_counted(self):
        values = np.array([5, 5, 5, 7])
        assert true_range_count(values, RangeQuery(5, 5)) == 3


class TestRandomQueries:
    def test_count_and_validity(self, rng):
        values = np.arange(0, 1000)
        queries = random_range_queries(values, 50, rng)
        assert len(queries) == 50
        for q in queries:
            assert q.lo <= q.hi
            assert 0 <= q.lo <= 999

    def test_empty_data_rejected(self, rng):
        with pytest.raises(EmptyDataError):
            random_range_queries(np.array([]), 5, rng)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ParameterError):
            random_range_queries(np.arange(10), -1, rng)


class TestFixedSelectivityQueries:
    def test_exact_output_size_on_distinct_data(self, rng):
        values = np.arange(0, 10_000)
        queries = fixed_selectivity_queries(values, output_size=250, count=20, rng=rng)
        for q in queries:
            assert true_range_count(values, q) == 250

    def test_output_size_bounds(self, rng):
        values = np.arange(100)
        with pytest.raises(ParameterError):
            fixed_selectivity_queries(values, output_size=0, count=1, rng=rng)
        with pytest.raises(ParameterError):
            fixed_selectivity_queries(values, output_size=101, count=1, rng=rng)

    def test_full_table_query(self, rng):
        values = np.arange(100)
        queries = fixed_selectivity_queries(values, output_size=100, count=3, rng=rng)
        for q in queries:
            assert true_range_count(values, q) == 100

    def test_duplicates_can_only_increase_count(self, rng):
        values = np.sort(np.repeat(np.arange(100), 5))
        queries = fixed_selectivity_queries(values, output_size=50, count=20, rng=rng)
        for q in queries:
            assert true_range_count(values, q) >= 50
