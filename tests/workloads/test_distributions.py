"""Tests for the non-Zipf value-set generators."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.workloads.distributions import (
    all_distinct,
    multiset_from_counts,
    normal_values,
    self_similar_counts,
    self_similar_value_set,
    uniform_random,
    uniform_with_duplicates,
)


class TestAllDistinct:
    def test_basic(self):
        values = all_distinct(100)
        assert np.unique(values).size == 100

    def test_start_and_spacing(self):
        values = all_distinct(5, start=10, spacing=3)
        np.testing.assert_array_equal(values, [10, 13, 16, 19, 22])

    def test_invalid_spacing(self):
        with pytest.raises(ParameterError):
            all_distinct(10, spacing=0)


class TestUniformWithDuplicates:
    def test_every_value_exact_multiplicity(self):
        values = uniform_with_duplicates(1000, 10)
        _, counts = np.unique(values, return_counts=True)
        assert (counts == 10).all()
        assert counts.size == 100

    def test_paper_unif_dup_shape(self):
        """Section 7.2: 100 duplicates per value."""
        values = uniform_with_duplicates(10_000, 100)
        assert np.unique(values).size == 100

    def test_indivisible_rejected(self):
        with pytest.raises(ParameterError):
            uniform_with_duplicates(1001, 10)

    def test_invalid_multiplicity_rejected(self):
        with pytest.raises(ParameterError):
            uniform_with_duplicates(100, 0)


class TestUniformRandom:
    def test_bounds(self, rng):
        values = uniform_random(10_000, low=5, high=50, rng=rng)
        assert values.min() >= 5 and values.max() < 50

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ParameterError):
            uniform_random(10, low=5, high=5, rng=rng)


class TestNormal:
    def test_moments(self, rng):
        values = normal_values(100_000, mean=10, std=2, rng=rng)
        assert values.mean() == pytest.approx(10, abs=0.1)
        assert values.std() == pytest.approx(2, abs=0.1)

    def test_invalid_std_rejected(self, rng):
        with pytest.raises(ParameterError):
            normal_values(10, std=0, rng=rng)


class TestSelfSimilar:
    def test_sums_to_n(self):
        counts = self_similar_counts(10_000, 64, h=0.2)
        assert counts.sum() == 10_000

    def test_head_gets_most_mass(self):
        counts = self_similar_counts(10_000, 100, h=0.2)
        head = counts[: max(1, int(100 * 0.2))].sum()
        assert head >= 0.7 * 10_000  # ~80% in the first 20%

    def test_h_half_is_flat_ish(self):
        counts = self_similar_counts(1000, 8, h=0.5)
        assert counts.max() - counts.min() <= counts.mean()

    def test_invalid_h_rejected(self):
        with pytest.raises(ParameterError):
            self_similar_counts(100, 10, h=0.0)
        with pytest.raises(ParameterError):
            self_similar_counts(100, 10, h=0.7)

    def test_value_set_size(self):
        values = self_similar_value_set(5000, 50, rng=0)
        assert values.size == 5000


class TestMultisetFromCounts:
    def test_expansion(self):
        out = multiset_from_counts(np.array([1, 5, 9]), np.array([2, 0, 3]))
        np.testing.assert_array_equal(out, [1, 1, 9, 9, 9])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            multiset_from_counts(np.array([1, 2]), np.array([1]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError):
            multiset_from_counts(np.array([1]), np.array([-1]))


class TestBimodal:
    def test_two_modes_present(self, rng):
        from repro.workloads.distributions import bimodal_values

        values = bimodal_values(20_000, centers=(0.0, 100.0), rng=rng)
        near_first = (np.abs(values - 0.0) < 5).mean()
        near_second = (np.abs(values - 100.0) < 5).mean()
        assert near_first > 0.4
        assert near_second > 0.4
        # The valley between is nearly empty.
        valley = ((values > 20) & (values < 80)).mean()
        assert valley < 0.01

    def test_weight_controls_mix(self, rng):
        from repro.workloads.distributions import bimodal_values

        values = bimodal_values(20_000, weight=0.9, rng=rng)
        assert (values < 50).mean() == pytest.approx(0.9, abs=0.02)

    def test_invalid_params(self, rng):
        from repro.workloads.distributions import bimodal_values

        with pytest.raises(ParameterError):
            bimodal_values(10, weight=1.5, rng=rng)
        with pytest.raises(ParameterError):
            bimodal_values(10, stds=(0.0, 1.0), rng=rng)
        with pytest.raises(ParameterError):
            bimodal_values(-1, rng=rng)
