"""Shared fixtures for the test suite.

Everything stochastic is seeded; fixtures return fresh generators so tests
cannot couple through shared RNG state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import HeapFile
from repro.workloads import make_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def distinct_values() -> np.ndarray:
    """10,000 fully distinct sorted integers."""
    return np.arange(1, 10_001, dtype=np.int64)


@pytest.fixture
def zipf_dataset():
    """A small Zipf Z=2 dataset (heavy duplicates)."""
    return make_dataset("zipf2", 20_000, rng=7)


@pytest.fixture
def unif_dup_dataset():
    """Unif/Dup: every value exactly 10 times."""
    return make_dataset("unif_dup", 20_000, rng=7, duplicates_per_value=10)


@pytest.fixture
def small_heapfile(distinct_values, rng) -> HeapFile:
    """A random-layout heap file of the distinct values, 25 tuples/page."""
    return HeapFile.from_values(
        distinct_values, layout="random", rng=rng, blocking_factor=25
    )
