"""Public-API surface tests: exports resolve, version exists, no drift."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.distinct",
    "repro.engine",
    "repro.storage",
    "repro.sampling",
    "repro.workloads",
    "repro.baselines",
    "repro.experiments",
]


class TestExports:
    def test_version(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_key_classes_reachable_from_top_level(self):
        # The names a downstream user reaches for first.
        for name in (
            "EquiHeightHistogram",
            "CVBSampler",
            "CVBConfig",
            "cvb_build",
            "GEEEstimator",
            "StatisticsManager",
            "Table",
            "HeapFile",
            "make_dataset",
            "RangeQuery",
        ):
            assert hasattr(repro, name), name

    def test_exceptions_hierarchy(self):
        from repro import exceptions

        assert issubclass(exceptions.ParameterError, exceptions.ReproError)
        assert issubclass(exceptions.ParameterError, ValueError)
        assert issubclass(
            exceptions.StatisticsNotFoundError, exceptions.CatalogError
        )
        assert issubclass(exceptions.StatisticsNotFoundError, KeyError)
        assert issubclass(exceptions.PageFullError, exceptions.StorageError)

    def test_bounds_module_namespaced(self):
        # bounds is deliberately exposed as a module, not flattened.
        from repro.core import bounds

        assert callable(bounds.corollary1_sample_size)


class TestRngHelpers:
    def test_ensure_rng_accepts_all_forms(self):
        import numpy as np

        from repro import ensure_rng

        assert isinstance(ensure_rng(None), np.random.Generator)
        assert isinstance(ensure_rng(42), np.random.Generator)
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_junk(self):
        from repro import ensure_rng

        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_seeded_rngs_reproduce(self):
        from repro import ensure_rng

        a = ensure_rng(7).integers(0, 1000, 10)
        b = ensure_rng(7).integers(0, 1000, 10)
        assert (a == b).all()

    def test_spawn_rngs_independent_and_stable(self):
        import numpy as np

        from repro import spawn_rngs

        first = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert first == second
        assert len(set(first)) == 4  # overwhelmingly likely distinct

    def test_spawn_rngs_negative_rejected(self):
        from repro import spawn_rngs

        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
