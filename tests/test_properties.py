"""Property-based tests (hypothesis) for core invariants.

These target the data structures the rest of the system leans on: histogram
partitioning, error-metric relationships (Theorem 2), layout permutation
invariants, frequency-profile identities, and bound monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import bounds
from repro.core.error_metrics import (
    avg_error,
    fractional_max_error,
    max_error,
    relative_deviation,
    separation_error,
    var_error,
)
from repro.core.histogram import EquiHeightHistogram, equi_height_separators
from repro.distinct.estimators import GEEEstimator
from repro.distinct.frequency import FrequencyProfile
from repro.distinct.metrics import ratio_error
from repro.storage.layout import apply_layout
from repro.workloads.zipf import zipf_counts

value_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.integers(min_value=-10_000, max_value=10_000),
)

count_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.integers(min_value=0, max_value=10_000),
)


class TestHistogramProperties:
    @given(values=value_arrays, k=st.integers(min_value=1, max_value=32))
    @settings(max_examples=150, deadline=None)
    def test_counts_partition_all_values(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        assert hist.counts.sum() == values.size
        assert hist.k == k

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=32))
    @settings(max_examples=150, deadline=None)
    def test_separators_sorted_and_within_range(self, values, k):
        seps = equi_height_separators(np.sort(values), k)
        assert (np.diff(seps) >= 0).all()
        if seps.size:
            assert seps.min() >= values.min()
            assert seps.max() <= values.max()

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_count_values_total_preserved_on_any_probe(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        probe = values * 2 - 3  # arbitrary related probe set
        assert hist.count_values(probe).sum() == probe.size

    @given(
        values=value_arrays,
        k=st.integers(min_value=2, max_value=16),
        lo=st.floats(min_value=-20_000, max_value=20_000),
        width=st.floats(min_value=0, max_value=40_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_range_estimates_bounded_and_monotone(self, values, k, lo, width):
        hist = EquiHeightHistogram.from_values(values, k)
        est = hist.estimate_range(lo, lo + width)
        assert 0.0 <= est <= hist.total + 1e-9
        wider = hist.estimate_range(lo, lo + 2 * width)
        assert wider >= est - 1e-9

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_perfect_histogram_on_distinct_data_is_balanced(self, values, k):
        distinct = np.unique(values)
        hist = EquiHeightHistogram.from_sorted_values(distinct, k)
        # Bucket sizes differ by at most 1 after ceil-position rounding.
        assert hist.counts.max() - hist.counts.min() <= (
            1 if distinct.size % k == 0 else int(np.ceil(distinct.size / k))
        )


class TestErrorMetricProperties:
    @given(counts=count_arrays)
    @settings(max_examples=200, deadline=None)
    def test_theorem2_ordering(self, counts):
        """Δavg <= Δvar <= Δmax for every bucket-count vector."""
        assert avg_error(counts) <= var_error(counts) + 1e-9
        assert var_error(counts) <= max_error(counts) + 1e-9

    @given(counts=count_arrays, shift=st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_uniform_shift_keeps_all_metrics(self, counts, shift):
        """Adding the same amount to every bucket changes n/k and all
        deviations identically: metrics are translation-invariant."""
        shifted = counts + shift
        assert max_error(shifted) == pytest.approx(max_error(counts), abs=1e-9)
        assert avg_error(shifted) == pytest.approx(avg_error(counts), abs=1e-9)

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_relative_deviation_bounded_by_sample_size(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        dev = relative_deviation(hist, values)
        assert 0 <= dev <= values.size

    @given(values=value_arrays, k=st.integers(min_value=2, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_separation_error_identity_and_symmetry(self, values, k):
        data = np.sort(values)
        seps_a = equi_height_separators(data, k)
        # Perturb one separator upward where possible.
        seps_b = seps_a.astype(np.float64).copy()
        if seps_b.size:
            seps_b[-1] = seps_b[-1] + 1
        assert separation_error(seps_a, seps_a, data) == 0.0
        assert separation_error(seps_a, seps_b, data) == (
            separation_error(seps_b, seps_a, data)
        )

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_fractional_error_zero_against_self(self, values, k):
        data = np.sort(values)
        seps = equi_height_separators(data, k)
        assert fractional_max_error(seps, data, data) <= 1e-9


class TestLayoutProperties:
    @given(
        values=value_arrays,
        layout=st.sampled_from(["random", "sorted", "partial", "value_runs"]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_layouts_are_permutations(self, values, layout, seed):
        out = apply_layout(values, layout=layout, rng=seed)
        np.testing.assert_array_equal(np.sort(out), np.sort(values))


class TestFrequencyProperties:
    @given(values=value_arrays)
    @settings(max_examples=150, deadline=None)
    def test_profile_identities(self, values):
        p = FrequencyProfile.from_sample(values)
        assert p.sample_size == values.size
        assert p.distinct_in_sample == np.unique(values).size
        assert p.singletons + p.multiples == p.distinct_in_sample

    @given(values=value_arrays, n_extra=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=150, deadline=None)
    def test_gee_estimate_feasible(self, values, n_extra):
        n = values.size + n_extra
        p = FrequencyProfile.from_sample(values)
        est = GEEEstimator().estimate(p, n)
        assert p.distinct_in_sample <= est <= n

    @given(
        est=st.floats(min_value=0.001, max_value=10**9),
        true=st.integers(min_value=1, max_value=10**9),
    )
    @settings(max_examples=200, deadline=None)
    def test_ratio_error_at_least_one(self, est, true):
        assert ratio_error(est, true) >= 1.0


class TestBoundProperties:
    @given(
        n=st.integers(min_value=100, max_value=10**9),
        k=st.integers(min_value=1, max_value=1000),
        f=st.floats(min_value=0.01, max_value=1.0),
        gamma=st.floats(min_value=1e-6, max_value=0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_corollary1_roundtrip(self, n, k, f, gamma):
        r = bounds.corollary1_sample_size(n, k, f, gamma)
        f_back = bounds.corollary1_error_fraction(n, k, r, gamma)
        assert f_back <= f + 1e-9  # ceil'd r can only improve the error

    @given(
        n=st.integers(min_value=100, max_value=10**9),
        k=st.integers(min_value=1, max_value=1000),
        gamma=st.floats(min_value=1e-6, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_sample_size_monotone_in_k(self, n, k, gamma):
        small = bounds.corollary1_sample_size(n, k, 0.1, gamma)
        large = bounds.corollary1_sample_size(n, k + 1, 0.1, gamma)
        assert large >= small

    @given(counts=st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_zipf_counts_always_sum(self, counts):
        out = zipf_counts(counts, 97, 1.7)
        assert out.sum() == counts
        assert (out >= 0).all()


class TestEstimationProperties:
    @given(
        values=value_arrays,
        k=st.integers(min_value=2, max_value=16),
        probe=st.floats(min_value=-20_000, max_value=20_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_lt_never_exceeds_leq(self, values, k, probe):
        hist = EquiHeightHistogram.from_values(values, k)
        assert hist.estimate_lt(probe) <= hist.estimate_leq(probe) + 1e-9

    @given(values=value_arrays, k=st.integers(min_value=2, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_eq_counts_within_bucket_counts(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        # Mass at a separator cannot exceed its bucket's total count.
        for j in range(hist.k - 1):
            assert hist.eq_counts[j] <= hist.counts[j]

    @given(values=value_arrays, k=st.integers(min_value=2, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_point_query_on_separator_returns_eq_mass(self, values, k):
        hist = EquiHeightHistogram.from_values(values, k)
        seps = np.unique(hist.separators)
        for s in seps[:3]:
            got = hist.estimate_range(float(s), float(s))
            exact = int((np.asarray(values) == s).sum())
            # eq_counts make separator point queries exact.
            assert got == pytest.approx(exact, abs=1e-6)


class TestSerializationProperties:
    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_histogram_json_roundtrip(self, values, k):
        from repro.core.serialization import (
            histogram_from_json,
            histogram_to_json,
        )

        hist = EquiHeightHistogram.from_values(values, k)
        assert histogram_from_json(histogram_to_json(hist)) == hist


class TestMaxDiffProperties:
    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_maxdiff_partitions_everything(self, values, k):
        from repro.core.maxdiff import MaxDiffHistogram

        hist = MaxDiffHistogram.from_values(values, k)
        assert hist.total == values.size
        assert hist.k <= k
        assert hist.estimate_distinct() == np.unique(values).size

    @given(values=value_arrays, k=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_maxdiff_full_range_is_total(self, values, k):
        from repro.core.maxdiff import MaxDiffHistogram

        hist = MaxDiffHistogram.from_values(values, k)
        est = hist.estimate_range(float(values.min()), float(values.max()))
        assert est == pytest.approx(hist.total, rel=1e-9)


class TestDensityProperties:
    @given(values=value_arrays)
    @settings(max_examples=150, deadline=None)
    def test_selfjoin_density_bounds(self, values):
        from repro.engine.density import selfjoin_density

        d = selfjoin_density(values)
        n = values.size
        assert 1.0 / n - 1e-12 <= d <= 1.0 + 1e-12

    @given(values=value_arrays)
    @settings(max_examples=100, deadline=None)
    def test_census_sample_estimates_exactly(self, values):
        from repro.engine.density import (
            selfjoin_density,
            selfjoin_density_from_sample,
        )

        n = values.size
        est = selfjoin_density_from_sample(values, n=n)
        assert est == pytest.approx(selfjoin_density(values), abs=1e-9)


class TestMergeProperties:
    @given(
        a=value_arrays,
        b=value_arrays,
        k=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_total_and_range(self, a, b, k):
        from repro.core.merge import merge_equi_height

        left = EquiHeightHistogram.from_values(a, k)
        right = EquiHeightHistogram.from_values(b, k)
        merged = merge_equi_height(left, right, k=k)
        assert merged.total == left.total + right.total
        assert merged.min_value == min(left.min_value, right.min_value)
        assert merged.max_value == max(left.max_value, right.max_value)
        assert merged.k == k

    @given(a=value_arrays, k=st.integers(min_value=2, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_self_merge_estimates_double(self, a, k):
        from repro.core.merge import merge_equi_height

        hist = EquiHeightHistogram.from_values(a, k)
        merged = merge_equi_height(hist, hist, k=k)
        full = merged.estimate_range(float(a.min()), float(a.max()))
        assert full == pytest.approx(2 * a.size, rel=0.02, abs=2)
