"""The deterministic benchmark harness: registry, determinism, gate, profiling.

Tier-1 home of the perf-observability guarantees:

- the scenario registry is well-formed and fully described,
- a bench run's **logical section** is byte-identical across runs with the
  same seed and scale (the acceptance criterion for BENCH_*.json),
- the comparator passes a self-compare, fails on an injected logical
  regression, and gates wall-clock only when given a tolerance,
- ``--profile`` writes ``.pstats`` files that ``pstats`` can load, and
- the full registry at smoke scale still matches the checked-in
  ``benchmarks/baseline.json`` — the in-repo perf regression gate.
"""

from __future__ import annotations

import copy
import json
import pathlib
import pstats

import pytest

from repro.exceptions import ParameterError
from repro.obs import bench

ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE = ROOT / "benchmarks" / "baseline.json"

#: Cheap subset covering both heapfile-backed and in-memory scenarios.
SUBSET = ["record_sampling", "merge_equi_height", "distinct_gee"]

FAST = dict(scale="smoke", repeats=1, warmup=0)


class TestRegistry:
    def test_names_match_registry_keys(self):
        names = bench.scenario_names()
        assert names == list(bench.SCENARIOS)
        for name in names:
            assert bench.SCENARIOS[name].name == name

    def test_every_scenario_is_described(self):
        for scenario in bench.SCENARIOS.values():
            assert scenario.help, f"{scenario.name} has no help text"
            assert scenario.paper, f"{scenario.name} has no paper hook"

    def test_expected_scenarios_present(self):
        names = set(bench.scenario_names())
        assert {
            "record_sampling", "block_sampling", "cvb_build",
            "merge_equi_height", "distinct_gee", "selectivity_lookup",
            "trialpool_w1", "trialpool_w2", "trialpool_w4",
        } <= names

    def test_scales(self):
        assert {"smoke", "default"} <= set(bench.SCALES)
        smoke = bench.SCALES["smoke"]
        assert smoke.n < bench.SCALES["default"].n

    def test_unknown_scale_rejected(self):
        with pytest.raises(ParameterError, match="unknown bench scale"):
            bench.run_bench(scenarios=SUBSET, scale="galactic")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ParameterError, match="unknown bench scenario"):
            bench.run_bench(scenarios=["nope"], **FAST)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ParameterError, match="repeats"):
            bench.run_bench(scenarios=SUBSET, repeats=0, **{
                k: v for k, v in FAST.items() if k != "repeats"
            })


class TestDeterminism:
    def test_logical_section_is_byte_identical_across_runs(self):
        first = bench.run_bench(scenarios=SUBSET, seed=3, **FAST)
        second = bench.run_bench(scenarios=SUBSET, seed=3, **FAST)
        assert bench.logical_section(first) == bench.logical_section(second)

    def test_logical_section_ignores_repeats_and_warmup(self):
        lean = bench.run_bench(scenarios=["merge_equi_height"], **FAST)
        heavy = bench.run_bench(
            scenarios=["merge_equi_height"], scale="smoke",
            repeats=2, warmup=1,
        )
        assert bench.logical_section(lean) == bench.logical_section(heavy)

    def test_seed_changes_the_logical_section(self):
        a = bench.run_bench(scenarios=["record_sampling"], seed=0, **FAST)
        b = bench.run_bench(scenarios=["record_sampling"], seed=1, **FAST)
        assert bench.logical_section(a) != bench.logical_section(b)

    def test_report_shape(self):
        report = bench.run_bench(scenarios=SUBSET, **FAST)
        assert report["schema_version"] == bench.BENCH_SCHEMA_VERSION
        assert report["kind"] == "bench"
        assert sorted(report["scenarios"]) == sorted(SUBSET)
        for entry in report["scenarios"].values():
            assert set(entry["logical"]) == {"result", "io", "counters"}
            assert entry["wall"]["repeats"] == 1
        assert set(report["meta"]) == {"generated_at", "git_sha", "python"}

    def test_timing_metrics_never_enter_logical_counters(self):
        report = bench.run_bench(scenarios=["trialpool_w2"], **FAST)
        counters = report["scenarios"]["trialpool_w2"]["logical"]["counters"]
        for name in bench._TIMING_METRICS:
            assert not any(key.startswith(name) for key in counters)


class TestComparator:
    @pytest.fixture(scope="class")
    def report(self):
        return bench.run_bench(scenarios=SUBSET, **FAST)

    def test_self_compare_passes(self, report):
        failures, _notes = bench.compare_reports(report, report)
        assert failures == []

    def test_injected_logical_regression_fails(self, report):
        doctored = copy.deepcopy(report)
        logical = doctored["scenarios"]["record_sampling"]["logical"]
        logical["io"]["page_reads"] = logical["io"].get("page_reads", 0) + 7
        failures, _notes = bench.compare_reports(report, doctored)
        assert any(
            "record_sampling" in f and "page_reads" in f for f in failures
        )

    def test_missing_scenario_fails_new_scenario_notes(self, report):
        shrunk = copy.deepcopy(report)
        del shrunk["scenarios"]["distinct_gee"]
        failures, _ = bench.compare_reports(shrunk, report)
        assert any("distinct_gee" in f and "missing" in f for f in failures)
        _, notes = bench.compare_reports(report, shrunk)
        assert any("distinct_gee" in n and "new scenario" in n for n in notes)

    def test_wall_clock_is_note_without_tolerance(self, report):
        slow = copy.deepcopy(report)
        for entry in slow["scenarios"].values():
            entry["wall"]["median_s"] *= 100
        failures, notes = bench.compare_reports(slow, report)
        assert failures == []
        assert any("wall median" in n for n in notes)

    def test_wall_tolerance_gates_when_given(self, report):
        slow = copy.deepcopy(report)
        for entry in slow["scenarios"].values():
            entry["wall"]["median_s"] *= 100
        failures, _ = bench.compare_reports(slow, report, wall_tolerance=1.5)
        assert any("exceeds tolerance" in f for f in failures)
        # ...and the other direction (faster than baseline) never fails.
        failures, _ = bench.compare_reports(report, slow, wall_tolerance=1.5)
        assert failures == []

    def test_schema_or_scale_mismatch_fails_fast(self, report):
        other = copy.deepcopy(report)
        other["schema_version"] = 99
        failures, _ = bench.compare_reports(report, other)
        assert any("schema_version mismatch" in f for f in failures)
        other = copy.deepcopy(report)
        other["scale"] = "default"
        failures, _ = bench.compare_reports(report, other)
        assert any("scale mismatch" in f for f in failures)


class TestProfiling:
    def test_profile_writes_loadable_pstats(self, tmp_path):
        bench.run_bench(
            scenarios=["merge_equi_height"], profile_dir=tmp_path, **FAST
        )
        stats_path = tmp_path / "merge_equi_height.pstats"
        assert stats_path.exists()
        stats = pstats.Stats(str(stats_path))
        assert stats.total_calls > 0
        top = (tmp_path / "merge_equi_height_top.txt").read_text()
        assert "cumulative" in top


class TestBaselineGate:
    """The checked-in baseline is the repo's perf regression gate."""

    def test_full_smoke_run_matches_checked_in_baseline(self):
        baseline = json.loads(BASELINE.read_text())
        report = bench.run_bench(**FAST)
        failures, _notes = bench.compare_reports(report, baseline)
        assert failures == [], (
            "bench logical costs drifted from benchmarks/baseline.json; "
            "if intentional, regenerate with `python -m repro bench --scale "
            "smoke --repeats 1 --warmup 0 --update-baseline`:\n"
            + "\n".join(failures)
        )
