"""docs/TELEMETRY.md is documented-by-construction: diff it vs the catalog.

Same contract as tests/obs/test_docs.py for OBSERVABILITY.md: every
declared sketch and series name (``repro.obs.catalog``) must appear in
docs/TELEMETRY.md in backticks, and the doc must never mention a
telemetry-shaped name the catalog does not declare.
"""

from __future__ import annotations

import pathlib
import re

from repro.obs.catalog import SERIES, SKETCHES

ROOT = pathlib.Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "TELEMETRY.md"

#: Telemetry names all share the serve_ prefix; backticked mentions of
#: that shape in the doc must be declared names.
_TELEMETRY_NAME = re.compile(r"`(serve_[a-z0-9_]+)`")


def _doc_names() -> set[str]:
    return set(_TELEMETRY_NAME.findall(DOC.read_text()))


class TestTelemetryDocSync:
    def test_doc_exists(self):
        assert DOC.is_file(), "docs/TELEMETRY.md is missing"

    def test_every_sketch_is_documented(self):
        missing = set(SKETCHES) - _doc_names()
        assert not missing, f"undocumented sketches: {sorted(missing)}"

    def test_every_series_is_documented(self):
        missing = set(SERIES) - _doc_names()
        assert not missing, f"undocumented series: {sorted(missing)}"

    def test_no_phantom_telemetry_names(self):
        declared = set(SKETCHES) | set(SERIES)
        phantom = _doc_names() - declared
        assert not phantom, f"doc mentions undeclared names: {sorted(phantom)}"

    def test_endpoints_are_documented(self):
        text = DOC.read_text()
        for endpoint in ("stats", "health", "watch"):
            assert f"`{endpoint}`" in text, f"endpoint {endpoint} undocumented"
