"""Property tests: registry and IOStats merges are associative/commutative.

These are the invariants that make cross-process aggregation through
:class:`~repro.experiments.parallel.TrialPool` order- and
chunking-independent: any split of the same per-trial emissions over worker
registries must export identically once merged back.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, render_json, render_text
from repro.storage.iostats import IOStats

# One emission = (kind, name, labels, value); drawn from a small declared
# subset so strict validation stays on.
_counter_names = st.sampled_from(
    ["repro_page_reads_total", "repro_retries_total"]
)
_labelled_counter = st.tuples(
    st.just("repro_fault_events_total"),
    st.sampled_from(["transient", "corrupt"]),
)

emissions = st.lists(
    st.one_of(
        st.tuples(
            st.just("counter"),
            _counter_names,
            st.just(None),
            st.integers(min_value=0, max_value=100),
        ),
        st.tuples(
            st.just("labelled"),
            _labelled_counter,
            st.just(None),
            st.integers(min_value=0, max_value=100),
        ),
        st.tuples(
            st.just("gauge"),
            st.just("repro_pool_workers"),
            st.just(None),
            st.integers(min_value=0, max_value=16),
        ),
        st.tuples(
            st.just("histogram"),
            st.just("repro_cvb_deviation_ratio"),
            st.just(None),
            st.floats(
                min_value=0, max_value=10, allow_nan=False
            ),
        ),
    ),
    max_size=40,
)


def _apply(registry: MetricsRegistry, emission) -> None:
    kind, name, _, value = emission
    if kind == "counter":
        registry.inc(name, value)
    elif kind == "labelled":
        metric, label = name
        registry.inc(metric, value, kind=label)
    elif kind == "gauge":
        registry.set_gauge(name, value)
    else:
        registry.observe(name, value)


def _registry_of(chunk) -> MetricsRegistry:
    registry = MetricsRegistry()
    for emission in chunk:
        _apply(registry, emission)
    return registry


def _export(registry: MetricsRegistry) -> tuple[str, str]:
    return render_text(registry), render_json(registry)


class TestRegistryMergeProperties:
    @given(emissions=emissions, split=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_split_merges_to_the_serial_registry(self, emissions, split):
        """Chunk the emission stream arbitrarily (simulating workers);
        merging the chunk registries must export exactly like one registry
        that saw everything."""
        serial = _registry_of(emissions)

        cuts = split.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(emissions)),
                max_size=4,
            )
        )
        boundaries = sorted({0, *cuts, len(emissions)})
        chunks = [
            emissions[lo:hi]
            for lo, hi in zip(boundaries, boundaries[1:])
        ]
        merged = MetricsRegistry()
        for chunk in chunks:
            merged.merge(_registry_of(chunk))

        # Gauges add under merge (per-process levels) while a single
        # registry overwrites, so the serial/merged comparison covers the
        # counter and histogram state.
        def stable(registry):
            snap = registry.snapshot()
            return snap["counters"], snap["histograms"]

        assert stable(merged) == stable(serial)

    def test_gauges_add_under_merge(self):
        a = MetricsRegistry()
        a.set_gauge("repro_pool_workers", 4)
        b = MetricsRegistry()
        b.set_gauge("repro_pool_workers", 2)
        assert a.merge(b).gauge_value("repro_pool_workers") == 6

    @given(a=emissions, b=emissions)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes(self, a, b):
        left = _registry_of(a).merge(_registry_of(b))
        right = _registry_of(b).merge(_registry_of(a))
        assert _export(left) == _export(right)

    @given(a=emissions, b=emissions, c=emissions)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        ab_c = _registry_of(a).merge(_registry_of(b)).merge(_registry_of(c))
        bc = _registry_of(b).merge(_registry_of(c))
        a_bc = _registry_of(a).merge(bc)
        assert _export(ab_c) == _export(a_bc)

    @given(emissions=emissions)
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_is_identity(self, emissions):
        reg = _registry_of(emissions)
        baseline = _export(reg)
        reg.merge(MetricsRegistry())
        assert _export(reg) == baseline


io_events = st.lists(
    st.sampled_from(["read", "failed", "retry", "skip"]).flatmap(
        lambda kind: st.tuples(
            st.just(kind), st.integers(min_value=0, max_value=30)
        )
    ),
    max_size=50,
)


def _iostats_of(events) -> IOStats:
    io = IOStats()
    for kind, page in events:
        if kind == "read":
            io.record_read(page)
        elif kind == "failed":
            io.record_failed_read(page)
        elif kind == "retry":
            io.record_retry(page)
        else:
            io.record_skip(page)
    return io


class TestIOStatsMergeProperties:
    @given(a=io_events, b=io_events)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes(self, a, b):
        left = _iostats_of(a).merge(_iostats_of(b))
        right = _iostats_of(b).merge(_iostats_of(a))
        assert left.snapshot() == right.snapshot()

    @given(a=io_events, b=io_events, c=io_events)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        ab_c = _iostats_of(a).merge(_iostats_of(b)).merge(_iostats_of(c))
        a_bc = _iostats_of(a).merge(_iostats_of(b).merge(_iostats_of(c)))
        assert ab_c.snapshot() == a_bc.snapshot()

    @given(events=io_events, split=st.integers(min_value=0, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_any_split_merges_to_the_serial_stats(self, events, split):
        split = min(split, len(events))
        serial = _iostats_of(events)
        merged = _iostats_of(events[:split]).merge(_iostats_of(events[split:]))
        assert merged.snapshot() == serial.snapshot()
