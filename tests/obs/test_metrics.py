"""Registry behavior: emission, strict validation, labels, exporters."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.obs import metrics
from repro.obs.catalog import COUNTER, GAUGE, HISTOGRAM, METRICS, SPANS
from repro.obs.metrics import (
    MetricsRegistry,
    equi_height_buckets,
    render_json,
    render_text,
)


class TestCatalog:
    def test_every_metric_name_matches_its_key(self):
        for name, spec in METRICS.items():
            assert spec.name == name

    def test_metric_types_are_known(self):
        for spec in METRICS.values():
            assert spec.type in (COUNTER, GAUGE, HISTOGRAM)

    def test_names_follow_prometheus_convention(self):
        for name, spec in METRICS.items():
            assert name.startswith("repro_")
            if spec.type == COUNTER:
                assert name.endswith("_total") or name.endswith(
                    "_seconds_total"
                )

    def test_every_metric_has_help(self):
        assert all(spec.help for spec in METRICS.values())

    def test_span_names_are_dotted(self):
        for name in SPANS:
            assert "." in name


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("repro_page_reads_total")
        reg.inc("repro_page_reads_total", 4)
        assert reg.counter_value("repro_page_reads_total") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError, match="counters only go up"):
            reg.inc("repro_page_reads_total", -1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("repro_fault_events_total", kind="transient")
        reg.inc("repro_fault_events_total", 2, kind="corrupt")
        assert reg.counter_value("repro_fault_events_total", kind="transient") == 1
        assert reg.counter_value("repro_fault_events_total", kind="corrupt") == 2
        assert len(reg) == 2

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_pool_workers", 4)
        reg.set_gauge("repro_pool_workers", 2)
        assert reg.gauge_value("repro_pool_workers") == 2

    def test_histogram_keeps_observations_in_order(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.observe("repro_cvb_deviation_ratio", v)
        assert reg.observations("repro_cvb_deviation_ratio") == [3.0, 1.0, 2.0]

    def test_strict_rejects_undeclared_name(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError, match="not declared"):
            reg.inc("repro_bogus_total")

    def test_strict_rejects_wrong_type(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError, match="is a counter"):
            reg.observe("repro_page_reads_total", 1.0)

    def test_strict_rejects_wrong_label_set(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError, match="takes labels"):
            reg.inc("repro_fault_events_total")
        with pytest.raises(ParameterError, match="takes labels"):
            reg.inc("repro_fault_events_total", kind="transient", extra="x")

    def test_non_strict_allows_adhoc_metrics(self):
        reg = MetricsRegistry(strict=False)
        reg.inc("adhoc_total", 3, anything="goes")
        assert reg.counter_value("adhoc_total", anything="goes") == 3

    def test_reset_clears_values(self):
        reg = MetricsRegistry()
        reg.inc("repro_page_reads_total")
        reg.observe("repro_cvb_deviation_ratio", 1.0)
        reg.reset()
        assert len(reg) == 0
        assert reg.names() == []

    def test_snapshot_roundtrips_through_merge(self):
        reg = MetricsRegistry()
        reg.inc("repro_page_reads_total", 7)
        reg.set_gauge("repro_pool_workers", 3)
        reg.observe("repro_cvb_deviation_ratio", 0.5)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.snapshot() == reg.snapshot()

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("repro_resilient_reads_total", outcome="delivered")
        json.dumps(reg.snapshot())


class TestActiveRegistryPlumbing:
    def test_disabled_by_default(self):
        assert not metrics.enabled()
        # No-ops must not raise nor require a registry.
        metrics.inc("repro_page_reads_total")
        metrics.set_gauge("repro_pool_workers", 1)
        metrics.observe("repro_cvb_deviation_ratio", 1.0)

    def test_collecting_routes_and_restores(self):
        assert metrics.active_registry() is None
        with metrics.collecting() as reg:
            assert metrics.active_registry() is reg
            metrics.inc("repro_page_reads_total")
        assert metrics.active_registry() is None
        assert reg.counter_value("repro_page_reads_total") == 1

    def test_collecting_nests(self):
        with metrics.collecting() as outer:
            metrics.inc("repro_page_reads_total")
            with metrics.collecting() as inner:
                metrics.inc("repro_page_reads_total", 5)
            assert metrics.active_registry() is outer
            metrics.inc("repro_page_reads_total")
        assert outer.counter_value("repro_page_reads_total") == 2
        assert inner.counter_value("repro_page_reads_total") == 5

    def test_enable_disable(self):
        reg = metrics.enable()
        try:
            assert metrics.enabled()
            metrics.inc("repro_page_reads_total")
        finally:
            metrics.disable()
        assert not metrics.enabled()
        assert reg.counter_value("repro_page_reads_total") == 1


class TestEquiHeightBuckets:
    def test_partitions_all_observations(self):
        values = [float(v) for v in range(17)]
        buckets = equi_height_buckets(values, k=4)
        assert sum(b["count"] for b in buckets) == 17
        les = [b["le"] for b in buckets]
        assert les == sorted(les)
        assert les[-1] == max(values)

    def test_empty_input(self):
        assert equi_height_buckets([], k=8) == []

    def test_fewer_values_than_buckets(self):
        buckets = equi_height_buckets([2.0, 1.0], k=8)
        assert sum(b["count"] for b in buckets) == 2

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            equi_height_buckets([1.0], k=0)

    def test_pure_function_of_multiset(self):
        a = equi_height_buckets([3.0, 1.0, 2.0, 2.0], k=2)
        b = equi_height_buckets([2.0, 2.0, 1.0, 3.0], k=2)
        assert a == b


class TestExporters:
    def _sample_registry(self):
        reg = MetricsRegistry()
        reg.inc("repro_page_reads_total", 12)
        reg.inc("repro_fault_events_total", 2, kind="transient")
        reg.inc("repro_fault_events_total", 1, kind="corrupt")
        reg.set_gauge("repro_pool_workers", 4)
        for v in (0.5, 1.5, 0.25):
            reg.observe("repro_cvb_deviation_ratio", v)
        return reg

    def test_text_has_help_type_and_series(self):
        text = render_text(self._sample_registry())
        assert "# TYPE repro_page_reads_total counter" in text
        assert "repro_page_reads_total 12" in text
        assert '# HELP repro_fault_events_total' in text
        assert 'repro_fault_events_total{kind="corrupt"} 1' in text
        assert 'repro_fault_events_total{kind="transient"} 2' in text
        assert "# TYPE repro_pool_workers gauge" in text
        assert "repro_cvb_deviation_ratio_count 3" in text
        assert "repro_cvb_deviation_ratio_sum 2.25" in text
        assert "_bucket{le=" in text

    def test_text_sorted_by_name(self):
        text = render_text(self._sample_registry())
        series_names = [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert series_names == sorted(series_names)

    def test_json_parses_and_sorts(self):
        payload = json.loads(render_json(self._sample_registry()))
        names = [m["name"] for m in payload["metrics"]]
        assert names == sorted(names)
        hist = [m for m in payload["metrics"] if m["type"] == "histogram"]
        assert hist and hist[0]["count"] == 3
        assert sum(b["count"] for b in hist[0]["buckets"]) == 3

    def test_exports_deterministic_across_emission_order(self):
        a = MetricsRegistry()
        a.inc("repro_fault_events_total", kind="transient")
        a.inc("repro_page_reads_total", 3)
        b = MetricsRegistry()
        b.inc("repro_page_reads_total", 3)
        b.inc("repro_fault_events_total", kind="transient")
        assert render_text(a) == render_text(b)
        assert render_json(a) == render_json(b)

    def test_empty_registry_renders_empty(self):
        assert render_text(MetricsRegistry()) == ""
        assert json.loads(render_json(MetricsRegistry())) == {
            "metrics": [],
            "schema_version": 1,
        }
