"""Golden-file tests for the metric exporters and the trace log.

One fixed, fully seeded scenario — a resilient CVB build over a faulty
heap file — is rendered through every exporter and compared byte-for-byte
against checked-in golden files.  Everything compared is deterministic:
exports carry no timestamps, trace comparison uses the timing-redacted
view, and even the I/O deltas are stable because read latency is simulated.

Regenerate after an intentional format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_exporters_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.adaptive import cvb_build
from repro.obs import metrics, trace
from repro.obs.metrics import render_json, render_prom, render_text
from repro.storage.faults import (
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
)
from repro.storage.heapfile import HeapFile
from repro.workloads.datasets import make_dataset

GOLDEN_DIR = Path(__file__).parent / "golden"


def _run_scenario():
    """The pinned build every golden file is derived from."""
    values = make_dataset("zipf2", 5_000, rng=7).values
    base = HeapFile.from_values(
        values, layout="random", rng=1, blocking_factor=25
    )
    faulty = FaultyHeapFile(
        base,
        FaultPolicy(transient_rate=0.1, corrupt_fraction=0.02, seed=2),
    )
    with metrics.collecting() as registry, trace.tracing() as recorder:
        cvb_build(
            faulty,
            k=10,
            f=0.25,
            rng=3,
            retry=RetryPolicy(max_attempts=5, seed=4),
            budget=ReadBudget(max_skipped_fraction=0.5),
        )
    return registry, recorder


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
    expected = path.read_text()
    assert actual == expected, (
        f"{name} drifted from its golden file; if the change is "
        f"intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


class TestGoldenExports:
    def setup_method(self):
        self.registry, self.recorder = _run_scenario()

    def test_text_export_matches_golden(self):
        _check_golden("metrics.txt", render_text(self.registry))

    def test_json_export_matches_golden(self):
        _check_golden("metrics.json", render_json(self.registry))

    def test_prom_export_matches_golden(self):
        _check_golden("metrics.prom", render_prom(self.registry))

    def test_prom_histograms_are_cumulative_and_closed(self):
        """Every histogram's +Inf bucket equals its _count sample."""
        lines = render_prom(self.registry).splitlines()
        inf = {
            line.split("{", 1)[0]: float(line.rsplit(" ", 1)[1])
            for line in lines
            if 'le="+Inf"' in line
        }
        counts = {
            line.split(" ", 1)[0].removesuffix("_count") + "_bucket":
                float(line.rsplit(" ", 1)[1])
            for line in lines
            if line.split(" ", 1)[0].endswith("_count")
        }
        assert inf, "no histogram buckets rendered"
        for name, value in inf.items():
            assert counts[name] == value

    def test_trace_matches_golden(self):
        _check_golden(
            "trace.jsonl", self.recorder.to_jsonl(redact_timing=True)
        )

    def test_json_export_carries_schema_version(self):
        document = json.loads(render_json(self.registry))
        assert document["schema_version"] == metrics.SCHEMA_VERSION

    def test_trace_records_carry_schema_version(self):
        lines = self.recorder.to_jsonl(redact_timing=True).splitlines()
        assert lines, "scenario produced no spans"
        for line in lines:
            record = json.loads(line)
            assert record["schema_version"] == trace.SCHEMA_VERSION

    def test_scenario_is_reproducible_in_process(self):
        registry, recorder = _run_scenario()
        assert render_text(registry) == render_text(self.registry)
        assert recorder.to_jsonl(redact_timing=True) == self.recorder.to_jsonl(
            redact_timing=True
        )
