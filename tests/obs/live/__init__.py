"""Tests for the live-telemetry primitives (repro.obs.live)."""
