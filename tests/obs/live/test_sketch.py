"""StreamingQuantileSketch: determinism, accuracy, byte-stable exports."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyDataError, ParameterError
from repro.obs.live import StreamingQuantileSketch

NAME = "serve_request_latency"


def _sketch(**kwargs):
    kwargs.setdefault("bucket_budget", 128)
    kwargs.setdefault("min_domain", 1e-3)
    kwargs.setdefault("max_domain", 1e3)
    return StreamingQuantileSketch(NAME, **kwargs)


def _nearest_rank(values, q):
    xs = sorted(values)
    return xs[max(1, math.ceil(q * len(xs))) - 1]


class TestValidation:
    def test_undeclared_name_rejected(self):
        with pytest.raises(ParameterError, match="undeclared sketch name"):
            StreamingQuantileSketch("made_up")

    def test_strict_false_allows_any_name(self):
        sketch = StreamingQuantileSketch("made_up", strict=False)
        assert sketch.name == "made_up"

    def test_bad_budget_and_domain_rejected(self):
        with pytest.raises(ParameterError):
            _sketch(bucket_budget=0)
        with pytest.raises(ParameterError):
            _sketch(min_domain=0.0)
        with pytest.raises(ParameterError):
            _sketch(min_domain=2.0, max_domain=1.0)

    def test_bad_values_rejected(self):
        sketch = _sketch()
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ParameterError):
                sketch.observe(bad)
        with pytest.raises(ParameterError):
            sketch.observe(1.0, count=0)

    def test_empty_sketch_has_no_histogram(self):
        sketch = _sketch()
        assert sketch.min is None and sketch.max is None
        with pytest.raises(EmptyDataError):
            sketch.to_histogram()


class TestDeterminism:
    def test_arrival_order_never_changes_the_state(self):
        values = [0.004, 7.0, 0.0, 0.25, 0.25, 1e-5, 900.0, 0.03]
        forward, backward = _sketch(), _sketch()
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.to_json() == backward.to_json()
        assert forward.percentiles() == backward.percentiles()

    def test_repeated_runs_are_bit_identical(self):
        exports = []
        for _ in range(2):
            sketch = _sketch()
            rng = np.random.default_rng(11)
            for v in rng.exponential(0.05, size=500):
                sketch.observe(float(v))
            exports.append((sketch.to_json(), json.dumps(sketch.percentiles())))
        assert exports[0] == exports[1]

    def test_merge_order_is_bit_identical(self):
        rng = np.random.default_rng(3)
        chunks = [rng.exponential(0.05, size=40) for _ in range(4)]
        sketches = []
        for chunk in chunks:
            sketch = _sketch()
            for v in chunk:
                sketch.observe(float(v))
            sketches.append(sketch)
        serial = _sketch()
        for chunk in chunks:
            for v in chunk:
                serial.observe(float(v))
        left = sketches[0].copy()
        for other in sketches[1:]:
            left.merge(other)
        right = sketches[-1].copy()
        for other in reversed(sketches[:-1]):
            right.merge(other)
        assert left.to_json() == right.to_json() == serial.to_json()
        assert left.percentiles() == serial.percentiles()

    def test_mismatched_config_refuses_merge(self):
        with pytest.raises(ParameterError, match="configs differ"):
            _sketch().merge(_sketch(bucket_budget=64))


class TestExports:
    def test_round_trip_is_lossless(self):
        sketch = _sketch()
        for v in (0.0, 0.0, 3.5e-4, 12.0, 2000.0):
            sketch.observe(v)
        clone = StreamingQuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_json() == sketch.to_json()
        assert clone.min == sketch.min == 0.0
        # min stays exact through the zero mass: merging the clone onward
        # must behave exactly like merging the original.
        more = _sketch()
        more.observe(5.0)
        assert (
            clone.merge(more).to_json()
            == sketch.copy().merge(more).to_json()
        )

    def test_copy_can_rename(self):
        sketch = _sketch()
        sketch.observe(1.0)
        frozen = sketch.copy(name="serve_reference_latency")
        assert frozen.name == "serve_reference_latency"
        assert frozen.count == 1

    def test_zero_point_mass_is_exact(self):
        sketch = _sketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(1.0)
        assert sketch.zero_count == 10
        assert sketch.quantile(0.5) == 0.0
        assert sketch.cdf(0.0) == pytest.approx(10 / 11)

    def test_memory_is_bounded_by_the_budget(self):
        sketch = _sketch(bucket_budget=16)
        rng = np.random.default_rng(0)
        for v in rng.uniform(1e-3, 1e3, size=5000):
            sketch.observe(float(v))
        assert len(sketch) <= 16 + 1  # grid buckets + optional zero mass


def _assert_quantiles_within_gamma(sketch, values):
    """Every probed quantile answer shares a grid bucket with the exact
    nearest-rank answer, so they differ by at most a factor of gamma."""
    slack = 1.0 + 1e-9
    for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        exact = _nearest_rank(values, q)
        estimate = sketch.quantile(q)
        assert estimate <= exact * sketch.gamma * slack
        assert estimate >= exact / sketch.gamma / slack


class TestAccuracy:
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(10, 400))
    @settings(max_examples=40, deadline=None)
    def test_uniform_stream(self, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.uniform(1e-3, 1e3, size=n).tolist()
        sketch = _sketch()
        for v in values:
            sketch.observe(v)
        _assert_quantiles_within_gamma(sketch, values)

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(10, 400))
    @settings(max_examples=40, deadline=None)
    def test_zipf_stream(self, seed, n):
        rng = np.random.default_rng(seed)
        # Heavy-tailed integer ranks, clamped into the resolved domain.
        values = np.minimum(
            rng.zipf(1.5, size=n).astype(float), 1e3
        ).tolist()
        sketch = _sketch()
        for v in values:
            sketch.observe(v)
        _assert_quantiles_within_gamma(sketch, values)

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(10, 400),
        base=st.floats(1e-2, 1e2, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_near_duplicate_stream(self, seed, n, base):
        rng = np.random.default_rng(seed)
        values = (base * (1.0 + rng.uniform(-1e-6, 1e-6, size=n))).tolist()
        sketch = _sketch()
        for v in values:
            sketch.observe(v)
        _assert_quantiles_within_gamma(sketch, values)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rank_error_bounded_by_one_bucket(self, seed):
        """cdf(quantile(q)) is within one bucket's mass of q."""
        rng = np.random.default_rng(seed)
        values = rng.lognormal(0.0, 2.0, size=300)
        values = np.clip(values, 1e-3, 1e3).tolist()
        sketch = _sketch()
        for v in values:
            sketch.observe(v)
        heaviest = max(sketch.bucket_masses().values())
        for q in (0.1, 0.5, 0.9, 0.99):
            achieved = sketch.cdf(sketch.quantile(q))
            assert abs(achieved - q) <= (heaviest + 1) / sketch.count

    def test_cdf_is_monotone(self):
        sketch = _sketch()
        rng = np.random.default_rng(5)
        for v in rng.uniform(1e-3, 1e3, size=200):
            sketch.observe(float(v))
        probes = np.linspace(1e-3, 1e3, 50)
        cdf = [sketch.cdf(float(p)) for p in probes]
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert 0.0 <= min(cdf) and max(cdf) <= 1.0 + 1e-12
