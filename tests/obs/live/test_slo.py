"""SloTracker burn semantics and the TV-distance shift detector."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.obs.live import (
    SloObjective,
    SloTracker,
    StreamingQuantileSketch,
    distribution_shift,
)


def _sketch(values, **kwargs):
    kwargs.setdefault("bucket_budget", 32)
    kwargs.setdefault("min_domain", 1e-3)
    kwargs.setdefault("max_domain", 1e3)
    sketch = StreamingQuantileSketch("serve_request_latency", **kwargs)
    for v in values:
        sketch.observe(v)
    return sketch


class TestObjective:
    def test_validation(self):
        with pytest.raises(ParameterError, match="objective kind"):
            SloObjective("x", "throughput", threshold=1.0)
        with pytest.raises(ParameterError, match="threshold"):
            SloObjective("x", "latency", threshold=-1.0)
        with pytest.raises(ParameterError, match="quantile"):
            SloObjective("x", "latency", threshold=1.0, quantile=2.0)

    def test_tracker_rejects_duplicates_and_bad_burn(self):
        objective = SloObjective("x", "latency", threshold=1.0)
        with pytest.raises(ParameterError, match="duplicate"):
            SloTracker((objective, objective))
        with pytest.raises(ParameterError, match="burn_windows"):
            SloTracker((objective,), burn_windows=0)


class TestEvaluate:
    def test_no_data_withholds_the_verdict(self):
        tracker = SloTracker(
            (
                SloObjective("lat", "latency", threshold=0.1),
                SloObjective("err", "error_rate", threshold=0.01),
            )
        )
        results = tracker.evaluate()
        assert [r["name"] for r in results] == ["err", "lat"]  # sorted
        assert all(not r["evaluated"] for r in results)
        assert all(r["ok"] is None and r["burn"] == 0 for r in results)

    def test_latency_objective_reads_the_sketch(self):
        tracker = SloTracker(
            (SloObjective("lat", "latency", threshold=0.1, quantile=0.5),)
        )
        (fast,) = tracker.evaluate(latency_sketch=_sketch([0.01] * 10))
        assert fast["evaluated"] and fast["ok"]
        (slow,) = tracker.evaluate(latency_sketch=_sketch([5.0] * 10))
        assert slow["evaluated"] and not slow["ok"]
        assert slow["burn"] == 1

    def test_error_rate_objective_reads_the_totals(self):
        tracker = SloTracker(
            (SloObjective("err", "error_rate", threshold=0.05),)
        )
        (ok,) = tracker.evaluate(requests=100, errors=2)
        assert ok["ok"] and ok["observed"] == pytest.approx(0.02)
        (bad,) = tracker.evaluate(requests=100, errors=50)
        assert not bad["ok"]

    def test_burn_streak_reaches_burning_and_resets(self):
        tracker = SloTracker(
            (SloObjective("err", "error_rate", threshold=0.0),),
            burn_windows=3,
        )
        for expected_burn in (1, 2):
            (r,) = tracker.evaluate(requests=10, errors=1)
            assert r["burn"] == expected_burn and not r["burning"]
            assert tracker.burning() == []
        (r,) = tracker.evaluate(requests=10, errors=1)
        assert r["burn"] == 3 and r["burning"]
        assert tracker.burning() == ["err"]
        # One healthy evaluation resets the streak entirely.
        (r,) = tracker.evaluate(requests=10, errors=0)
        assert r["burn"] == 0 and not r["burning"]
        assert tracker.burning() == []

    def test_no_data_leaves_the_streak_untouched(self):
        tracker = SloTracker(
            (SloObjective("err", "error_rate", threshold=0.0),),
            burn_windows=2,
        )
        tracker.evaluate(requests=10, errors=1)
        tracker.evaluate()  # no traffic: neither advances nor resets
        (r,) = tracker.evaluate(requests=10, errors=1)
        assert r["burn"] == 2 and r["burning"]


class TestDistributionShift:
    def test_identical_sketches_have_zero_distance(self):
        a = _sketch([0.01, 0.5, 2.0] * 20)
        verdict = distribution_shift(a, a.copy(), min_count=10)
        assert verdict["evaluated"]
        assert verdict["tv_distance"] == pytest.approx(0.0)
        assert not verdict["shifted"]

    def test_disjoint_sketches_have_distance_one(self):
        a = _sketch([0.01] * 40)
        b = _sketch([100.0] * 40)
        verdict = distribution_shift(a, b, epsilon=0.5, min_count=10)
        assert verdict["tv_distance"] == pytest.approx(1.0)
        assert verdict["shifted"]

    def test_zero_mass_counts_as_its_own_bucket(self):
        a = _sketch([0.0] * 40)
        b = _sketch([0.01] * 40)
        verdict = distribution_shift(a, b, min_count=10)
        assert verdict["tv_distance"] == pytest.approx(1.0)

    def test_min_count_withholds_the_verdict(self):
        a = _sketch([0.01] * 5)
        b = _sketch([0.01] * 100)
        verdict = distribution_shift(a, b, min_count=32)
        assert not verdict["evaluated"]
        assert verdict["tv_distance"] is None and not verdict["shifted"]

    def test_grid_mismatch_and_bad_params_rejected(self):
        a = _sketch([1.0] * 40)
        b = _sketch([1.0] * 40, bucket_budget=16)
        with pytest.raises(ParameterError, match="grids differ"):
            distribution_shift(a, b)
        with pytest.raises(ParameterError, match="epsilon"):
            distribution_shift(a, a.copy(), epsilon=0.0)
        with pytest.raises(ParameterError, match="min_count"):
            distribution_shift(a, a.copy(), min_count=0)
