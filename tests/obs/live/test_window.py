"""WindowedTimeseries: ring semantics, logical clock, byte-stable exports."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.obs.live import WindowedTimeseries

NAME = "serve_requests"


def _series(**kwargs):
    kwargs.setdefault("window_ticks", 10)
    kwargs.setdefault("num_windows", 3)
    return WindowedTimeseries(NAME, **kwargs)


class TestValidation:
    def test_undeclared_name_rejected(self):
        with pytest.raises(ParameterError, match="undeclared series name"):
            WindowedTimeseries("made_up")

    def test_strict_false_allows_any_name(self):
        assert WindowedTimeseries("made_up", strict=False).name == "made_up"

    def test_bad_geometry_rejected(self):
        with pytest.raises(ParameterError):
            _series(window_ticks=0)
        with pytest.raises(ParameterError):
            _series(num_windows=0)

    def test_negative_ticks_rejected(self):
        series = _series()
        with pytest.raises(ParameterError):
            series.advance(-1)
        with pytest.raises(ParameterError):
            series.record(1.0, tick=-1)


class TestRing:
    def test_record_defaults_to_the_clock(self):
        series = _series()
        series.advance(25)
        series.record()
        assert series.windows() == [[2, 1.0]]

    def test_windows_aggregate_by_tick(self):
        series = _series()
        for tick in (0, 9, 10, 29):
            series.record(2.0, tick=tick)
        assert series.windows() == [[0, 4.0], [1, 2.0], [2, 2.0]]
        assert series.value(1) == 2.0
        assert series.rate(1) == pytest.approx(0.2)

    def test_old_windows_expire(self):
        series = _series()
        series.record(1.0, tick=0)
        series.record(1.0, tick=35)  # window 3; cutoff drops window 0
        assert series.windows() == [[3, 1.0]]
        assert series.total == 2.0  # lifetime total survives pruning
        assert series.events == 2

    def test_late_event_in_expired_window_counts_only_toward_totals(self):
        series = _series()
        series.advance(35)
        series.record(1.0, tick=0)
        assert series.windows() == []
        assert series.total == 1.0

    def test_advance_is_monotone(self):
        series = _series()
        series.advance(30)
        series.advance(5)
        assert series.clock == 30
        assert series.window_index == 3


class TestMergeAndExport:
    def test_merge_matches_serial_recording(self):
        events = [(0, 1.0), (12, 3.0), (25, 1.0), (31, 2.0)]
        serial = _series()
        for tick, amount in events:
            serial.record(amount, tick=tick)
        a, b = _series(), _series()
        for tick, amount in events[:2]:
            a.record(amount, tick=tick)
        for tick, amount in events[2:]:
            b.record(amount, tick=tick)
        assert a.merge(b).to_json() == serial.to_json()

    def test_mismatched_config_refuses_merge(self):
        with pytest.raises(ParameterError, match="configs differ"):
            _series().merge(_series(window_ticks=5))

    def test_round_trip_is_lossless(self):
        series = _series()
        for tick in (3, 14, 14, 28):
            series.record(1.5, tick=tick)
        clone = WindowedTimeseries.from_dict(series.to_dict())
        assert clone.to_json() == series.to_json()

    def test_windows_since_cursor(self):
        series = _series()
        for tick in (0, 12, 25):
            series.record(1.0, tick=tick)
        assert series.windows_since(0) == series.windows()
        assert series.windows_since(2) == [[2, 1.0]]
        assert series.windows_since(99) == []
