"""Property tests: sketch and window merges are associative/commutative.

The same contract :class:`repro.obs.metrics.MetricsRegistry` carries
(tests/obs/test_merge_properties.py): any split of one observation stream
over per-worker instances must merge back to the state of a single
instance that saw everything — for any chunking and any merge order.
That is what lets telemetry snapshots aggregate across processes without
drift.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live import StreamingQuantileSketch, WindowedTimeseries

# Sketch observations: non-negative values spanning below/inside/above the
# domain, plus exact zeros (the point mass), with multiplicities.
sketch_values = st.lists(
    st.tuples(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=1e-9, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        st.integers(min_value=1, max_value=5),
    ),
    max_size=40,
)

# Window events: (tick, integer amount) so float addition is exact in any
# association order and the bit-identity assertions hold.
window_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=20),
    ),
    max_size=40,
)


def _sketch_of(observations):
    sketch = StreamingQuantileSketch(
        "serve_request_latency",
        bucket_budget=32, min_domain=1e-6, max_domain=1e3,
    )
    for value, count in observations:
        sketch.observe(value, count=count)
    return sketch


def _series_of(events):
    series = WindowedTimeseries(
        "serve_requests", window_ticks=16, num_windows=4
    )
    for tick, amount in events:
        series.record(float(amount), tick=tick)
    return series


class TestSketchMergeProperties:
    @given(observations=sketch_values, split=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_split_merges_to_the_serial_sketch(self, observations, split):
        serial = _sketch_of(observations)
        cuts = split.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(observations)),
                max_size=4,
            )
        )
        boundaries = sorted({0, *cuts, len(observations)})
        merged = _sketch_of([])
        for lo, hi in zip(boundaries, boundaries[1:]):
            merged.merge(_sketch_of(observations[lo:hi]))
        assert merged.to_json() == serial.to_json()

    @given(a=sketch_values, b=sketch_values)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes(self, a, b):
        left = _sketch_of(a).merge(_sketch_of(b))
        right = _sketch_of(b).merge(_sketch_of(a))
        assert left.to_json() == right.to_json()

    @given(a=sketch_values, b=sketch_values, c=sketch_values)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        ab_c = _sketch_of(a).merge(_sketch_of(b)).merge(_sketch_of(c))
        a_bc = _sketch_of(a).merge(_sketch_of(b).merge(_sketch_of(c)))
        assert ab_c.to_json() == a_bc.to_json()

    @given(observations=sketch_values)
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_is_identity(self, observations):
        sketch = _sketch_of(observations)
        baseline = sketch.to_json()
        assert sketch.merge(_sketch_of([])).to_json() == baseline

    @given(observations=sketch_values)
    @settings(max_examples=50, deadline=None)
    def test_snapshot_round_trip_survives_merging(self, observations):
        """from_dict(to_dict(s)) is indistinguishable from s under merge
        — the lossless-snapshot property cross-process shipping needs."""
        sketch = _sketch_of(observations)
        clone = StreamingQuantileSketch.from_dict(sketch.to_dict())
        extra = _sketch_of([(0.5, 2)])
        assert (
            clone.merge(extra).to_json()
            == sketch.copy().merge(extra).to_json()
        )


class TestWindowMergeProperties:
    @given(events=window_events, split=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_split_merges_to_the_serial_series(self, events, split):
        serial = _series_of(events)
        cuts = split.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(events)),
                max_size=4,
            )
        )
        boundaries = sorted({0, *cuts, len(events)})
        merged = _series_of([])
        for lo, hi in zip(boundaries, boundaries[1:]):
            merged.merge(_series_of(events[lo:hi]))
        assert merged.to_json() == serial.to_json()

    @given(a=window_events, b=window_events)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes(self, a, b):
        left = _series_of(a).merge(_series_of(b))
        right = _series_of(b).merge(_series_of(a))
        assert left.to_json() == right.to_json()

    @given(a=window_events, b=window_events, c=window_events)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        ab_c = _series_of(a).merge(_series_of(b)).merge(_series_of(c))
        a_bc = _series_of(a).merge(_series_of(b).merge(_series_of(c)))
        assert ab_c.to_json() == a_bc.to_json()

    @given(events=window_events)
    @settings(max_examples=50, deadline=None)
    def test_arrival_order_never_changes_the_state(self, events):
        forward = _series_of(events)
        backward = _series_of(list(reversed(events)))
        assert forward.to_json() == backward.to_json()
