"""Instrumentation regression tests.

Three guarantees from the observability layer's contract:

1. **Bit-identical results** — enabling metrics collection and tracing
   around a figure driver or the chaos sweep changes *nothing* about the
   produced numbers (instrumentation observes, never consumes randomness).
2. **Exact accounting** — the metrics exported from a chaos sweep tie out
   against the sweep's own :class:`~repro.storage.iostats.IOStats` totals,
   counter for counter.
3. **Worker independence** — a parallel sweep aggregates the same metric
   totals as the serial loop, for any worker count.
"""

from __future__ import annotations

import math

from repro.experiments.chaos import chaos_sweep, format_chaos_report
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import figures_3_and_4
from repro.experiments.reporting import format_series
from repro.obs import metrics, trace

MICRO = ExperimentScale(
    name="micro",
    n=20_000,
    n_sweep=(10_000, 20_000),
    k=10,
    bins_sweep=(5, 10),
    blocking_factor=25,
    record_sizes=(32, 128),
    trials=2,
    rates=(0.05, 0.2),
    f_target=0.3,
    f_bins=0.3,
)

SWEEP_KWARGS = dict(
    fault_rates=(0.0, 0.1),
    n=10_000,
    k=10,
    f=0.25,
    corrupt_fraction=0.02,
    blocking_factor=25,
    trials=2,
    seed=17,
)

# A sweep where no build ever gives up pages or aborts, so per-trial
# pages_skipped sums are directly comparable to the counter.
CLEAN_SWEEP_KWARGS = dict(SWEEP_KWARGS, fault_rates=(0.0,), corrupt_fraction=0.0)


def _chaos_text(**overrides) -> str:
    return format_chaos_report(chaos_sweep(**{**SWEEP_KWARGS, **overrides}))


class TestBitIdentical:
    def test_chaos_report_identical_with_instrumentation_on(self):
        plain = _chaos_text()
        with metrics.collecting(), trace.tracing():
            instrumented = _chaos_text()
        assert instrumented == plain

    def test_figure_series_identical_with_instrumentation_on(self):
        def run():
            result = figures_3_and_4(scale=MICRO, seed=3)
            return format_series(
                "f3", [result["rate"]]
            ) + format_series("f4", [result["blocks"]])

        plain = run()
        with metrics.collecting(), trace.tracing():
            instrumented = run()
        assert instrumented == plain


class TestChaosAccounting:
    def _sweep_with_metrics(self, **overrides):
        with metrics.collecting() as registry:
            result = chaos_sweep(**{**SWEEP_KWARGS, **overrides})
        return result, registry

    def test_read_attempts_split_exactly(self):
        result, registry = self._sweep_with_metrics()
        page_reads = sum(p.iostats.page_reads for p in result["points"])
        failed = sum(p.iostats.failed_reads for p in result["points"])
        assert registry.counter_value("repro_page_reads_total") == page_reads
        assert registry.counter_value("repro_failed_reads_total") == failed
        assert (
            registry.counter_value("repro_read_attempts_total")
            == page_reads + failed
        )

    def test_retries_and_skips_tie_out(self):
        result, registry = self._sweep_with_metrics()
        retries = sum(p.iostats.retries for p in result["points"])
        skipped = sum(p.iostats.pages_skipped for p in result["points"])
        assert registry.counter_value("repro_retries_total") == retries
        assert registry.counter_value("repro_pages_skipped_total") == skipped

    def test_trial_and_build_counts(self):
        result, registry = self._sweep_with_metrics()
        trials = sum(p.trials for p in result["points"])
        builds = registry.counter_value(
            "repro_cvb_builds_total", outcome="converged"
        ) + registry.counter_value(
            "repro_cvb_builds_total", outcome="budget_stopped"
        )
        # Aborted builds raise before the outcome counter; completed ones
        # are counted exactly once.
        aborted = sum(p.aborted for p in result["points"])
        assert builds == trials - aborted
        assert registry.counter_value("repro_pool_trials_total") == trials

    def test_fault_free_sweep_emits_no_fault_counters(self):
        result, registry = self._sweep_with_metrics(**CLEAN_SWEEP_KWARGS)
        assert all(not p.aborted for p in result["points"])
        assert registry.counter_value("repro_failed_reads_total") == 0
        assert registry.counter_value("repro_pages_skipped_total") == 0
        assert (
            registry.counter_value(
                "repro_fault_events_total", kind="transient"
            )
            == 0
        )


class TestWorkerIndependence:
    # Float-valued: summed in a different grouping across workers, so equal
    # only up to float-addition reordering (~1 ulp), not bit-exact.
    FLOAT_COUNTERS = {"repro_simulated_latency_seconds_total"}

    def _totals(self, registry) -> dict:
        snap = registry.snapshot()
        # Histogram observations arrive in worker-completion chunks; the
        # multiset is what must match, so compare sorted.
        return {
            "counters": [
                entry
                for entry in snap["counters"]
                if entry[0] not in self.FLOAT_COUNTERS
            ],
            "float_counters": [
                entry
                for entry in snap["counters"]
                if entry[0] in self.FLOAT_COUNTERS
            ],
            "histograms": [
                [name, labels, sorted(values)]
                for name, labels, values in snap["histograms"]
                if name != "repro_pool_trial_seconds"  # wall time, not data
            ],
        }

    def test_serial_and_parallel_aggregate_identically(self):
        with metrics.collecting() as serial_registry:
            serial = _chaos_text(workers=1)
        with metrics.collecting() as parallel_registry:
            parallel = _chaos_text(workers=2, chunk_size=1)
        assert parallel == serial
        serial_totals = self._totals(serial_registry)
        parallel_totals = self._totals(parallel_registry)
        # Pool-lifecycle series legitimately differ (executor events exist
        # only in process mode, map mode label differs); everything the
        # *trials* emitted must agree exactly.
        lifecycle = {
            "repro_pool_maps_total",
            "repro_pool_executor_events_total",
        }
        for side in (serial_totals, parallel_totals):
            side["counters"] = [
                entry for entry in side["counters"] if entry[0] not in lifecycle
            ]
        serial_floats = serial_totals.pop("float_counters")
        parallel_floats = parallel_totals.pop("float_counters")
        assert parallel_totals == serial_totals
        assert len(parallel_floats) == len(serial_floats)
        for (name_s, labels_s, value_s), (name_p, labels_p, value_p) in zip(
            serial_floats, parallel_floats
        ):
            assert (name_p, labels_p) == (name_s, labels_s)
            assert math.isclose(value_p, value_s, rel_tol=1e-9)

    def test_disabled_parent_ships_no_worker_snapshots(self):
        # With collection off, parallel maps must not resurrect metrics.
        assert not metrics.enabled()
        text = _chaos_text(workers=2, chunk_size=1)
        assert not metrics.enabled()
        assert "fault_rate" in text
