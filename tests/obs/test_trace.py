"""Trace spans: nesting, io deltas, error capture, disabled path."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.obs import trace
from repro.obs.trace import _NULL_SPAN, TIMING_KEYS, TraceRecorder
from repro.storage.iostats import IOStats


class TestDisabledPath:
    def test_span_is_shared_noop_without_recorder(self):
        assert trace.active_recorder() is None
        sp = trace.span("cvb.build", anything=1)
        assert sp is _NULL_SPAN
        with sp as inner:
            inner.set(ignored=True)

    def test_noop_span_records_nothing(self):
        with trace.span("cvb.build"):
            pass
        assert trace.active_recorder() is None


class TestRecording:
    def test_sequential_ids_and_parenting(self):
        with trace.tracing() as rec:
            with trace.span("cvb.build"):
                with trace.span("cvb.iteration", index=0):
                    pass
                with trace.span("cvb.iteration", index=1):
                    pass
        names = [(r.span_id, r.parent_id, r.name) for r in rec.records]
        # Completion order: children close before their parent.
        assert names == [
            (1, 0, "cvb.iteration"),
            (2, 0, "cvb.iteration"),
            (0, None, "cvb.build"),
        ]

    def test_attrs_and_set(self):
        with trace.tracing() as rec:
            with trace.span("cvb.iteration", index=3) as sp:
                sp.set(passed=True, observed_error=0.125)
        (record,) = rec.records
        assert record.attrs == {
            "index": 3, "passed": True, "observed_error": 0.125,
        }

    def test_io_delta(self):
        io = IOStats()
        io.record_read(0)
        with trace.tracing() as rec:
            with trace.span("cvb.iteration", iostats=io):
                io.record_read(1)
                io.record_read(1)
                io.record_failed_read(2)
        (record,) = rec.records
        assert record.io_delta["page_reads"] == 2
        assert record.io_delta["failed_reads"] == 1
        assert record.io_delta["pages_touched"] == 1

    def test_error_attr_on_exception(self):
        with trace.tracing() as rec:
            with pytest.raises(ValueError):
                with trace.span("cvb.build"):
                    raise ValueError("boom")
        (record,) = rec.records
        assert record.attrs["error"] == "ValueError"

    def test_strict_rejects_undeclared_span_name(self):
        with trace.tracing():
            with pytest.raises(ParameterError, match="not declared"):
                with trace.span("made.up"):
                    pass

    def test_non_strict_recorder_allows_any_name(self):
        with trace.tracing(TraceRecorder(strict=False)) as rec:
            with trace.span("made.up"):
                pass
        assert rec.records[0].name == "made.up"

    def test_tracing_restores_previous_recorder(self):
        with trace.tracing() as outer:
            with trace.span("cvb.build"):
                pass
            with trace.tracing() as inner:
                with trace.span("pool.map"):
                    pass
            assert trace.active_recorder() is outer
        assert trace.active_recorder() is None
        assert [r.name for r in outer.records] == ["cvb.build"]
        assert [r.name for r in inner.records] == ["pool.map"]


class TestSerialisation:
    def _recorded(self):
        with trace.tracing() as rec:
            with trace.span("cvb.build", k=10):
                with trace.span("cvb.iteration", index=0):
                    pass
        return rec

    def test_events_redact_timing_by_default(self):
        events = self._recorded().events()
        for event in events:
            for key in TIMING_KEYS:
                assert key not in event

    def test_events_keep_timing_when_asked(self):
        events = self._recorded().events(redact_timing=False)
        assert all("t_wall" in e and "duration_s" in e for e in events)

    def test_jsonl_is_one_object_per_line(self):
        lines = self._recorded().to_jsonl().strip().split("\n")
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._recorded().write(str(path), redact_timing=True)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["cvb.iteration", "cvb.build"]

    def test_numpy_attrs_coerced(self):
        np = pytest.importorskip("numpy")
        with trace.tracing() as rec:
            with trace.span("cvb.build", pages=np.int64(7)):
                pass
        event = rec.events()[0]
        assert event["attrs"]["pages"] == 7
        json.dumps(event)
