"""docs/OBSERVABILITY.md is documented-by-construction: diff it vs the catalog.

The observability docs promise that every metric and span name in
``repro.obs.catalog`` is catalogued in docs/OBSERVABILITY.md and vice
versa.  These tests enforce the promise literally, so the doc cannot go
stale (or invent names) without CI failing.  The repo's doc lints
(``tools/check_docstrings.py`` / ``tools/check_links.py``) are also run
here so a broken docstring or dead link fails tier-1, not just CI.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

import pytest

from repro.obs.catalog import METRICS, SPANS

ROOT = pathlib.Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "OBSERVABILITY.md"
EXPERIMENTS_DOC = ROOT / "EXPERIMENTS.md"

#: Exposition-format suffixes a histogram metric may legitimately appear
#: with in prose/examples (Prometheus-style derived series).
_EXPOSITION_SUFFIXES = ("_bucket", "_count", "_sum")

_METRIC_NAME = re.compile(r"\brepro_[a-z0-9_]+\b")


def _doc_metric_names() -> set[str]:
    """Metric names mentioned in the doc, normalised to catalog names."""
    raw = set(_METRIC_NAME.findall(DOC.read_text()))
    names = set()
    for name in raw:
        for suffix in _EXPOSITION_SUFFIXES:
            base = name.removesuffix(suffix)
            if base != name and base in METRICS:
                name = base
                break
        names.add(name)
    return names


class TestMetricCatalogSync:
    """The metric tables cover exactly the declared surface."""

    def test_every_declared_metric_is_documented(self):
        """No metric can be added to the catalog without documenting it."""
        missing = set(METRICS) - _doc_metric_names()
        assert not missing, f"undocumented metrics: {sorted(missing)}"

    def test_no_phantom_metrics_in_doc(self):
        """The doc never mentions a metric name the catalog doesn't declare."""
        phantom = _doc_metric_names() - set(METRICS)
        assert not phantom, f"doc mentions undeclared metrics: {sorted(phantom)}"

    def test_documented_labels_match_catalog(self):
        """Each metric's doc table row lists exactly its declared labels."""
        text = DOC.read_text()
        for name, spec in METRICS.items():
            if not spec.labels:
                continue
            # The table row: | `name` | type | `label` = ... | meaning |
            row = re.search(rf"\| `{name}` \|[^|]*\|([^|]*)\|", text)
            assert row is not None, f"no table row for {name}"
            for label in spec.labels:
                assert f"`{label}`" in row.group(1), (
                    f"{name}: label {label!r} missing from its doc row"
                )


class TestSpanTaxonomySync:
    """The span table covers exactly the declared span names."""

    def test_every_declared_span_is_documented(self):
        text = DOC.read_text()
        missing = [name for name in SPANS if f"`{name}`" not in text]
        assert not missing, f"undocumented spans: {missing}"

    def test_span_table_has_no_phantom_rows(self):
        """Every span-shaped name in the taxonomy table is declared."""
        text = DOC.read_text()
        table = text.split("## Span taxonomy", 1)[1].split("##", 1)[0]
        rows = re.findall(r"^\| `([a-z_]+\.[a-z_]+)` \|", table, re.MULTILINE)
        phantom = [name for name in rows if name not in SPANS]
        assert not phantom, f"doc lists undeclared spans: {phantom}"
        assert set(rows) == set(SPANS)


class TestBenchScenarioSync:
    """Both bench docs catalogue exactly the registered scenarios."""

    @pytest.fixture(scope="class")
    def scenarios(self):
        from repro.obs.bench import SCENARIOS

        return SCENARIOS

    @pytest.mark.parametrize("doc", [DOC, EXPERIMENTS_DOC], ids=lambda p: p.name)
    def test_every_scenario_is_documented(self, doc, scenarios):
        """Adding a scenario without documenting it fails here."""
        text = doc.read_text()
        missing = [name for name in scenarios if f"`{name}`" not in text]
        assert not missing, f"{doc.name} missing scenarios: {missing}"

    def test_no_phantom_scenarios_in_bench_table(self, scenarios):
        """Scenario-shaped rows in the bench table are all registered."""
        text = DOC.read_text()
        table = text.split("## Benchmarking & profiling", 1)[1].split(
            "### Running", 1
        )[0]
        rows = re.findall(r"^\| `([a-z0-9_]+)` \|", table, re.MULTILINE)
        phantom = [name for name in rows if name not in scenarios]
        assert not phantom, f"doc lists unregistered scenarios: {phantom}"
        assert set(rows) == set(scenarios)

    def test_baseline_matches_registered_scenarios(self, scenarios):
        """benchmarks/baseline.json covers the full registry at version 1."""
        import json

        from repro.obs.bench import BENCH_SCHEMA_VERSION

        baseline = json.loads(
            (ROOT / "benchmarks" / "baseline.json").read_text()
        )
        assert baseline["schema_version"] == BENCH_SCHEMA_VERSION
        assert sorted(baseline["scenarios"]) == sorted(scenarios)


class TestDocLints:
    """The repo's own doc lints pass from a clean checkout."""

    @pytest.mark.parametrize(
        "tool", ["check_docstrings.py", "check_links.py"]
    )
    def test_lint_passes(self, tool):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / tool)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
