"""Tests for the exception hierarchy.

Two contracts matter to callers: every deliberate error is catchable via
``except ReproError`` (one base class for the whole library), and the
fault-layer exceptions survive pickling — :class:`TrialPool` workers raise
them in child processes and the parent must receive them intact.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exceptions import (
    BuildAbortedError,
    CatalogError,
    ConvergenceError,
    EmptyDataError,
    InfeasibleBoundError,
    PageCorruptionError,
    PageFullError,
    ParameterError,
    ReproError,
    StatisticsNotFoundError,
    StorageError,
    TransientIOError,
    UnknownLayoutError,
)

ALL_CONCRETE = [
    ParameterError("bad param"),
    EmptyDataError("no data"),
    InfeasibleBoundError("bound infeasible"),
    ConvergenceError("no convergence"),
    BuildAbortedError("budget gone", snapshot={"failed_reads": 3}),
    StorageError("storage"),
    PageFullError("full"),
    UnknownLayoutError("layout?"),
    TransientIOError("flaky", page_id=7, attempt=2),
    PageCorruptionError("bad checksum", page_id=9),
    CatalogError("catalog"),
    StatisticsNotFoundError("missing"),
]


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", ALL_CONCRETE, ids=lambda e: type(e).__name__
    )
    def test_everything_is_a_repro_error(self, exc):
        with pytest.raises(ReproError):
            raise exc

    def test_storage_family(self):
        for exc_type in (
            PageFullError,
            UnknownLayoutError,
            TransientIOError,
            PageCorruptionError,
        ):
            assert issubclass(exc_type, StorageError)

    def test_dual_inheritance_keeps_idiomatic_catches_working(self):
        with pytest.raises(ValueError):
            raise ParameterError("still a ValueError")
        with pytest.raises(IOError):
            raise TransientIOError("still an IOError")
        with pytest.raises(KeyError):
            raise StatisticsNotFoundError("still a KeyError")


class TestPicklability:
    @pytest.mark.parametrize(
        "exc", ALL_CONCRETE, ids=lambda e: type(e).__name__
    )
    def test_round_trip_preserves_type_and_message(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        assert clone.args == exc.args

    def test_round_trip_preserves_fault_attributes(self):
        t = pickle.loads(
            pickle.dumps(TransientIOError("flaky", page_id=7, attempt=2))
        )
        assert (t.page_id, t.attempt) == (7, 2)
        c = pickle.loads(pickle.dumps(PageCorruptionError("bad", page_id=9)))
        assert c.page_id == 9
        b = pickle.loads(
            pickle.dumps(BuildAbortedError("over", snapshot={"skipped_pages": 5}))
        )
        assert b.snapshot == {"skipped_pages": 5}

    def test_round_trip_preserves_convergence_result(self):
        """EXC001 regression: the partial result must survive pickling.

        ``ConvergenceError.__init__`` used to drop ``result`` from
        ``super().__init__``, so a TrialPool worker's best-effort
        histogram silently vanished at the process boundary.
        """
        payload = {"buckets": [1, 2, 3], "iterations": 4}
        exc = ConvergenceError("did not converge", result=payload)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.result == payload
        assert clone.args == exc.args
        assert str(clone) == "did not converge"

    def test_build_aborted_crosses_a_real_process_boundary(self):
        """The exact path TrialPool uses: a worker raises, the parent
        receives the same exception with its payload intact."""
        with ProcessPoolExecutor(max_workers=1) as executor:
            future = executor.submit(_raise_build_aborted)
            with pytest.raises(BuildAbortedError) as exc_info:
                future.result()
        assert exc_info.value.snapshot == {"failed_reads": 11}
        assert "boom" in str(exc_info.value)


def _raise_build_aborted():
    raise BuildAbortedError("boom", snapshot={"failed_reads": 11})
