"""Tests for System R / histogram-based join-size estimation."""

import numpy as np
import pytest

from repro.engine import StatisticsManager, Table
from repro.engine.joins import (
    histogram_join_size,
    system_r_join_size,
    true_join_size,
)


def analyze_pair(left_values, right_values, seed=0, method="fullscan"):
    manager = StatisticsManager()
    left_table = Table("L", {"key": left_values})
    right_table = Table("R", {"key": right_values})
    left = manager.analyze(left_table, "key", k=50, method=method, rng=seed)
    right = manager.analyze(
        right_table, "key", k=50, method=method, rng=seed + 1
    )
    return left, right


class TestTrueJoinSize:
    def test_key_foreign_key(self):
        keys = np.arange(100)
        fks = np.repeat(np.arange(100), 5)
        assert true_join_size(keys, fks) == 500

    def test_disjoint(self):
        assert true_join_size(np.arange(10), np.arange(100, 110)) == 0

    def test_full_cross_on_one_value(self):
        assert true_join_size(np.full(10, 7), np.full(20, 7)) == 200


class TestSystemR:
    def test_exact_for_key_fk_with_perfect_stats(self):
        keys = np.arange(2000)
        fks = np.repeat(np.arange(2000), 10)
        left, right = analyze_pair(keys, fks)
        est = system_r_join_size(left, right)
        assert est == pytest.approx(true_join_size(keys, fks), rel=0.01)

    def test_sampled_stats_stay_close(self):
        rng = np.random.default_rng(0)
        keys = np.arange(20_000)
        fks = rng.integers(0, 20_000, size=60_000)
        left, right = analyze_pair(keys, fks, method="cvb")
        est = system_r_join_size(left, right)
        truth = true_join_size(keys, fks)
        assert est == pytest.approx(truth, rel=0.5)

    def test_symmetric(self):
        keys = np.arange(1000)
        fks = np.repeat(np.arange(1000), 3)
        left, right = analyze_pair(keys, fks)
        assert system_r_join_size(left, right) == pytest.approx(
            system_r_join_size(right, left)
        )


class TestHistogramJoin:
    def test_matches_system_r_on_full_overlap(self):
        keys = np.arange(2000)
        fks = np.repeat(np.arange(2000), 10)
        left, right = analyze_pair(keys, fks)
        hist_est = histogram_join_size(left, right)
        truth = true_join_size(keys, fks)
        assert hist_est == pytest.approx(truth, rel=0.2)

    def test_beats_system_r_on_partial_overlap(self):
        """Only the top half of the left domain exists on the right: the
        containment assumption overestimates, histogram alignment does not."""
        left_values = np.repeat(np.arange(2000), 5)
        right_values = np.repeat(np.arange(1000, 3000), 5)
        left, right = analyze_pair(left_values, right_values)
        truth = true_join_size(left_values, right_values)
        sr = system_r_join_size(left, right)
        hist = histogram_join_size(left, right)
        assert abs(hist - truth) < abs(sr - truth)

    def test_disjoint_ranges_give_zero(self):
        left, right = analyze_pair(np.arange(1000), np.arange(5000, 6000))
        assert histogram_join_size(left, right) == 0.0

    def test_resolution_override(self):
        keys = np.arange(2000)
        fks = np.repeat(np.arange(2000), 2)
        left, right = analyze_pair(keys, fks)
        coarse = histogram_join_size(left, right, resolution=4)
        fine = histogram_join_size(left, right, resolution=256)
        truth = true_join_size(keys, fks)
        assert abs(fine - truth) <= abs(coarse - truth) + 0.1 * truth

    def test_invalid_resolution_rejected(self):
        from repro.exceptions import ParameterError

        left, right = analyze_pair(np.arange(100), np.arange(100))
        with pytest.raises(ParameterError):
            histogram_join_size(left, right, resolution=1)
