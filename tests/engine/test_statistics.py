"""Tests for the StatisticsManager (ANALYZE) pipeline."""

import numpy as np
import pytest

from repro.engine import StatisticsManager, Table
from repro.exceptions import ParameterError, StatisticsNotFoundError


@pytest.fixture
def orders_table():
    rng = np.random.default_rng(0)
    n = 20_000
    return Table(
        "orders",
        {
            "qty": np.arange(n),
            "price": np.repeat(np.arange(n // 10), 10)[rng.permutation(n)],
        },
    )


class TestAnalyze:
    def test_cvb_builds_statistics(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "qty", k=20, f=0.25, rng=1)
        assert stats.method == "cvb"
        assert stats.histogram.k == 20
        assert stats.n == 20_000
        assert 0 < stats.sampling_rate <= 1
        assert stats.pages_read > 0

    def test_fullscan_is_exact(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(
            orders_table, "qty", k=20, method="fullscan", rng=1
        )
        assert stats.sample_size == 20_000
        assert stats.distinct_estimate == 20_000
        assert stats.density == 0.0
        np.testing.assert_array_equal(
            stats.histogram.counts, np.full(20, 1000)
        )

    def test_record_method_uses_bounded_sample(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(
            orders_table,
            "qty",
            k=10,
            method="record",
            record_sample_size=2_000,
            rng=2,
        )
        assert stats.sample_size == 2_000
        # Record-level sampling pays one page read per tuple.
        assert stats.pages_read == 2_000

    def test_unknown_method_rejected(self, orders_table):
        with pytest.raises(ParameterError):
            StatisticsManager().analyze(orders_table, "qty", method="magic")

    def test_density_reflects_duplication(self, orders_table):
        manager = StatisticsManager()
        distinct = manager.analyze(
            orders_table, "qty", k=10, method="fullscan", rng=3
        )
        duplicated = manager.analyze(
            orders_table, "price", k=10, method="fullscan", rng=3
        )
        assert duplicated.density > distinct.density

    def test_statistics_stored_in_catalog(self, orders_table):
        manager = StatisticsManager()
        manager.analyze(orders_table, "qty", k=10, f=0.3, rng=4)
        fetched = manager.statistics("orders", "qty")
        assert fetched.column_name == "qty"
        with pytest.raises(StatisticsNotFoundError):
            manager.statistics("orders", "ghost")

    def test_custom_heapfile_reused(self, orders_table):
        manager = StatisticsManager()
        hf = orders_table.to_heapfile("qty", layout="random", rng=5,
                                      blocking_factor=40)
        stats = manager.analyze(orders_table, "qty", k=10, f=0.3,
                                heapfile=hf, rng=6)
        assert stats.pages_read <= hf.num_pages


class TestConsumption:
    def test_estimate_range_reasonable(self, orders_table):
        manager = StatisticsManager()
        manager.analyze(orders_table, "qty", k=50, f=0.2, rng=7)
        est = manager.estimate_range("orders", "qty", 0, 9_999)
        assert est == pytest.approx(10_000, rel=0.15)

    def test_estimate_distinct(self, orders_table):
        manager = StatisticsManager()
        manager.analyze(orders_table, "price", k=20, f=0.25, rng=8)
        est = manager.estimate_distinct("orders", "price")
        # 2,000 true distinct values, each duplicated 10 times.
        assert 500 <= est <= 20_000

    def test_estimate_equality_uses_density(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(
            orders_table, "price", k=20, method="fullscan", rng=9
        )
        # Each price occurs exactly 10 times; density-based estimate should
        # land near 10.
        assert stats.estimate_equality(42) == pytest.approx(10, rel=0.3)

    def test_summary_mentions_method_and_rate(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "qty", k=10, f=0.3, rng=10)
        text = stats.summary()
        assert "orders.qty" in text
        assert "cvb" in text


class TestCompressedHistogramAccessor:
    def test_built_from_stored_sample(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "price", k=20, f=0.25, rng=30)
        compressed = stats.compressed_histogram()
        assert compressed.total == pytest.approx(stats.n, rel=0.05)

    def test_skewed_column_gets_singletons(self):
        import numpy as np

        from repro.workloads import make_dataset

        dataset = make_dataset("zipf4", 50_000, rng=31)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=20, f=0.25, rng=32)
        compressed = stats.compressed_histogram()
        assert len(compressed.singletons) >= 1
        # The hot value's estimate is far better than plain interpolation
        # at coarse k would allow.
        distinct, counts = np.unique(dataset.values, return_counts=True)
        hot = float(distinct[counts.argmax()])
        truth = int(counts.max())
        est = compressed.estimate_equality(hot)
        assert est == pytest.approx(truth, rel=0.25)

    def test_missing_sample_rejected(self, orders_table):
        from repro.exceptions import ParameterError

        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "qty", k=10, f=0.3, rng=33)
        stats.sample = None
        with pytest.raises(ParameterError):
            stats.compressed_histogram()



class TestAnalyzeAll:
    def test_every_column_analyzed(self, orders_table):
        manager = StatisticsManager()
        results = manager.analyze_all(orders_table, k=10, f=0.3, rng=40)
        assert set(results) == {"qty", "price"}
        for name, stats in results.items():
            assert stats.column_name == name
            assert stats.histogram.k == 10
        assert len(manager.catalog) == 2

    def test_columns_get_independent_streams(self, orders_table):
        manager = StatisticsManager()
        results = manager.analyze_all(orders_table, k=10, f=0.3, rng=41)
        # Different columns, different samples — not byte-identical runs.
        assert not np.array_equal(
            results["qty"].sample, results["price"].sample
        )

    def test_deterministic(self, orders_table):
        a = StatisticsManager().analyze_all(orders_table, k=10, f=0.3, rng=42)
        b = StatisticsManager().analyze_all(orders_table, k=10, f=0.3, rng=42)
        assert a["qty"].histogram == b["qty"].histogram


class TestQuantilePassthrough:
    def test_quantiles_from_sampled_statistics(self, orders_table):
        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "qty", k=50, f=0.2, rng=50)
        # qty is 0..19999 uniform: quantiles are linear.
        for q in (0.1, 0.5, 0.9):
            assert stats.estimate_quantile(q) == pytest.approx(
                q * 20_000, rel=0.05
            )

    def test_quantile_survives_serialization(self, orders_table):
        from repro.engine.serialization import (
            statistics_from_json,
            statistics_to_json,
        )

        manager = StatisticsManager()
        stats = manager.analyze(orders_table, "qty", k=20, f=0.3, rng=51)
        reloaded = statistics_from_json(statistics_to_json(stats))
        assert reloaded.estimate_quantile(0.5) == pytest.approx(
            stats.estimate_quantile(0.5)
        )
