"""Tests for the Table/Column abstractions."""

import numpy as np
import pytest

from repro.engine.table import Column, Table
from repro.exceptions import CatalogError, ParameterError


class TestColumn:
    def test_basic(self):
        col = Column("price", np.array([3, 1, 2]))
        assert col.num_rows == 3
        np.testing.assert_array_equal(col.sorted_values(), [1, 2, 3])

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Column("", np.arange(3))

    def test_multidimensional_rejected(self):
        with pytest.raises(ParameterError):
            Column("x", np.zeros((2, 2)))


class TestTable:
    def test_add_and_fetch(self):
        t = Table("orders", {"qty": np.arange(10)})
        assert t.num_rows == 10
        assert t.column("qty").num_rows == 10
        assert t.column_names == ["qty"]

    def test_duplicate_column_rejected(self):
        t = Table("orders", {"qty": np.arange(10)})
        with pytest.raises(CatalogError):
            t.add_column("qty", np.arange(10))

    def test_row_count_mismatch_rejected(self):
        t = Table("orders", {"qty": np.arange(10)})
        with pytest.raises(ParameterError):
            t.add_column("price", np.arange(5))

    def test_missing_column_rejected(self):
        t = Table("orders")
        with pytest.raises(CatalogError):
            t.column("ghost")

    def test_empty_table(self):
        t = Table("empty")
        assert t.num_rows == 0
        assert t.column_names == []

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Table("")

    def test_to_heapfile_roundtrip(self):
        values = np.arange(1000)
        t = Table("orders", {"qty": values})
        hf = t.to_heapfile("qty", layout="random", rng=0, blocking_factor=25)
        assert hf.num_records == 1000
        assert hf.blocking_factor == 25
        np.testing.assert_array_equal(
            np.sort(hf.values_unaccounted()), values
        )
