"""Tests for ColumnStatistics / catalog persistence."""

import numpy as np
import pytest

from repro.engine import StatisticsManager, Table
from repro.engine.serialization import (
    dump_catalog,
    load_catalog,
    statistics_from_dict,
    statistics_from_json,
    statistics_to_dict,
    statistics_to_json,
)
from repro.exceptions import ParameterError
from repro.workloads import make_dataset


@pytest.fixture
def built_stats():
    dataset = make_dataset("zipf2", 20_000, rng=0)
    table = Table("sales", {"amount": dataset.values})
    manager = StatisticsManager()
    stats = manager.analyze(table, "amount", k=20, f=0.25, rng=1)
    return manager, stats, dataset


class TestStatisticsRoundTrip:
    def test_dict_roundtrip_preserves_fields(self, built_stats):
        _, stats, _ = built_stats
        rebuilt = statistics_from_dict(statistics_to_dict(stats))
        assert rebuilt.table_name == stats.table_name
        assert rebuilt.column_name == stats.column_name
        assert rebuilt.n == stats.n
        assert rebuilt.density == stats.density
        assert rebuilt.selfjoin_density == stats.selfjoin_density
        assert rebuilt.distinct_estimate == stats.distinct_estimate
        assert rebuilt.histogram == stats.histogram
        assert rebuilt.build_params == stats.build_params

    def test_sample_and_trace_not_persisted(self, built_stats):
        _, stats, _ = built_stats
        payload = statistics_to_dict(stats)
        assert "sample" not in payload
        assert "cvb_result" not in payload
        rebuilt = statistics_from_dict(payload)
        assert rebuilt.sample is None
        assert rebuilt.cvb_result is None

    def test_estimates_survive_roundtrip(self, built_stats):
        _, stats, dataset = built_stats
        rebuilt = statistics_from_json(statistics_to_json(stats))
        lo, hi = 10, 300
        assert rebuilt.estimate_range(lo, hi) == pytest.approx(
            stats.estimate_range(lo, hi)
        )
        assert rebuilt.estimate_equality(5) == pytest.approx(
            stats.estimate_equality(5)
        )

    def test_bad_json_rejected(self):
        with pytest.raises(ParameterError):
            statistics_from_json("{broken")

    def test_wrong_version_rejected(self, built_stats):
        _, stats, _ = built_stats
        payload = statistics_to_dict(stats)
        payload["format_version"] = 99
        with pytest.raises(ParameterError):
            statistics_from_dict(payload)

    def test_missing_field_rejected(self, built_stats):
        _, stats, _ = built_stats
        payload = statistics_to_dict(stats)
        del payload["density"]
        with pytest.raises(ParameterError):
            statistics_from_dict(payload)


class TestCatalogRoundTrip:
    def test_dump_and_load(self, built_stats):
        manager, _, dataset = built_stats
        table = Table("sales", {"qty": np.arange(20_000)})
        manager.analyze(table, "qty", k=10, f=0.3, rng=2)

        text = dump_catalog(manager.catalog)
        restored = load_catalog(text)
        assert restored.keys() == manager.catalog.keys()
        original = manager.catalog.get("sales", "amount")
        loaded = restored.get("sales", "amount")
        assert loaded.histogram == original.histogram

    def test_empty_catalog(self):
        from repro.engine.catalog import Catalog

        restored = load_catalog(dump_catalog(Catalog()))
        assert len(restored) == 0

    def test_bad_catalog_payload_rejected(self):
        with pytest.raises(ParameterError):
            load_catalog('{"no_entries": true}')
        with pytest.raises(ParameterError):
            load_catalog("not json at all")
