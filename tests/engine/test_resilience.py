"""Tests for degraded-but-bounded statistics serving.

``ensure_fresh`` must never raise :class:`BuildAbortedError`: an aborted
refresh serves the last-known-good bundle flagged ``degraded=True``, keeps
the staleness counter armed, and a later successful rebuild replaces the
degraded bundle with a fresh one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    AutoStatistics,
    StatisticsManager,
    Table,
    build_or_fallback,
    mark_degraded,
)
from repro.engine.serialization import statistics_from_dict, statistics_to_dict
from repro.exceptions import BuildAbortedError
from repro.storage import FaultPolicy, ReadBudget, RetryPolicy

N = 20_000


@pytest.fixture
def table():
    return Table("t", {"x": np.arange(1, N + 1)})


def analyze_kwargs(**overrides):
    """ANALYZE parameters for a build that survives heavy transient faults."""
    kwargs = dict(
        k=10,
        f=0.3,
        fault_policy=FaultPolicy(transient_rate=0.5, seed=1),
        retry=RetryPolicy(max_attempts=8, seed=2),
        read_budget=ReadBudget(max_failed_reads=1_000_000),
        rng=0,
    )
    kwargs.update(overrides)
    return kwargs


def sabotage(stats):
    """Tighten the remembered budget so the next auto-refresh aborts."""
    stats.build_params["read_budget"] = ReadBudget(max_failed_reads=2)


def heal(stats):
    stats.build_params["read_budget"] = ReadBudget(max_failed_reads=1_000_000)


class TestMarkDegraded:
    def test_copy_is_flagged_original_untouched(self, table):
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=10, f=0.3, rng=0)
        degraded = mark_degraded(stats)
        assert degraded.degraded and not stats.degraded
        assert degraded.histogram is stats.histogram  # shallow copy
        assert "DEGRADED" in degraded.summary()
        assert "DEGRADED" not in stats.summary()


class TestBuildOrFallback:
    def test_success_path_refreshes(self, table):
        manager = StatisticsManager()
        stats, refreshed = build_or_fallback(
            manager, table, "x", k=10, f=0.3, rng=0
        )
        assert refreshed
        assert not stats.degraded

    def test_abort_serves_degraded_fallback_and_updates_catalog(self, table):
        manager = StatisticsManager()
        good = manager.analyze(table, "x", k=10, f=0.3, rng=0)
        stats, refreshed = build_or_fallback(
            manager,
            table,
            "x",
            fallback=good,
            k=10,
            f=0.3,
            rng=1,
            fault_policy=FaultPolicy(transient_rate=0.5, seed=1),
            retry=RetryPolicy(max_attempts=2, seed=2),
            read_budget=ReadBudget(max_failed_reads=2),
        )
        assert not refreshed
        assert stats.degraded
        # Direct catalog reads see the flag too.
        assert manager.statistics("t", "x").degraded

    def test_abort_without_fallback_propagates(self, table):
        manager = StatisticsManager()
        with pytest.raises(BuildAbortedError):
            build_or_fallback(
                manager,
                table,
                "x",
                k=10,
                f=0.3,
                rng=1,
                fault_policy=FaultPolicy(transient_rate=0.5, seed=1),
                retry=RetryPolicy(max_attempts=2, seed=2),
                read_budget=ReadBudget(max_failed_reads=2),
            )


class TestEnsureFreshDegradation:
    def test_aborted_refresh_serves_degraded_then_recovers(self, table):
        auto = AutoStatistics()
        stats = auto.analyze(table, "x", **analyze_kwargs())
        assert not stats.degraded

        auto.record_modifications("t", "x", N)  # well past the 20% threshold
        sabotage(stats)
        served = auto.ensure_fresh(table, "x", rng=5)  # must NOT raise
        assert served.degraded
        assert auto.degraded_count == 1
        assert auto.refresh_count == 0
        # Staleness is still armed: the counter was not reset.
        assert auto.is_stale("t", "x")

        # Next read retries the refresh; with a workable budget it succeeds
        # and the degraded bundle is replaced by a fresh one.
        heal(served)
        fresh = auto.ensure_fresh(table, "x", rng=6)
        assert not fresh.degraded
        assert auto.refresh_count == 1
        assert not auto.is_stale("t", "x")
        assert not auto.manager.statistics("t", "x").degraded

    def test_fresh_statistics_untouched_without_staleness(self, table):
        auto = AutoStatistics()
        stats = auto.analyze(table, "x", **analyze_kwargs())
        assert auto.ensure_fresh(table, "x") is not None
        assert auto.degraded_count == 0

    def test_degraded_bundle_keeps_serving_estimates(self, table):
        auto = AutoStatistics()
        stats = auto.analyze(table, "x", **analyze_kwargs())
        auto.record_modifications("t", "x", N)
        sabotage(stats)
        served = auto.ensure_fresh(table, "x", rng=5)
        # Bounded answer: the stale histogram still estimates sanely.
        est = served.estimate_range(1, N)
        assert est == pytest.approx(N, rel=0.35)


class TestDegradedSerialization:
    def test_degraded_and_io_round_trip(self, table):
        manager = StatisticsManager()
        stats = manager.analyze(
            table,
            "x",
            k=10,
            f=0.3,
            rng=0,
            fault_policy=FaultPolicy(transient_rate=0.2, seed=3),
            retry=RetryPolicy(max_attempts=6, seed=4),
            read_budget=ReadBudget(max_skipped_fraction=0.5),
        )
        clone = statistics_from_dict(statistics_to_dict(mark_degraded(stats)))
        assert clone.degraded
        assert clone.io == stats.io
        assert clone.io["page_reads"] > 0

    def test_old_payloads_default_to_not_degraded(self, table):
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=10, f=0.3, rng=0)
        payload = statistics_to_dict(stats)
        payload.pop("degraded")
        payload.pop("io")
        clone = statistics_from_dict(payload)
        assert clone.degraded is False
        assert clone.io == {}

    def test_resilience_params_serialize_to_plain_json_types(self, table):
        import json

        manager = StatisticsManager()
        stats = manager.analyze(
            table,
            "x",
            k=10,
            f=0.3,
            rng=0,
            fault_policy=FaultPolicy(transient_rate=0.2, seed=3),
            retry=RetryPolicy(max_attempts=6, seed=4),
            read_budget=ReadBudget(max_failed_reads=100),
        )
        payload = statistics_to_dict(stats)
        json.dumps(payload)  # must not choke on the dataclass knobs
