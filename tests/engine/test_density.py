"""Tests for the density statistic (Section 7.1 semantics)."""

import numpy as np
import pytest

from repro.engine.density import (
    column_density,
    density_from_counts,
    density_from_estimate,
)
from repro.exceptions import EmptyDataError, ParameterError


class TestDensity:
    def test_all_distinct_is_zero(self):
        assert column_density(np.arange(100)) == 0.0

    def test_all_identical_is_one(self):
        assert column_density(np.full(100, 7)) == 1.0

    def test_monotone_in_duplication(self):
        low = column_density(np.repeat(np.arange(50), 2))
        high = column_density(np.repeat(np.arange(10), 10))
        assert 0 < low < high < 1

    def test_single_row(self):
        assert column_density(np.array([5])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            column_density(np.array([]))

    def test_counts_form_matches(self):
        values = np.repeat(np.arange(25), 4)
        assert column_density(values) == density_from_counts(100, 25)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ParameterError):
            density_from_counts(0, 1)
        with pytest.raises(ParameterError):
            density_from_counts(10, 0)
        with pytest.raises(ParameterError):
            density_from_counts(10, 11)

    def test_estimate_form_clamps(self):
        # Estimates outside [1, n] are clamped rather than rejected.
        assert density_from_estimate(100, 0.5) == density_from_counts(100, 1)
        assert density_from_estimate(100, 500.0) == density_from_counts(100, 100)

    def test_estimate_matches_exact_when_feasible(self):
        assert density_from_estimate(100, 25.0) == density_from_counts(100, 25)


class TestSelfJoinDensity:
    """The SQL Server-style second-moment density."""

    def test_all_distinct_is_one_over_n(self):
        from repro.engine.density import selfjoin_density

        assert selfjoin_density(np.arange(1000)) == pytest.approx(1 / 1000)

    def test_constant_column_is_one(self):
        from repro.engine.density import selfjoin_density

        assert selfjoin_density(np.full(100, 7)) == 1.0

    def test_uniform_duplicates(self):
        from repro.engine.density import selfjoin_density

        # d values each n/d times: density = d * (1/d)^2 = 1/d.
        values = np.repeat(np.arange(50), 20)
        assert selfjoin_density(values) == pytest.approx(1 / 50)

    def test_sample_estimator_unbiased(self):
        from repro.engine.density import (
            selfjoin_density,
            selfjoin_density_from_sample,
        )

        rng = np.random.default_rng(0)
        values = np.repeat(np.arange(100), 50)  # true density 0.01
        truth = selfjoin_density(values)
        estimates = [
            selfjoin_density_from_sample(
                values[np.random.default_rng(s).integers(0, values.size, 500)]
            )
            for s in range(50)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_sample_estimator_concentrates_on_skew(self):
        """The second moment is easy even where the distinct count is not:
        a heavy-skew column's density estimates tightly from 1% samples."""
        from repro.engine.density import (
            selfjoin_density,
            selfjoin_density_from_sample,
        )
        from repro.workloads import make_dataset

        dataset = make_dataset("zipf4", 100_000, rng=1)
        truth = selfjoin_density(dataset.values)
        estimates = [
            selfjoin_density_from_sample(
                dataset.values[
                    np.random.default_rng(s).integers(0, dataset.n, 1000)
                ]
            )
            for s in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.1)

    def test_single_element_sample(self):
        from repro.engine.density import selfjoin_density_from_sample

        assert selfjoin_density_from_sample(np.array([5])) == 1.0

    def test_empty_rejected(self):
        from repro.engine.density import (
            selfjoin_density,
            selfjoin_density_from_sample,
        )

        with pytest.raises(EmptyDataError):
            selfjoin_density(np.array([]))
        with pytest.raises(EmptyDataError):
            selfjoin_density_from_sample(np.array([]))
