"""Tests for range-selectivity estimation (the Theorem 1/3 consumer)."""

import numpy as np
import pytest

from repro.core.histogram import EquiHeightHistogram
from repro.engine.selectivity import (
    RangeEstimate,
    RangeSelectivityEstimator,
    evaluate_workload,
)
from repro.exceptions import ParameterError
from repro.workloads.queries import RangeQuery, random_range_queries


def uniform_histogram(n=10_000, k=20):
    values = np.arange(1, n + 1)
    return EquiHeightHistogram.from_values(values, k), values


class TestEstimator:
    def test_full_data_histogram_scale_is_identity(self):
        hist, values = uniform_histogram()
        est = RangeSelectivityEstimator(hist, table_rows=values.size)
        assert est.estimate(RangeQuery(1, 10_000)) == pytest.approx(
            10_000, rel=0.01
        )

    def test_sample_histogram_scales_to_table(self, rng):
        values = np.arange(1, 100_001)
        sample = rng.choice(values, size=5_000, replace=True)
        hist = EquiHeightHistogram.from_values(sample, 20)
        est = RangeSelectivityEstimator(hist, table_rows=values.size)
        # A half-domain query should estimate about half the table.
        assert est.estimate(RangeQuery(1, 50_000)) == pytest.approx(
            50_000, rel=0.1
        )

    def test_selectivity_fraction(self):
        hist, values = uniform_histogram()
        est = RangeSelectivityEstimator(hist, table_rows=values.size)
        sel = est.selectivity(RangeQuery(1, 5_000))
        assert sel == pytest.approx(0.5, abs=0.02)

    def test_invalid_rows_rejected(self):
        hist, _ = uniform_histogram()
        with pytest.raises(ParameterError):
            RangeSelectivityEstimator(hist, table_rows=0)


class TestRangeEstimate:
    def test_errors(self):
        e = RangeEstimate(RangeQuery(0, 1), estimate=110.0, truth=100)
        assert e.absolute_error == 10.0
        assert e.relative_error() == pytest.approx(0.1)

    def test_relative_floor_guards_tiny_truth(self):
        e = RangeEstimate(RangeQuery(0, 1), estimate=5.0, truth=0)
        assert e.relative_error(floor=1.0) == 5.0


class TestWorkloadEvaluation:
    def test_accuracy_bounded_by_theorem3(self, rng):
        """An approximate histogram with measured max error f keeps all range
        estimates within (1+f)*2n/k of the truth, plus interpolation slack
        inside boundary buckets (Theorem 3)."""
        from repro.core.error_metrics import max_error_fraction

        n, k = 50_000, 25
        values = np.arange(1, n + 1)
        sample = np.sort(rng.choice(values, size=8_000, replace=True))
        hist = EquiHeightHistogram.from_values(sample, k)
        f = max_error_fraction(hist.recount(values).counts)
        estimator = RangeSelectivityEstimator(hist, table_rows=n)
        queries = random_range_queries(values, 100, rng)
        accuracy = evaluate_workload(estimator, values, queries)
        assert accuracy.max_absolute_error <= (1 + f) * 2 * n / k + n / k

    def test_summary_string(self, rng):
        hist, values = uniform_histogram()
        estimator = RangeSelectivityEstimator(hist, table_rows=values.size)
        queries = random_range_queries(values, 10, rng)
        accuracy = evaluate_workload(estimator, values, queries)
        assert "10 queries" in accuracy.summary()

    def test_empty_workload_rejected(self):
        hist, values = uniform_histogram()
        estimator = RangeSelectivityEstimator(hist, table_rows=values.size)
        with pytest.raises(ParameterError):
            evaluate_workload(estimator, values, [])

    def test_perfect_histogram_beats_coarse_sample(self, rng):
        """More sampling -> better histograms -> better estimates, on
        average over a workload."""
        n, k = 50_000, 25
        values = np.arange(1, n + 1)
        queries = random_range_queries(values, 200, rng)

        tiny_sample = np.sort(rng.choice(values, size=300, replace=True))
        big_sample = np.sort(rng.choice(values, size=30_000, replace=True))
        errors = []
        for sample in (tiny_sample, big_sample):
            hist = EquiHeightHistogram.from_values(sample, k)
            estimator = RangeSelectivityEstimator(hist, table_rows=n)
            errors.append(
                evaluate_workload(estimator, values, queries).mean_absolute_error
            )
        assert errors[1] < errors[0]
