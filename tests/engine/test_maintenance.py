"""Tests for statistics staleness tracking and auto-refresh."""

import numpy as np
import pytest

from repro.engine import Table
from repro.engine.maintenance import (
    AutoStatistics,
    ModificationCounter,
    RefreshPolicy,
)
from repro.exceptions import ParameterError


class TestModificationCounter:
    def test_accumulates(self):
        counter = ModificationCounter()
        counter.record("t", "x", 10)
        counter.record("t", "x", 5)
        assert counter.since_refresh("t", "x") == 15

    def test_independent_keys(self):
        counter = ModificationCounter()
        counter.record("t", "x", 10)
        assert counter.since_refresh("t", "y") == 0
        assert counter.since_refresh("u", "x") == 0

    def test_reset(self):
        counter = ModificationCounter()
        counter.record("t", "x", 10)
        counter.reset("t", "x")
        assert counter.since_refresh("t", "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            ModificationCounter().record("t", "x", -1)


class TestRefreshPolicy:
    def test_default_threshold(self):
        policy = RefreshPolicy()
        assert policy.threshold(10_000) == 2_000
        assert policy.threshold(100) == 500  # the floor dominates

    def test_custom_policy(self):
        policy = RefreshPolicy(fraction=0.5, floor_rows=10)
        assert policy.threshold(1000) == 500

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            RefreshPolicy(fraction=0.0)
        with pytest.raises(ParameterError):
            RefreshPolicy(floor_rows=-1)

    def test_negative_n_rejected(self):
        with pytest.raises(ParameterError):
            RefreshPolicy().threshold(-1)


class TestAutoStatistics:
    def _setup(self, n=20_000):
        table = Table("t", {"x": np.arange(n)})
        auto = AutoStatistics(policy=RefreshPolicy(fraction=0.2, floor_rows=100))
        auto.analyze(table, "x", k=10, f=0.3, rng=0)
        return table, auto

    def test_fresh_statistics_not_rebuilt(self):
        table, auto = self._setup()
        before = auto.manager.catalog.version("t", "x")
        auto.record_modifications("t", "x", 10)
        auto.ensure_fresh(table, "x", rng=1)
        assert auto.manager.catalog.version("t", "x") == before
        assert auto.refresh_count == 0

    def test_stale_statistics_rebuilt(self):
        table, auto = self._setup()
        auto.record_modifications("t", "x", 5_000)  # > 20% of 20k
        assert auto.is_stale("t", "x")
        auto.ensure_fresh(table, "x", rng=2)
        assert auto.refresh_count == 1
        assert not auto.is_stale("t", "x")

    def test_refresh_reuses_build_params(self):
        table, auto = self._setup()
        auto.record_modifications("t", "x", 5_000)
        refreshed = auto.ensure_fresh(table, "x", rng=3)
        assert refreshed.histogram.k == 10
        assert refreshed.build_params["f"] == 0.3

    def test_refresh_sees_new_data(self):
        table = Table("t", {"x": np.arange(10_000)})
        auto = AutoStatistics(policy=RefreshPolicy(fraction=0.1, floor_rows=10))
        auto.analyze(table, "x", k=10, f=0.3, rng=4)
        old_max = auto.manager.statistics("t", "x").histogram.max_value

        # Simulate growth: a new table object with a wider domain.
        grown = Table("t", {"x": np.arange(40_000)})
        auto.record_modifications("t", "x", 30_000)
        refreshed = auto.ensure_fresh(grown, "x", rng=5)
        assert refreshed.histogram.max_value > old_max
        assert refreshed.n == 40_000

    def test_counter_resets_after_analyze(self):
        table, auto = self._setup()
        auto.record_modifications("t", "x", 5_000)
        auto.analyze(table, "x", k=10, f=0.3, rng=6)
        assert not auto.is_stale("t", "x")


class TestSingleFlightRefresh:
    """Concurrent stale readers trigger exactly one rebuild per column."""

    def test_concurrent_misses_build_once(self, monkeypatch):
        import threading

        from repro.engine import maintenance

        table = Table("t", {"x": np.arange(20_000)})
        auto = AutoStatistics(
            policy=RefreshPolicy(fraction=0.2, floor_rows=100)
        )
        auto.analyze(table, "x", k=10, f=0.3, rng=0)
        auto.record_modifications("t", "x", 5_000)

        builds = []
        both_stale = threading.Barrier(2, timeout=5.0)
        real = maintenance.build_or_fallback

        def slow_build(*args, **kwargs):
            # Hold the flight lock long enough that the other reader is
            # guaranteed to pass its pre-lock staleness check and block on
            # the lock; losing single-flight would then build twice.
            import time

            builds.append(threading.get_ident())
            time.sleep(0.1)
            return real(*args, **kwargs)

        monkeypatch.setattr(maintenance, "build_or_fallback", slow_build)

        results, errors = [], []

        def reader(rng_seed):
            try:
                both_stale.wait()
                results.append(auto.ensure_fresh(table, "x", rng=rng_seed))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(seed,)) for seed in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert not errors
        assert len(builds) == 1, f"expected one build, got {len(builds)}"
        assert auto.refresh_count == 1
        assert len(results) == 2
        # The waiter sees the rebuilt (not the stale) bundle.
        versions = {auto.manager.catalog.version("t", "x")}
        assert versions == {2}
        assert not auto.is_stale("t", "x")

    def test_per_column_locks_are_independent(self):
        auto = AutoStatistics()
        lock_a = auto._flight_lock("t", "x")
        lock_b = auto._flight_lock("t", "y")
        assert lock_a is not lock_b
        assert auto._flight_lock("t", "x") is lock_a
