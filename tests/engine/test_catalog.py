"""Tests for the statistics catalog."""

import numpy as np
import pytest

from repro.engine import StatisticsManager, Table
from repro.engine.catalog import Catalog
from repro.exceptions import StatisticsNotFoundError


def build_stats(seed=0):
    table = Table("t", {"x": np.arange(2000)})
    manager = StatisticsManager()
    stats = manager.analyze(table, "x", k=10, f=0.3, method="fullscan", rng=seed)
    return stats


class TestCatalog:
    def test_put_and_get(self):
        catalog = Catalog()
        stats = build_stats()
        catalog.put(stats)
        assert catalog.get("t", "x") is stats
        assert ("t", "x") in catalog
        assert len(catalog) == 1

    def test_missing_raises(self):
        catalog = Catalog()
        with pytest.raises(StatisticsNotFoundError):
            catalog.get("t", "ghost")

    def test_versioning(self):
        catalog = Catalog()
        stats = build_stats()
        assert catalog.version("t", "x") == 0
        catalog.put(stats)
        assert catalog.version("t", "x") == 1
        catalog.put(stats)
        assert catalog.version("t", "x") == 2

    def test_drop_idempotent(self):
        catalog = Catalog()
        catalog.put(build_stats())
        catalog.drop("t", "x")
        catalog.drop("t", "x")
        assert len(catalog) == 0

    def test_keys_sorted(self):
        catalog = Catalog()
        a = build_stats()
        a.column_name = "b"
        catalog.put(a)
        b = build_stats()
        b.column_name = "a"
        catalog.put(b)
        assert catalog.keys() == [("t", "a"), ("t", "b")]
