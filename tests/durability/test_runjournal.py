"""RunCheckpoint: chunk splicing, key pinning, bit-identical resume."""

from __future__ import annotations

import math

import pytest

from repro.durability import RunCheckpoint, read_records
from repro.durability.runjournal import seeds_key
from repro.exceptions import CheckpointError
from repro.experiments.parallel import TrialPool


class TestMapPlans:
    def test_fresh_plan_journals_the_chunking(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        plan = checkpoint.begin_map("k0", chunk_size=3, num_chunks=2)
        assert (plan.chunk_size, plan.completed) == (3, {})
        records, _, tail = read_records(tmp_path / "run.journal")
        assert tail is None
        assert records == [
            {"op": "map", "map": 0, "key": "k0", "chunk_size": 3, "chunks": 2}
        ]

    def test_recorded_chunks_come_back_on_resume(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        plan = checkpoint.begin_map("k0", chunk_size=2, num_chunks=2)
        plan.record(0, [(1.5, 0.0), (2.5, 0.0)])
        resumed = RunCheckpoint(tmp_path, resume=True)
        plan2 = resumed.begin_map("k0", chunk_size=2, num_chunks=2)
        assert plan2.completed == {0: [(1.5, 0.0), (2.5, 0.0)]}

    def test_journaled_chunk_size_wins_on_resume(self, tmp_path):
        RunCheckpoint(tmp_path).begin_map("k0", chunk_size=2, num_chunks=3)
        resumed = RunCheckpoint(tmp_path, resume=True)
        # A different worker count would derive chunk_size=5; the journal's
        # chunking must win so completed chunk indices keep lining up.
        plan = resumed.begin_map("k0", chunk_size=5, num_chunks=2)
        assert plan.chunk_size == 2

    def test_key_mismatch_raises_checkpoint_error(self, tmp_path):
        RunCheckpoint(tmp_path).begin_map("k0", chunk_size=2, num_chunks=1)
        resumed = RunCheckpoint(tmp_path, resume=True)
        with pytest.raises(CheckpointError):
            resumed.begin_map("other", chunk_size=2, num_chunks=1)

    def test_fresh_start_discards_an_existing_journal(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.begin_map("k0", chunk_size=2, num_chunks=1).record(
            0, [(1.0, 0.0)]
        )
        fresh = RunCheckpoint(tmp_path, resume=False)
        plan = fresh.begin_map("other", chunk_size=4, num_chunks=1)
        assert (plan.chunk_size, plan.completed) == (4, {})

    def test_torn_tail_is_truncated_on_resume(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        plan = checkpoint.begin_map("k0", chunk_size=1, num_chunks=2)
        plan.record(0, [(7.0, 0.0)])
        with open(tmp_path / "run.journal", "ab") as handle:
            handle.write(b"J1 0000")  # the kill landed mid-append
        resumed = RunCheckpoint(tmp_path, resume=True)
        plan2 = resumed.begin_map("k0", chunk_size=1, num_chunks=2)
        assert plan2.completed == {0: [(7.0, 0.0)]}
        _, _, tail = read_records(tmp_path / "run.journal")
        assert tail is None

    def test_seeds_key_is_order_and_value_sensitive(self):
        assert seeds_key([1, 2, 3]) == seeds_key([1, 2, 3])
        assert seeds_key([1, 2, 3]) != seeds_key([3, 2, 1])
        assert seeds_key([1, 2, 3]) != seeds_key([1, 2, 4])


class TestPoolResume:
    @staticmethod
    def _trial(calls):
        def fn(seed):
            calls.append(seed)
            return float(seed) * 1.5

        return fn

    def test_resumed_map_is_bit_identical_and_splices(self, tmp_path):
        seeds = list(range(10))
        reference = [float(s) * 1.5 for s in seeds]
        first_calls: list = []
        with TrialPool(
            max_workers=1, chunk_size=3, checkpoint=RunCheckpoint(tmp_path)
        ) as pool:
            first = pool.map(self._trial(first_calls), seeds)
        assert first == reference
        assert first_calls == seeds
        assert pool.last_stats.chunks_resumed == 0

        resumed_calls: list = []
        with TrialPool(
            max_workers=1,
            chunk_size=3,
            checkpoint=RunCheckpoint(tmp_path, resume=True),
        ) as pool:
            second = pool.map(self._trial(resumed_calls), seeds)
        assert second == reference
        assert resumed_calls == []  # every chunk spliced from the journal
        assert pool.last_stats.chunks_resumed == math.ceil(len(seeds) / 3)

    def test_interrupted_map_resumes_where_it_died(self, tmp_path):
        seeds = list(range(8))
        armed = {"on": True}
        calls: list = []

        def fn(seed):
            if armed["on"] and seed == 5:
                raise RuntimeError("simulated death")
            calls.append(seed)
            return float(seed) * 1.5

        with TrialPool(
            max_workers=1, chunk_size=2, checkpoint=RunCheckpoint(tmp_path)
        ) as pool:
            with pytest.raises(RuntimeError):
                pool.map(fn, seeds)
        completed_before = list(calls)
        assert completed_before == [0, 1, 2, 3, 4]  # died inside chunk 2

        armed["on"] = False
        calls.clear()
        with TrialPool(
            max_workers=1,
            chunk_size=2,
            checkpoint=RunCheckpoint(tmp_path, resume=True),
        ) as pool:
            results = pool.map(fn, seeds)
        assert results == [float(s) * 1.5 for s in seeds]
        # Only the chunk that died (4, 5) and the never-started ones re-ran.
        assert calls == [4, 5, 6, 7]
        assert pool.last_stats.chunks_resumed == 2

    def test_resume_with_different_seeds_refuses(self, tmp_path):
        with TrialPool(
            max_workers=1, chunk_size=2, checkpoint=RunCheckpoint(tmp_path)
        ) as pool:
            pool.map(lambda s: float(s), list(range(4)))
        with TrialPool(
            max_workers=1,
            chunk_size=2,
            checkpoint=RunCheckpoint(tmp_path, resume=True),
        ) as pool:
            with pytest.raises(CheckpointError):
                pool.map(lambda s: float(s), list(range(1, 5)))
