"""TrialPool resilience: worker deaths, wedged workers, poison chunks.

The trial callables here communicate with their worker processes through
sentinel files (the seeds are ``(value, sentinel_dir)`` tuples), so a
"crash exactly once, then succeed" script is deterministic across the
re-dispatch that follows the first death.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.durability import RunCheckpoint, read_records
from repro.exceptions import TaskQuarantinedError
from repro.experiments.parallel import TrialPool


def _die_once_trial(token):
    """Kill the worker the first time seed 13 is attempted; then succeed."""
    seed, sentinel_dir = token
    if seed == 13:
        sentinel = os.path.join(sentinel_dir, "died-once")
        if not os.path.exists(sentinel):
            with open(sentinel, "x"):
                pass
            os._exit(1)  # SIGKILL-grade death: no exception, no cleanup
    return float(seed) * 2.0


def _always_die_trial(token):
    """A poison task: kills its worker on every dispatch."""
    seed, _ = token
    if seed == 13:
        os._exit(1)
    return float(seed) * 2.0


def _wedge_once_trial(token):
    """Wedge (sleep far past the heartbeat) the first time; then succeed."""
    seed, sentinel_dir = token
    if seed == 13:
        sentinel = os.path.join(sentinel_dir, "wedged-once")
        if not os.path.exists(sentinel):
            with open(sentinel, "x"):
                pass
            time.sleep(120.0)
    return float(seed) * 2.0


def _tokens(tmp_path):
    return [(seed, str(tmp_path)) for seed in (1, 13, 3, 4)]


EXPECTED = [2.0, 26.0, 6.0, 8.0]


class TestWorkerLoss:
    def test_worker_crash_redispatches_deterministically(self, tmp_path):
        with TrialPool(max_workers=2, chunk_size=1, heartbeat_s=60.0) as pool:
            results = pool.map(_die_once_trial, _tokens(tmp_path))
        assert results == EXPECTED
        assert (tmp_path / "died-once").exists()

    def test_heartbeat_timeout_redispatches(self, tmp_path):
        with TrialPool(max_workers=2, chunk_size=1, heartbeat_s=1.0) as pool:
            results = pool.map(_wedge_once_trial, _tokens(tmp_path))
        assert results == EXPECTED
        assert (tmp_path / "wedged-once").exists()

    def test_crash_recovery_composes_with_checkpointing(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        with TrialPool(
            max_workers=2,
            chunk_size=1,
            heartbeat_s=60.0,
            checkpoint=RunCheckpoint(checkpoint_dir),
        ) as pool:
            results = pool.map(_die_once_trial, _tokens(tmp_path))
        assert results == EXPECTED
        records, _, tail = read_records(checkpoint_dir / "run.journal")
        assert tail is None
        chunk_records = [r for r in records if r.get("op") == "chunk"]
        assert sorted(r["chunk"] for r in chunk_records) == [0, 1, 2, 3]


class TestQuarantine:
    def test_poison_chunk_is_quarantined(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        with TrialPool(
            max_workers=2,
            chunk_size=1,
            heartbeat_s=60.0,
            max_redispatch=1,
            checkpoint=RunCheckpoint(checkpoint_dir),
        ) as pool:
            with pytest.raises(TaskQuarantinedError) as excinfo:
                pool.map(_always_die_trial, _tokens(tmp_path))
        # The poison chunk is identified, and its seeds ship in the error
        # so the failure can be reproduced serially.
        assert excinfo.value.chunk_index == 1
        assert excinfo.value.seeds == [(13, str(tmp_path))]
        records, _, _ = read_records(checkpoint_dir / "run.journal")
        quarantined = [r for r in records if r.get("op") == "quarantine"]
        assert [q["chunk"] for q in quarantined] == [1]

    def test_zero_redispatch_budget_quarantines_immediately(self, tmp_path):
        with TrialPool(
            max_workers=2, chunk_size=1, heartbeat_s=60.0, max_redispatch=0
        ) as pool:
            with pytest.raises(TaskQuarantinedError):
                pool.map(_always_die_trial, _tokens(tmp_path))
