"""CRC-framed journal: framing, tail damage detection, truncating repair."""

from __future__ import annotations

import pytest

from repro.durability import append_record, read_records
from repro.durability.journal import encode_record, truncate_to
from repro.exceptions import SimulatedCrashError
from repro.storage.faults import WriteFaultPolicy


class TestFraming:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "j"
        records = [{"seq": 1, "op": "put"}, {"seq": 2, "x": [1.5, None]}]
        for record in records:
            append_record(path, record)
        got, clean_bytes, tail = read_records(path)
        assert got == records
        assert tail is None
        assert clean_bytes == path.stat().st_size

    def test_missing_file_reads_empty_and_clean(self, tmp_path):
        assert read_records(tmp_path / "absent") == ([], 0, None)

    def test_frame_is_single_line_ascii_prefixed(self):
        frame = encode_record({"a": 1})
        assert frame.startswith(b"J1 ")
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_frames_are_canonical(self):
        # Sorted keys and compact separators: equal records, equal bytes.
        assert encode_record({"a": 1, "b": 2}) == encode_record({"b": 2, "a": 1})
        # JSON escapes control characters, so bodies stay single-line.
        assert encode_record({"a": "line\nbreak"}).count(b"\n") == 1


class TestTailDamage:
    def _journal(self, tmp_path):
        path = tmp_path / "j"
        for seq in range(3):
            append_record(path, {"seq": seq})
        return path

    def test_torn_tail_detected_and_prefix_kept(self, tmp_path):
        path = self._journal(tmp_path)
        clean = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"J1 00000000 5 {\"se")  # no newline: torn
        records, clean_bytes, tail = read_records(path)
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert (clean_bytes, tail) == (clean, "torn")

    def test_corrupt_line_detected(self, tmp_path):
        path = self._journal(tmp_path)
        clean = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"J1 deadbeef 6 {\"x\":1}\n")  # CRC cannot match
        records, clean_bytes, tail = read_records(path)
        assert len(records) == 3
        assert (clean_bytes, tail) == (clean, "corrupt")

    def test_bit_flip_inside_good_frame_detected(self, tmp_path):
        path = self._journal(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip one byte inside the *second* record's JSON body.
        first_len = len(encode_record({"seq": 0}))
        data[first_len + len(b"J1 00000000 9 ")] ^= 0x40
        path.write_bytes(bytes(data))
        records, clean_bytes, tail = read_records(path)
        assert [r["seq"] for r in records] == [0]
        assert clean_bytes == first_len
        assert tail == "corrupt"

    def test_truncate_to_repairs_the_journal(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"garbage")
        records, clean_bytes, tail = read_records(path)
        assert tail is not None
        truncate_to(path, clean_bytes)
        records, clean_bytes2, tail2 = read_records(path)
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert (clean_bytes2, tail2) == (clean_bytes, None)
        # Appends continue cleanly after the repair.
        append_record(path, {"seq": 3})
        assert [r["seq"] for r in read_records(path)[0]] == [0, 1, 2, 3]


class TestCrashInjection:
    def test_crashing_append_leaves_recoverable_torn_frame(self, tmp_path):
        path = tmp_path / "j"
        append_record(path, {"seq": 1})
        injector = WriteFaultPolicy(crash_at_op=0, torn_fraction=0.4).injector()
        with pytest.raises(SimulatedCrashError):
            append_record(path, {"seq": 2}, injector=injector)
        records, clean_bytes, tail = read_records(path)
        assert [r["seq"] for r in records] == [1]
        assert tail == "torn"
        truncate_to(path, clean_bytes)
        append_record(path, {"seq": 2})
        assert [r["seq"] for r in read_records(path)[0]] == [1, 2]
