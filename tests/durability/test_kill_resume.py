"""End-to-end process-kill chaos: SIGKILL a figure sweep, resume, diff.

The real-process twin of the in-process crash matrix: a checkpointed
``repro figure`` run is killed with SIGKILL once its run journal shows
progress, resumed with ``--resume``, and its output compared byte-for-byte
against an uninterrupted reference run (the CI crash-resume job repeats
this outside pytest).
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys

from repro.durability import kill_and_resume

ROOT = pathlib.Path(__file__).resolve().parents[2]

FIGURE_ARGS = [
    "figure", "5",
    "--n", "50000", "--k", "20", "--trials", "3", "--rates", "0.05,0.2",
]


def _env() -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class TestKillAndResume:
    def test_killed_sweep_resumes_bit_identically(self, tmp_path):
        env = _env()
        reference = tmp_path / "reference.txt"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", *FIGURE_ARGS, "--out", str(reference)],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert completed.returncode == 0, completed.stderr

        out = tmp_path / "resumed.txt"
        first_code, resumed = kill_and_resume(
            [*FIGURE_ARGS, "--out", str(out)],
            tmp_path / "ckpt",
            env=env,
        )
        assert first_code == -signal.SIGKILL
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == reference.read_bytes()
        # The resume actually spliced journaled work rather than starting
        # over: the run journal recorded chunks before the kill landed.
        journal = tmp_path / "ckpt" / "run.journal"
        assert journal.exists() and journal.stat().st_size > 0

    def test_bare_resume_without_checkpoint_is_rejected(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", *FIGURE_ARGS, "--resume"],
            capture_output=True,
            text=True,
            env=_env(),
            cwd=ROOT,
        )
        assert completed.returncode == 2
        assert "--resume requires --checkpoint" in completed.stderr
