"""CatalogStore: snapshot+journal persistence and last-known-good recovery."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.durability import CatalogStore, catalog_crash_matrix
from repro.durability.chaos import _state_fingerprint
from repro.engine import StatisticsManager, Table
from repro.engine.serialization import statistics_to_dict
from repro.exceptions import SimulatedCrashError
from repro.storage.faults import WriteFaultPolicy


@pytest.fixture(scope="module")
def bundles():
    """Three ColumnStatistics with distinct column identities."""
    rng = np.random.default_rng(99)
    table = Table("t", {"value": rng.integers(0, 500, size=4000)})
    base = StatisticsManager().analyze(
        table,
        "value",
        k=10,
        f=0.25,
        method="record",
        record_sample_size=200,
        rng=12,
    )
    return [dataclasses.replace(base, column_name=f"c{i}") for i in range(3)]


class TestRoundTrip:
    def test_puts_survive_reopen_via_journal(self, tmp_path, bundles):
        store = CatalogStore(tmp_path)
        for stats in bundles:
            store.put(stats)
        reopened = CatalogStore(tmp_path)
        assert len(reopened.catalog) == 3
        assert reopened.replayed == 3
        for stats in bundles:
            got = reopened.catalog.get("t", stats.column_name)
            assert statistics_to_dict(got) == statistics_to_dict(stats)
            assert reopened.catalog.version("t", stats.column_name) == 1

    def test_checkpoint_folds_journal_into_snapshot(self, tmp_path, bundles):
        store = CatalogStore(tmp_path)
        for stats in bundles:
            store.put(stats)
        store.checkpoint()
        assert (tmp_path / CatalogStore.JOURNAL_NAME).stat().st_size == 0
        reopened = CatalogStore(tmp_path)
        assert reopened.replayed == 0
        assert len(reopened.catalog) == 3
        assert reopened.recoveries == {}

    def test_post_checkpoint_mutations_replay(self, tmp_path, bundles):
        store = CatalogStore(tmp_path)
        for stats in bundles:
            store.put(stats)
        store.checkpoint()
        assert store.put(bundles[0]) == 2  # replace bumps the version
        store.drop("t", bundles[1].column_name)
        reopened = CatalogStore(tmp_path)
        assert reopened.replayed == 2
        assert reopened.catalog.version("t", bundles[0].column_name) == 2
        assert ("t", bundles[1].column_name) not in reopened.catalog
        assert _state_fingerprint(reopened.catalog) == _state_fingerprint(
            store.catalog
        )

    def test_durable_catalog_routes_manager_analyze(self, tmp_path):
        rng = np.random.default_rng(3)
        table = Table("u", {"v": rng.integers(0, 100, size=2000)})
        store = CatalogStore(tmp_path)
        manager = StatisticsManager(catalog=store.catalog)
        manager.analyze(
            table, "v", k=8, f=0.25, method="record",
            record_sample_size=100, rng=5,
        )
        reopened = CatalogStore(tmp_path)
        assert ("u", "v") in reopened.catalog


class TestCrashRecovery:
    def test_crash_between_snapshot_and_truncation_is_idempotent(
        self, tmp_path, bundles
    ):
        # Ops: 3 journal appends (0-2), snapshot write (3), truncation (4).
        policy = WriteFaultPolicy(crash_at_op=4)
        store = CatalogStore(tmp_path, write_faults=policy)
        for stats in bundles:
            store.put(stats)
        with pytest.raises(SimulatedCrashError):
            store.checkpoint()
        # The stale journal records survive alongside the new snapshot ...
        assert (tmp_path / CatalogStore.JOURNAL_NAME).stat().st_size > 0
        reopened = CatalogStore(tmp_path)
        # ... but seq <= last_seq keeps replay from double-applying them.
        assert reopened.replayed == 0
        assert _state_fingerprint(reopened.catalog) == _state_fingerprint(
            store.catalog
        )

    def test_scribbled_snapshot_falls_back_to_journal(self, tmp_path, bundles):
        store = CatalogStore(tmp_path)
        for stats in bundles:
            store.put(stats)
        store.checkpoint()
        store.put(dataclasses.replace(bundles[0], column_name="fresh"))
        # Atomic writes cannot produce this; model a scribbled disk.
        (tmp_path / CatalogStore.SNAPSHOT_NAME).write_bytes(b"\x00 not json")
        reopened = CatalogStore(tmp_path)
        assert reopened.recoveries == {"corrupt_snapshot": 1}
        # The snapshot's entries are gone (nothing to recover them from),
        # but the journaled post-checkpoint put still replays.
        assert reopened.replayed == 1
        assert ("t", "fresh") in reopened.catalog

    def test_leftover_tmp_snapshot_is_discarded(self, tmp_path, bundles):
        store = CatalogStore(tmp_path)
        store.put(bundles[0])
        store.checkpoint()
        tmp = tmp_path / (CatalogStore.SNAPSHOT_NAME + ".tmp")
        tmp.write_bytes(b"half-written garbage")
        reopened = CatalogStore(tmp_path)
        assert not tmp.exists()
        assert reopened.recoveries == {"torn_snapshot": 1}
        assert ("t", bundles[0].column_name) in reopened.catalog


class TestCrashMatrix:
    def test_every_crash_point_recovers_to_last_known_good(
        self, tmp_path, bundles
    ):
        outcomes = catalog_crash_matrix(bundles, tmp_path)
        assert outcomes, "matrix swept no crash points"
        assert all(o.crashed for o in outcomes)
        bad = [o for o in outcomes if not o.consistent]
        assert not bad, f"inconsistent recoveries: {bad}"
        # Both flavors swept every durable op of the scripted workload.
        ops = {o.op_index for o in outcomes}
        flavors = {o.flavor for o in outcomes}
        assert flavors == {"torn", "corrupt"}
        assert ops == set(range(len(ops)))
        # The sweep exercised journal and snapshot recovery paths alike.
        kinds = {k for o in outcomes for k in o.recoveries}
        assert "torn_journal" in kinds
        assert "torn_snapshot" in kinds
        assert "corrupt_journal" in kinds
