"""The atomic write helper: rename semantics and injected crashes."""

from __future__ import annotations

import json

import pytest

from repro.durability import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.exceptions import SimulatedCrashError
from repro.obs import metrics
from repro.storage.faults import WriteFaultPolicy


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a.bin", b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_text_round_trip(self, tmp_path):
        path = atomic_write_text(tmp_path / "a.txt", "héllo\n")
        assert path.read_text() == "héllo\n"

    def test_json_is_canonical_and_newline_terminated(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 2, "b": 1}
        # Equal payloads produce equal bytes (sorted keys).
        other = atomic_write_json(tmp_path / "b.json", {"a": 2, "b": 1})
        assert other.read_bytes() == path.read_bytes()

    def test_creates_missing_parent_directories(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "er" / "a.txt", "x")
        assert path.read_text() == "x"

    def test_replaces_existing_artifact(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_tmp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_metrics_count_writes_and_bytes(self, tmp_path):
        with metrics.collecting() as registry:
            atomic_write_bytes(tmp_path / "a.bin", b"12345", kind="snapshot")
        counters = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in registry.snapshot()["counters"]
        }
        key = ("kind", "snapshot")
        assert counters[("repro_checkpoint_writes_total", (key,))] == 1
        assert counters[("repro_checkpoint_bytes_total", (key,))] == 5


class TestCrashInjection:
    def test_crash_preserves_previous_version(self, tmp_path):
        target = tmp_path / "a.json"
        atomic_write_json(target, {"v": 1})
        before = target.read_bytes()
        injector = WriteFaultPolicy(crash_at_op=0, torn_fraction=0.5).injector()
        with pytest.raises(SimulatedCrashError):
            atomic_write_json(target, {"v": 2}, injector=injector)
        # The rename never happened: readers still see the old artifact,
        # and the torn payload is stranded in the tmp file.
        assert target.read_bytes() == before
        tmp = target.with_name(target.name + ".tmp")
        assert tmp.exists()
        assert len(tmp.read_bytes()) < len(json.dumps({"v": 2}, indent=2))

    def test_crash_with_full_payload_still_skips_rename(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "old")
        injector = WriteFaultPolicy(crash_at_op=0, torn_fraction=1.0).injector()
        with pytest.raises(SimulatedCrashError):
            atomic_write_text(target, "new", injector=injector)
        assert target.read_text() == "old"

    def test_later_crash_op_lets_earlier_writes_through(self, tmp_path):
        injector = WriteFaultPolicy(crash_at_op=2).injector()
        atomic_write_text(tmp_path / "a.txt", "a", injector=injector)
        atomic_write_text(tmp_path / "b.txt", "b", injector=injector)
        with pytest.raises(SimulatedCrashError):
            atomic_write_text(tmp_path / "c.txt", "c", injector=injector)
        assert (tmp_path / "a.txt").read_text() == "a"
        assert (tmp_path / "b.txt").read_text() == "b"
        assert not (tmp_path / "c.txt").exists()
