"""Tests for the Piatetsky-Shapiro/Connell single-query baseline."""

import numpy as np
import pytest

from repro.baselines.psc import (
    psc_count_estimate,
    psc_sample_size,
    psc_selectivity_estimate,
)
from repro.exceptions import EmptyDataError, ParameterError
from repro.workloads.queries import RangeQuery


class TestSampleSize:
    def test_hoeffding_formula(self):
        import math

        r = psc_sample_size(0.05, 0.05)
        assert r == math.ceil(math.log(2 / 0.05) / (2 * 0.05**2))

    def test_tighter_epsilon_needs_quadratically_more(self):
        loose = psc_sample_size(0.1, 0.05)
        tight = psc_sample_size(0.05, 0.05)
        assert tight == pytest.approx(4 * loose, rel=0.01)

    def test_single_query_bound_far_below_histogram_bound(self):
        """The paper's Section 1.1 contrast: a per-query answer needs far
        fewer samples than an entire histogram at comparable precision."""
        from repro.core import bounds

        per_query = psc_sample_size(0.01, 0.01)
        histogram = bounds.corollary1_sample_size(10**7, 100, 0.1, 0.01)
        assert per_query < histogram / 10

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            psc_sample_size(0.0, 0.05)
        with pytest.raises(ParameterError):
            psc_sample_size(0.05, 1.0)


class TestEstimates:
    def test_selectivity_on_known_sample(self):
        sample = np.arange(100)
        sel = psc_selectivity_estimate(sample, RangeQuery(0, 49))
        assert sel == pytest.approx(0.5)

    def test_count_scaled_to_table(self):
        sample = np.arange(100)
        est = psc_count_estimate(sample, RangeQuery(0, 24), n=10_000)
        assert est == pytest.approx(2_500)

    def test_within_hoeffding_envelope(self, rng):
        """Empirical check: at the prescribed sample size the additive error
        stays within epsilon nearly always."""
        n = 100_000
        values = rng.integers(0, 1000, size=n)
        query = RangeQuery(0, 299)
        true_sel = float(query.selects(values).mean())
        epsilon, gamma = 0.05, 0.05
        r = psc_sample_size(epsilon, gamma)
        misses = 0
        for seed in range(40):
            sub_rng = np.random.default_rng(seed)
            sample = values[sub_rng.integers(0, n, size=r)]
            if abs(psc_selectivity_estimate(sample, query) - true_sel) > epsilon:
                misses += 1
        assert misses <= 4  # well within the 5% failure budget

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptyDataError):
            psc_selectivity_estimate(np.array([]), RangeQuery(0, 1))

    def test_invalid_n_rejected(self):
        with pytest.raises(ParameterError):
            psc_count_estimate(np.arange(10), RangeQuery(0, 1), n=0)
