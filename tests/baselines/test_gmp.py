"""Tests for the GMP incremental-maintenance baseline."""

import numpy as np
import pytest

from repro.baselines.gmp import GMPHistogram
from repro.exceptions import EmptyDataError, ParameterError


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            GMPHistogram(k=0, backing_sample_size=10)
        with pytest.raises(ParameterError):
            GMPHistogram(k=10, backing_sample_size=5)
        with pytest.raises(ParameterError):
            GMPHistogram(k=10, backing_sample_size=100, tolerance=0)

    def test_snapshot_before_bootstrap_rejected(self):
        gmp = GMPHistogram(k=10, backing_sample_size=100, rng=0)
        with pytest.raises(EmptyDataError):
            gmp.snapshot()


class TestMaintenance:
    def test_total_tracks_inserts(self):
        gmp = GMPHistogram(k=5, backing_sample_size=50, rng=0)
        gmp.insert_many(np.arange(200))
        assert gmp.total == 200

    def test_reservoir_capped(self):
        gmp = GMPHistogram(k=5, backing_sample_size=50, rng=0)
        gmp.insert_many(np.arange(500))
        assert gmp.backing_sample.size == 50

    def test_reservoir_holds_everything_when_small(self):
        gmp = GMPHistogram(k=5, backing_sample_size=1000, rng=0)
        gmp.insert_many(np.arange(100))
        np.testing.assert_array_equal(
            np.sort(gmp.backing_sample), np.arange(100)
        )

    def test_recompute_triggered_by_skewed_inserts(self):
        gmp = GMPHistogram(k=5, backing_sample_size=200, tolerance=0.5, rng=0)
        gmp.insert_many(np.arange(1000))
        before = gmp.recompute_count
        # Hammer one region: its bucket overflows and triggers recomputes.
        gmp.insert_many(np.full(2000, 500))
        assert gmp.recompute_count > before

    def test_snapshot_is_valid_histogram(self):
        gmp = GMPHistogram(k=8, backing_sample_size=300, rng=0)
        gmp.insert_many(np.random.default_rng(1).integers(0, 10_000, 3000))
        hist = gmp.snapshot()
        assert hist.k == 8
        assert hist.total == 3000


class TestAccuracy:
    def test_achieved_error_reasonable_on_uniform_stream(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 10**6, size=20_000)
        gmp = GMPHistogram(k=10, backing_sample_size=2_000, rng=3)
        gmp.insert_many(data)
        err = gmp.achieved_error(np.sort(data))
        assert err < 0.5

    def test_bigger_backing_sample_helps(self):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 10**6, size=20_000)
        errors = []
        for capacity in (100, 5_000):
            gmp = GMPHistogram(k=10, backing_sample_size=capacity, rng=5)
            gmp.insert_many(data)
            errors.append(gmp.achieved_error(np.sort(data)))
        assert errors[1] <= errors[0]

    def test_achieved_error_before_bootstrap_rejected(self):
        gmp = GMPHistogram(k=10, backing_sample_size=100, rng=0)
        with pytest.raises(EmptyDataError):
            gmp.achieved_error(np.arange(100))
