"""Degenerate-input regressions the scalar path historically under-tested.

Every case runs under **both** kernel modes and demands identical behaviour:
same results where results exist, same exception types (and messages) where
the input is rejected.  Covered: empty samples, single distinct values,
all-duplicate columns, more buckets than distinct values (and than rows),
and float columns with exact ties at separator boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.histogram import EquiHeightHistogram, equi_height_separators
from repro.core.error_metrics import fractional_max_error
from repro.exceptions import EmptyDataError, ParameterError
from repro.sampling.block_sampler import BlockSampleStream
from repro.storage import HeapFile

from .conftest import (
    assert_arrays_identical,
    assert_histograms_identical,
    run_both,
)

BOTH = pytest.mark.parametrize("mode", kernels.KERNEL_MODES)


class TestEmptyInputs:
    @BOTH
    def test_from_values_rejects_empty(self, mode):
        with kernels.use_kernels(mode):
            with pytest.raises(EmptyDataError, match="empty value set"):
                EquiHeightHistogram.from_values(np.array([]), 4)

    @BOTH
    def test_separator_kernel_rejects_empty(self, mode):
        with kernels.use_kernels(mode):
            with pytest.raises(EmptyDataError, match="empty value set"):
                kernels.equi_height_separators_unsorted(np.array([]), 4)

    @BOTH
    def test_separator_counts_rejects_empty(self, mode):
        with kernels.use_kernels(mode):
            with pytest.raises(EmptyDataError, match="empty value set"):
                kernels.separator_counts(np.array([]), np.array([1.0]))

    @BOTH
    def test_bad_k_rejected_before_work(self, mode):
        with kernels.use_kernels(mode):
            with pytest.raises(ParameterError, match="k must be positive"):
                kernels.equi_height_separators_unsorted(np.arange(5), 0)

    def test_empty_merge_returns_other_side_in_both_modes(self):
        a = np.array([], dtype=np.float64)
        b = np.array([1.0, 2.0, 3.0])
        got = run_both(lambda: (kernels.merge_sorted(a, b), kernels.merge_sorted(b, a)))
        for left, right in got.values():
            assert_arrays_identical(left, b)
            assert_arrays_identical(right, b)

    def test_gather_pages_empty_ids(self):
        values = np.arange(100)
        got = run_both(
            lambda: kernels.gather_pages(values, np.array([], dtype=np.int64), 10)
        )
        assert_arrays_identical(got["scalar"], got["vector"])
        assert got["vector"].size == 0
        assert got["vector"].dtype == values.dtype

    def test_one_per_block_empty_sizes(self):
        got = run_both(
            lambda: kernels.one_per_block_draws(
                np.random.default_rng(0), np.array([], dtype=np.int64)
            )
        )
        assert_arrays_identical(got["scalar"], got["vector"])

    @BOTH
    def test_one_per_block_rejects_empty_blocks(self, mode):
        with kernels.use_kernels(mode):
            with pytest.raises(ParameterError, match="positive"):
                kernels.one_per_block_draws(
                    np.random.default_rng(0), np.array([3, 0, 2])
                )

    def test_exhausted_stream_take_is_empty_and_identical(self):
        def sample():
            heapfile = HeapFile.from_values(
                np.arange(40), layout="sorted", blocking_factor=10
            )
            stream = BlockSampleStream(heapfile, rng=0)
            stream.take(4)  # consume everything
            return stream.take(3)

        got = run_both(sample)
        assert_arrays_identical(got["scalar"], got["vector"])
        assert got["vector"].size == 0


class TestSingleAndDuplicateValues:
    @BOTH
    def test_single_value_column(self, mode):
        values = np.full(257, 9.5)
        with kernels.use_kernels(mode):
            hist = EquiHeightHistogram.from_values(values, 8)
        assert (hist.separators == 9.5).all()
        assert hist.counts.sum() == values.size
        # Only the first of the repeated separators carries the eq mass.
        assert hist.eq_counts[0] == values.size
        assert (hist.eq_counts[1:] == 0).all()

    def test_single_value_column_identical(self):
        values = np.full(257, 9.5)
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 8))
        assert_histograms_identical(got["scalar"], got["vector"])

    def test_all_duplicates_two_hot_values(self):
        values = np.repeat([3, 7], [900, 100]).astype(np.int64)
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 16))
        assert_histograms_identical(got["scalar"], got["vector"])
        assert got["vector"].counts.sum() == values.size

    def test_single_row(self):
        got = run_both(lambda: EquiHeightHistogram.from_values(np.array([4]), 5))
        assert_histograms_identical(got["scalar"], got["vector"])
        assert got["vector"].total == 1

    def test_fractional_metric_on_all_duplicates_identical(self):
        values = np.full(500, 2.0)
        got = run_both(
            lambda: fractional_max_error(np.full(4, 2.0), values, values)
        )
        assert got["scalar"] == got["vector"] == 0.0


class TestMoreBucketsThanValues:
    @BOTH
    def test_k_exceeds_rows(self, mode):
        values = np.array([5.0, 1.0, 3.0])
        with kernels.use_kernels(mode):
            hist = EquiHeightHistogram.from_values(values, 10)
        assert hist.k == 10
        assert hist.counts.sum() == 3
        reference = equi_height_separators(np.sort(values), 10)
        assert_arrays_identical(
            hist.separators, reference.astype(np.float64)
        )

    def test_k_exceeds_rows_identical(self):
        values = np.array([5.0, 1.0, 3.0])
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 10))
        assert_histograms_identical(got["scalar"], got["vector"])

    def test_k_exceeds_distinct_values_identical(self):
        values = np.repeat([1.0, 2.0], 50)
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 25))
        assert_histograms_identical(got["scalar"], got["vector"])
        # Coincident separators: eq mass still lands once per distinct value.
        hist = got["vector"]
        assert hist.eq_counts.sum() == hist.eq_counts[hist.eq_counts > 0].sum()


class TestFloatTiesAtSeparators:
    def test_ulp_separated_ties_identical(self):
        tie = 1.0
        above = np.nextafter(tie, 2.0)
        values = np.tile([tie, above, tie, 0.5], 300)
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 12))
        assert_histograms_identical(got["scalar"], got["vector"])

    def test_probe_values_exactly_on_separators_identical(self):
        values = np.repeat(np.arange(10, dtype=np.float64), 37)
        got = run_both(
            lambda: EquiHeightHistogram.from_values(values, 5).recount(values)
        )
        assert_histograms_identical(got["scalar"], got["vector"])

    def test_negative_zero_ties_identical(self):
        values = np.tile([-0.0, 0.0, 1.0], 101)
        got = run_both(lambda: EquiHeightHistogram.from_values(values, 6))
        assert_histograms_identical(got["scalar"], got["vector"])

    @BOTH
    def test_nan_rejected_in_both_modes(self, mode):
        values = np.array([1.0, np.nan, 2.0])
        with kernels.use_kernels(mode):
            with pytest.raises(ParameterError, match="NaN"):
                EquiHeightHistogram.from_values(values, 3)

    def test_ensure_sorted_handles_nan_like_a_sort(self):
        values = np.array([3.0, np.nan, 1.0, 2.0])
        got = run_both(lambda: kernels.ensure_sorted(values.copy()))
        assert_arrays_identical(got["scalar"], got["vector"])


class TestModeDispatch:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError, match="kernel mode"):
            with kernels.use_kernels("simd"):
                pass

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "turbo")
        with pytest.raises(ParameterError, match=kernels.ENV_VAR):
            kernels.kernel_mode()

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        assert kernels.kernel_mode() == "scalar"
        assert not kernels.vectorized()
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        assert kernels.vectorized()

    def test_override_wins_and_restores(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        with kernels.use_kernels("scalar"):
            assert kernels.kernel_mode() == "scalar"
            with kernels.use_kernels("vector"):
                assert kernels.kernel_mode() == "vector"
            assert kernels.kernel_mode() == "scalar"
        assert kernels.kernel_mode() == "vector"
