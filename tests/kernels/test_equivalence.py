"""Hypothesis differential suite: scalar and vector kernels are bit-identical.

Every kernel pair runs on generated datasets (Zipf, Unif/Dup, near-duplicate
floats, single-value, fully distinct columns) under both ``REPRO_KERNELS``
modes, and the results are compared bit-for-bit: separators, bucket counts,
eq_counts, extrema, merged samples, RNG draw counts (via post-call generator
state), IOStats snapshots, and the rendered obs metrics registry.  The
end-to-end classes push whole CVB builds through both modes and require the
full result objects to coincide.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.adaptive import cvb_build
from repro.core.error_metrics import (
    avg_error,
    fractional_max_error,
    max_error,
    max_error_fraction,
    relative_deviation,
    var_error,
)
from repro.core.histogram import EquiHeightHistogram, equi_height_separators
from repro.obs import metrics
from repro.sampling.block_sampler import BlockSampleStream
from repro.storage import HeapFile

from .conftest import (
    assert_arrays_identical,
    assert_histograms_identical,
    datasets,
    run_both,
    sorted_pairs,
)

ks = st.integers(min_value=1, max_value=64)


class TestKernelPairEquivalence:
    """Each registered pair, compared directly through the dispatch layer."""

    def test_registry_covers_both_modes(self):
        assert kernels.kernel_names()
        for name, impls in kernels.KERNELS.items():
            assert set(impls) == {"scalar", "vector"}, name
            assert impls["scalar"] is not impls["vector"], name

    @given(values=datasets(), k=ks)
    @settings(max_examples=120, deadline=None)
    def test_separators_identical(self, values, k):
        got = run_both(
            lambda: kernels.equi_height_separators_unsorted(values.copy(), k)
        )
        assert_arrays_identical(got["scalar"], got["vector"])

    @given(values=datasets(), k=ks)
    @settings(max_examples=120, deadline=None)
    def test_separators_match_sorted_reference(self, values, k):
        reference = equi_height_separators(np.sort(values), k)
        with kernels.use_kernels("vector"):
            vectorised = kernels.equi_height_separators_unsorted(values, k)
        assert_arrays_identical(reference, vectorised)

    @given(values=datasets(), k=ks)
    @settings(max_examples=120, deadline=None)
    def test_separator_counts_identical(self, values, k):
        with kernels.use_kernels("scalar"):
            separators = kernels.equi_height_separators_unsorted(values, k)
        got = run_both(lambda: kernels.separator_counts(values.copy(), separators))
        s_counts, s_eq, s_min, s_max = got["scalar"]
        v_counts, v_eq, v_min, v_max = got["vector"]
        assert_arrays_identical(s_counts, v_counts)
        assert_arrays_identical(s_eq, v_eq)
        assert s_min == v_min
        assert s_max == v_max

    @given(
        values=datasets(min_size=1, max_size=3_000),
        blocking_factor=st.integers(min_value=1, max_value=60),
        draw_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_gather_pages_identical(self, values, blocking_factor, draw_seed):
        num_pages = -(-values.size // blocking_factor)
        rng = np.random.default_rng(draw_seed)
        # With replacement: duplicate ids must gather (and later charge) twice.
        page_ids = rng.integers(0, num_pages, size=rng.integers(0, 2 * num_pages))
        got = run_both(
            lambda: kernels.gather_pages(values, page_ids, blocking_factor)
        )
        assert_arrays_identical(got["scalar"], got["vector"])

    @given(pair=sorted_pairs())
    @settings(max_examples=120, deadline=None)
    def test_merge_sorted_identical(self, pair):
        a, b = pair
        got = run_both(lambda: kernels.merge_sorted(a.copy(), b.copy()))
        assert_arrays_identical(got["scalar"], got["vector"])

    @given(pair=sorted_pairs())
    @settings(max_examples=120, deadline=None)
    def test_merge_sorted_matches_full_sort(self, pair):
        a, b = pair
        reference = np.sort(np.concatenate([a, b]))
        with kernels.use_kernels("vector"):
            merged = kernels.merge_sorted(a, b)
        assert_arrays_identical(reference, merged)

    @given(values=datasets(min_size=0), pre_sort=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_ensure_sorted_identical(self, values, pre_sort):
        values = np.sort(values) if pre_sort else values
        got = run_both(lambda: kernels.ensure_sorted(values.copy()))
        assert_arrays_identical(got["scalar"], got["vector"])
        assert np.array_equal(got["vector"], np.sort(values))

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200), max_size=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_one_per_block_draws_identical_including_rng_state(self, sizes, seed):
        sizes = np.asarray(sizes, dtype=np.int64)

        def draw():
            generator = np.random.default_rng(seed)
            out = kernels.one_per_block_draws(generator, sizes)
            return out, generator.bit_generator.state

        got = run_both(draw)
        assert_arrays_identical(got["scalar"][0], got["vector"][0])
        # Same post-call state == same number of draws from the same stream.
        assert got["scalar"][1] == got["vector"][1]


class TestHistogramEquivalence:
    """The histogram construction surface, across both modes."""

    @given(values=datasets(), k=ks)
    @settings(max_examples=120, deadline=None)
    def test_from_values_identical(self, values, k):
        got = run_both(lambda: EquiHeightHistogram.from_values(values.copy(), k))
        assert_histograms_identical(got["scalar"], got["vector"])
        assert got["scalar"] == got["vector"]

    @given(values=datasets(), k=ks)
    @settings(max_examples=120, deadline=None)
    def test_vector_from_values_matches_sorted_scalar_reference(self, values, k):
        with kernels.use_kernels("scalar"):
            reference = EquiHeightHistogram.from_sorted_values(
                np.sort(values), k
            )
        with kernels.use_kernels("vector"):
            vectorised = EquiHeightHistogram.from_values(values, k)
        assert_histograms_identical(reference, vectorised)

    @given(values=datasets(), probe=datasets(), k=ks)
    @settings(max_examples=80, deadline=None)
    def test_recount_identical(self, values, probe, k):
        def build():
            return EquiHeightHistogram.from_values(values, k).recount(probe)

        got = run_both(build)
        assert_histograms_identical(got["scalar"], got["vector"])

    @given(values=datasets(), k=ks)
    @settings(max_examples=80, deadline=None)
    def test_counts_total_preserved_in_both_modes(self, values, k):
        for hist in run_both(
            lambda: EquiHeightHistogram.from_values(values, k)
        ).values():
            assert hist.counts.sum() == values.size
            assert hist.k == k


class TestErrorMetricEquivalence:
    """Δmax / f′ and friends are mode-inert."""

    @given(values=datasets(), probe=datasets(), k=ks)
    @settings(max_examples=100, deadline=None)
    def test_fractional_max_error_identical(self, values, probe, k):
        def compute():
            hist = EquiHeightHistogram.from_values(values, k)
            return fractional_max_error(hist.separators, values, probe)

        got = run_both(compute)
        assert got["scalar"] == got["vector"]

    @given(values=datasets(), probe=datasets(), k=ks)
    @settings(max_examples=100, deadline=None)
    def test_relative_deviation_identical(self, values, probe, k):
        def compute():
            hist = EquiHeightHistogram.from_values(values, k)
            return relative_deviation(hist, probe)

        got = run_both(compute)
        assert got["scalar"] == got["vector"]

    @given(values=datasets(), k=ks)
    @settings(max_examples=100, deadline=None)
    def test_delta_metrics_identical(self, values, k):
        def compute():
            counts = EquiHeightHistogram.from_values(values, k).counts
            return (
                max_error(counts),
                max_error_fraction(counts),
                avg_error(counts),
                var_error(counts),
            )

        got = run_both(compute)
        assert got["scalar"] == got["vector"]


class TestStreamEquivalence:
    """Block sampling: payloads, IOStats, obs metrics, RNG consumption."""

    @staticmethod
    def _heapfile(values, blocking_factor, layout_seed):
        return HeapFile.from_values(
            values,
            layout="random",
            rng=np.random.default_rng(layout_seed),
            blocking_factor=blocking_factor,
        )

    @given(
        values=datasets(min_size=1, max_size=3_000),
        blocking_factor=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batches=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=4
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_take_identical_with_iostats_and_metrics(
        self, values, blocking_factor, seed, batches
    ):
        def sample():
            heapfile = self._heapfile(values, blocking_factor, seed + 1)
            stream = BlockSampleStream(heapfile, rng=np.random.default_rng(seed))
            with metrics.collecting() as registry:
                taken = [stream.take(want) for want in batches]
            return (
                taken,
                heapfile.iostats.snapshot(),
                metrics.render_json(registry),
                stream.pages_taken,
            )

        got = run_both(sample)
        for s_batch, v_batch in zip(got["scalar"][0], got["vector"][0]):
            assert_arrays_identical(s_batch, v_batch)
        assert got["scalar"][1:] == got["vector"][1:]

    @given(
        values=datasets(min_size=1, max_size=3_000),
        blocking_factor=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        want=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_one_tuple_per_block_identical_including_rng_state(
        self, values, blocking_factor, seed, want
    ):
        def sample():
            heapfile = self._heapfile(values, blocking_factor, seed + 1)
            stream = BlockSampleStream(heapfile, rng=np.random.default_rng(seed))
            draws = np.random.default_rng(seed + 2)
            with metrics.collecting() as registry:
                full, reps = stream.take_one_tuple_per_block(want, rng=draws)
            return (
                full,
                reps,
                draws.bit_generator.state,
                heapfile.iostats.snapshot(),
                metrics.render_json(registry),
            )

        got = run_both(sample)
        assert_arrays_identical(got["scalar"][0], got["vector"][0])
        assert_arrays_identical(got["scalar"][1], got["vector"][1])
        assert got["scalar"][2:] == got["vector"][2:]

    @given(
        values=datasets(min_size=1, max_size=3_000),
        blocking_factor=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_read_pages_identical(self, values, blocking_factor, seed):
        rng = np.random.default_rng(seed)
        num_pages = -(-values.size // blocking_factor)
        page_ids = rng.integers(0, num_pages, size=rng.integers(0, 2 * num_pages))

        def read():
            heapfile = self._heapfile(values, blocking_factor, seed + 1)
            with metrics.collecting() as registry:
                payload = heapfile.read_pages(page_ids)
            return payload, heapfile.iostats.snapshot(), metrics.render_json(registry)

        got = run_both(read)
        assert_arrays_identical(got["scalar"][0], got["vector"][0])
        assert got["scalar"][1:] == got["vector"][1:]

    @given(
        values=datasets(min_size=1, max_size=2_000),
        blocking_factor=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_identical(self, values, blocking_factor):
        def scan():
            heapfile = self._heapfile(values, blocking_factor, 3)
            with metrics.collecting() as registry:
                out = heapfile.scan()
            return out, heapfile.iostats.snapshot(), metrics.render_json(registry)

        got = run_both(scan)
        assert_arrays_identical(got["scalar"][0], got["vector"][0])
        assert got["scalar"][1:] == got["vector"][1:]


class TestCVBEquivalence:
    """Whole adaptive builds coincide: histogram, sample, trace, accounting."""

    @pytest.mark.parametrize("validation", ["full_increment", "one_per_block"])
    @pytest.mark.parametrize("metric", ["fractional", "count"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_cvb_build_identical(self, validation, metric, seed):
        from .conftest import make_values

        values = make_values("zipf", 60_000, seed)

        def build():
            heapfile = HeapFile.from_values(
                values,
                layout="random",
                rng=np.random.default_rng(seed + 1),
                blocking_factor=80,
            )
            with metrics.collecting() as registry:
                result = cvb_build(
                    heapfile,
                    k=40,
                    f=0.15,
                    rng=seed + 2,
                    validation=validation,
                    metric=metric,
                )
            return result, heapfile.iostats.snapshot(), metrics.render_json(registry)

        got = run_both(build)
        scalar_result, vector_result = got["scalar"][0], got["vector"][0]
        assert_histograms_identical(
            scalar_result.histogram, vector_result.histogram
        )
        assert_arrays_identical(scalar_result.sample, vector_result.sample)
        assert len(scalar_result.iterations) == len(vector_result.iterations)
        for left, right in zip(
            scalar_result.iterations, vector_result.iterations
        ):
            # Round 0 records NaN for error/threshold, so dataclass ==
            # would be always-false there; compare field-wise, NaN-aware.
            for name in (
                "index",
                "increment_blocks",
                "increment_tuples",
                "cumulative_blocks",
                "cumulative_tuples",
                "passed",
            ):
                assert getattr(left, name) == getattr(right, name), name
            for name in ("observed_error", "threshold"):
                assert np.array_equal(
                    getattr(left, name), getattr(right, name), equal_nan=True
                ), name
        assert scalar_result.converged == vector_result.converged
        assert_arrays_identical(
            scalar_result.sampled_pages, vector_result.sampled_pages
        )
        # IOStats and the full metrics registry (counter names, labels, and
        # values — hence RNG draw counts and read attempts) coincide.
        assert got["scalar"][1:] == got["vector"][1:]
