"""Shared machinery for the scalar-vs-vector differential harness.

The contract under test: for every kernel pair in
:data:`repro.core.kernels.KERNELS`, the scalar and vector implementations
are **bit-identical** — same output arrays, same dtypes where callers
compare them, same exceptions on degenerate input, same RNG stream
consumption, same IOStats and obs metrics.  ``run_both`` executes a fresh
closure under each mode; the dataset strategies generate the distributions
the paper's experiments exercise (Zipf, Unif/Dup) plus the adversarial
shapes the scalar path historically under-tested (near-duplicate floats,
single-value columns, fully distinct columns).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import kernels

#: Dataset families the strategies draw from; names show up in failure
#: reprs so a shrunk counterexample says which family broke.
DATASET_KINDS = ("zipf", "unif_dup", "near_dup", "single", "distinct")


def make_values(kind: str, n: int, seed: int) -> np.ndarray:
    """Materialise a deterministic dataset of *kind* with *n* values."""
    rng = np.random.default_rng(seed)
    if kind == "zipf":
        return rng.zipf(1.7, size=n).astype(np.int64)
    if kind == "unif_dup":
        return rng.integers(0, max(1, n // 10), size=n)
    if kind == "near_dup":
        # A handful of float anchors, some separated by one ulp: ties land
        # exactly on separator boundaries and adjacent separators coincide.
        anchors = np.array(
            [1.0, np.nextafter(1.0, 2.0), 1.5, -3.25, np.nextafter(-3.25, 0)]
        )
        return anchors[rng.integers(0, anchors.size, size=n)]
    if kind == "single":
        return np.full(n, 42.0 if seed % 2 else 7, dtype=np.float64 if seed % 2 else np.int64)
    if kind == "distinct":
        return rng.permutation(n).astype(np.int64) - n // 2
    raise AssertionError(f"unknown dataset kind {kind!r}")


@st.composite
def datasets(draw, min_size: int = 1, max_size: int = 2_000) -> np.ndarray:
    """A generated value column from one of :data:`DATASET_KINDS`."""
    kind = draw(st.sampled_from(DATASET_KINDS))
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return make_values(kind, n, seed)


@st.composite
def sorted_pairs(draw, max_size: int = 1_500) -> tuple[np.ndarray, np.ndarray]:
    """Two independently generated, sorted arrays (CVB merge operands)."""
    a = np.sort(draw(datasets(min_size=0, max_size=max_size)).astype(np.float64))
    b = np.sort(draw(datasets(min_size=0, max_size=max_size)).astype(np.float64))
    return a, b


def run_both(fn):
    """Run ``fn()`` once per kernel mode; return ``{mode: result}``.

    *fn* must build all of its state from scratch on each call (fresh
    heap files, fresh generators) so the two executions differ only in
    the kernel implementations they dispatch to.
    """
    results = {}
    for mode in kernels.KERNEL_MODES:
        with kernels.use_kernels(mode):
            results[mode] = fn()
    return results


def assert_arrays_identical(a: np.ndarray, b: np.ndarray) -> None:
    """Bit-identical array check: values (NaN-aware), shape, and dtype."""
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.dtype == b.dtype, f"dtype diverged: {a.dtype} vs {b.dtype}"
    assert a.shape == b.shape, f"shape diverged: {a.shape} vs {b.shape}"
    assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), (
        f"values diverged: {a!r} vs {b!r}"
    )


def assert_histograms_identical(h1, h2) -> None:
    """Field-by-field histogram identity (sharper than ``==`` on failure)."""
    assert_arrays_identical(h1.separators, h2.separators)
    assert_arrays_identical(h1.counts, h2.counts)
    assert_arrays_identical(h1.eq_counts, h2.eq_counts)
    assert h1.min_value == h2.min_value
    assert h1.max_value == h2.max_value
