"""Fault-path differential: skip-and-redraw is mode-inert under injection.

The vectorized block-sampling fast path is deliberately disabled when a
fault policy (or a ``read_page`` override, e.g. :class:`FaultyHeapFile`) is
in play — per-page retry/skip semantics must be preserved.  These tests
prove the *observable* contract: with identical fault injection, scalar and
vector modes deliver the same payloads, skip the same pages, charge the
same retries/failed reads/latency, and build the same final histogram.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import cvb_build
from repro.core.histogram import EquiHeightHistogram
from repro.exceptions import BuildAbortedError
from repro.obs import metrics
from repro.sampling.block_sampler import BlockSampleStream, sample_blocks
from repro.storage import FaultPolicy, FaultyHeapFile, HeapFile, RetryPolicy
from repro.storage.faults import ReadBudget

from .conftest import (
    assert_arrays_identical,
    assert_histograms_identical,
    make_values,
    run_both,
)

RETRY = RetryPolicy(max_attempts=3, seed=11)

FAULTS = [
    FaultPolicy(transient_rate=0.3, seed=5),
    FaultPolicy(corrupt_fraction=0.2, seed=5),
    FaultPolicy(transient_rate=0.25, corrupt_fraction=0.15, seed=9),
    # Majority-corrupt: most draws hit the skip-and-redraw path, so the
    # vectorized redraw loop is exercised far past its common case.
    FaultPolicy(corrupt_fraction=0.6, seed=3),
]


def _faulty(policy: FaultPolicy, seed: int = 0) -> FaultyHeapFile:
    values = make_values("zipf", 12_000, seed)
    inner = HeapFile.from_values(
        values,
        layout="random",
        rng=np.random.default_rng(seed + 1),
        blocking_factor=40,
    )
    return FaultyHeapFile(inner, policy)


class TestStreamFaultDifferential:
    @pytest.mark.parametrize("policy", FAULTS)
    def test_skip_and_redraw_identical(self, policy):
        def sample():
            faulty = _faulty(policy)
            stream = BlockSampleStream(
                faulty, rng=np.random.default_rng(3), retry=RETRY
            )
            with metrics.collecting() as registry:
                first = stream.take(60)
                second = stream.take(60)
            return (
                first,
                second,
                stream.pages_skipped,
                stream.skipped_ids,
                stream.taken_ids,
                faulty.iostats.snapshot(),
                metrics.render_json(registry),
            )

        got = run_both(sample)
        for index in (0, 1, 3, 4):
            assert_arrays_identical(got["scalar"][index], got["vector"][index])
        assert got["scalar"][2] == got["vector"][2]
        assert got["scalar"][5] == got["vector"][5]
        assert got["scalar"][6] == got["vector"][6]
        # The injection actually fired — otherwise this proves nothing.
        snapshot = got["vector"][5]
        assert snapshot["failed_reads"] > 0
        assert snapshot["retries"] > 0 or snapshot["pages_skipped"] > 0

    @pytest.mark.parametrize("policy", FAULTS)
    def test_final_histogram_identical(self, policy):
        def build():
            faulty = _faulty(policy)
            stream = BlockSampleStream(
                faulty, rng=np.random.default_rng(3), retry=RETRY
            )
            sample = stream.take(120)
            return EquiHeightHistogram.from_values(sample, 20)

        got = run_both(build)
        assert_histograms_identical(got["scalar"], got["vector"])

    def test_sample_blocks_resilient_identical(self):
        def sample():
            faulty = _faulty(FAULTS[2])
            with metrics.collecting() as registry:
                out = sample_blocks(faulty, 80, rng=4, retry=RETRY)
            return out, faulty.iostats.snapshot(), metrics.render_json(registry)

        got = run_both(sample)
        assert_arrays_identical(got["scalar"][0], got["vector"][0])
        assert got["scalar"][1:] == got["vector"][1:]

    def test_faulty_file_without_retry_raises_identically(self):
        # Without a retry policy the fast-path *type guard* (not the fault
        # knobs) is what keeps the vector mode honest: FaultyHeapFile
        # overrides read_page, so batched reads must not bypass injection.
        policy = FaultPolicy(corrupt_fraction=0.5, seed=2)

        def sample():
            faulty = _faulty(policy)
            stream = BlockSampleStream(faulty, rng=np.random.default_rng(1))
            try:
                stream.take(100)
            except Exception as exc:  # noqa: BLE001 - compared across modes
                return type(exc).__name__, faulty.iostats.snapshot()
            return None, faulty.iostats.snapshot()

        got = run_both(sample)
        assert got["scalar"] == got["vector"]
        assert got["vector"][0] is not None


class TestResilientBoundaryDifferential:
    def test_healthy_file_with_retry_and_budget_identical(self):
        # retry/budget on a plain (fault-free) HeapFile: the resilient
        # slow path must produce exactly the fast path's sample and spend
        # nothing, in both kernel modes.
        def sample():
            values = make_values("zipf", 12_000, 3)
            plain = HeapFile.from_values(
                values,
                layout="random",
                rng=np.random.default_rng(4),
                blocking_factor=40,
            )
            tracker = ReadBudget(max_failed_reads=0).tracker()
            guarded = BlockSampleStream(
                plain,
                rng=np.random.default_rng(3),
                retry=RETRY,
                budget=tracker,
            )
            bare = BlockSampleStream(plain, rng=np.random.default_rng(3))
            return guarded.take(80), bare.take(80), tracker.snapshot()

        got = run_both(sample)
        for mode in ("scalar", "vector"):
            assert_arrays_identical(got[mode][0], got[mode][1])
            assert got[mode][2] == {
                "failed_reads": 0,
                "skipped_pages": 0,
                "simulated_s": 0.0,
            }
        assert_arrays_identical(got["scalar"][0], got["vector"][0])

    def test_budget_abort_mid_batch_identical(self):
        # A tight budget that dies partway through a batched take: both
        # modes must abort at the same spend with the same accounting.
        policy = FaultPolicy(transient_rate=0.4, corrupt_fraction=0.3, seed=13)

        def sample():
            faulty = _faulty(policy, seed=2)
            tracker = ReadBudget(max_failed_reads=5).tracker()
            stream = BlockSampleStream(
                faulty,
                rng=np.random.default_rng(3),
                retry=RETRY,
                budget=tracker,
            )
            try:
                stream.take(120)
            except BuildAbortedError as exc:
                return (
                    "aborted",
                    exc.snapshot,
                    tracker.snapshot(),
                    faulty.iostats.snapshot(),
                    stream.pages_skipped,
                )
            return (
                "completed",
                None,
                tracker.snapshot(),
                faulty.iostats.snapshot(),
                stream.pages_skipped,
            )

        got = run_both(sample)
        assert got["scalar"] == got["vector"]
        assert got["vector"][0] == "aborted"
        assert got["vector"][1]["failed_reads"] > 5


class TestCVBFaultDifferential:
    @pytest.mark.parametrize("policy", FAULTS)
    def test_cvb_under_faults_identical(self, policy):
        def build():
            faulty = _faulty(policy, seed=6)
            with metrics.collecting() as registry:
                result = cvb_build(
                    faulty, k=24, f=0.2, rng=8, retry=RETRY
                )
            return result, faulty.iostats.snapshot(), metrics.render_json(registry)

        got = run_both(build)
        scalar_result, vector_result = got["scalar"][0], got["vector"][0]
        assert_histograms_identical(
            scalar_result.histogram, vector_result.histogram
        )
        assert_arrays_identical(scalar_result.sample, vector_result.sample)
        assert scalar_result.pages_skipped == vector_result.pages_skipped
        assert scalar_result.converged == vector_result.converged
        assert_arrays_identical(
            scalar_result.sampled_pages, vector_result.sampled_pages
        )
        assert got["scalar"][1:] == got["vector"][1:]
