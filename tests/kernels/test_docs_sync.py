"""The kernel docs are documented-by-construction: diff them vs the registry.

docs/ARCHITECTURE.md's "Kernels" section and the EXPERIMENTS.md knob table
promise to catalogue the scalar/vector pairs and the ``REPRO_KERNELS``
switch.  These tests enforce the promise literally, the same way
``tests/obs/test_docs.py`` pins the observability docs: a kernel pair
cannot be registered (or renamed) without the docs following, and the docs
cannot invent kernels the registry does not define.
"""

from __future__ import annotations

import pathlib
import re

from repro.core import kernels

ROOT = pathlib.Path(__file__).resolve().parents[2]
ARCHITECTURE = ROOT / "docs" / "ARCHITECTURE.md"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"


def _kernels_section() -> str:
    """The text of the ``## Kernels`` section of ARCHITECTURE.md."""
    text = ARCHITECTURE.read_text()
    assert "## Kernels" in text, "ARCHITECTURE.md lost its Kernels section"
    return text.split("## Kernels", 1)[1].split("\n## ", 1)[0]


class TestKernelTableSync:
    """The ARCHITECTURE.md kernel table covers exactly the registry."""

    def test_every_registered_kernel_is_documented(self):
        """No kernel pair can be registered without a doc table row."""
        section = _kernels_section()
        missing = [
            name for name in kernels.kernel_names()
            if f"`{name}`" not in section
        ]
        assert not missing, f"ARCHITECTURE.md missing kernels: {missing}"

    def test_no_phantom_kernels_in_table(self):
        """Kernel-shaped rows in the doc table are all registered."""
        section = _kernels_section()
        rows = re.findall(r"^\| `([a-z0-9_]+)` \|", section, re.MULTILINE)
        phantom = [name for name in rows if name not in kernels.KERNELS]
        assert not phantom, f"doc lists unregistered kernels: {phantom}"
        assert set(rows) == set(kernels.KERNELS)

    def test_both_modes_are_documented(self):
        """The section spells out the full mode vocabulary."""
        section = _kernels_section()
        for mode in kernels.KERNEL_MODES:
            assert f"{mode}" in section


class TestKnobDocumentation:
    """REPRO_KERNELS and its surfaces appear in both user-facing docs."""

    def test_env_var_documented_in_architecture(self):
        assert kernels.ENV_VAR in ARCHITECTURE.read_text()

    def test_env_var_documented_in_experiments(self):
        text = EXPERIMENTS.read_text()
        assert kernels.ENV_VAR in text
        # The knob table must spell out the accepted values.
        for mode in kernels.KERNEL_MODES:
            assert mode in text

    def test_cli_flag_documented_in_experiments(self):
        """``repro bench --kernels`` is discoverable from the cookbook."""
        assert "--kernels" in EXPERIMENTS.read_text()

    def test_use_kernels_documented(self):
        """The programmatic override has a doc trail too."""
        assert "use_kernels" in ARCHITECTURE.read_text()
        assert "use_kernels" in EXPERIMENTS.read_text()
