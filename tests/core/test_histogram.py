"""Unit tests for the equi-height histogram (Section 2.1 semantics)."""

import numpy as np
import pytest

from repro.core.histogram import (
    Bucket,
    EquiHeightHistogram,
    equi_height_separators,
)
from repro.exceptions import EmptyDataError, ParameterError


class TestSeparators:
    def test_even_split_distinct_values(self):
        values = np.arange(1, 101)  # 100 distinct values
        seps = equi_height_separators(values, 4)
        assert list(seps) == [25, 50, 75]

    def test_number_of_separators_is_k_minus_1(self):
        values = np.arange(50)
        for k in (1, 2, 5, 10, 50):
            assert equi_height_separators(values, k).size == k - 1

    def test_k_one_has_no_separators(self):
        seps = equi_height_separators(np.arange(10), 1)
        assert seps.size == 0

    def test_separators_are_actual_data_values(self):
        values = np.array([3, 7, 11, 19, 23, 31, 41, 47])
        seps = equi_height_separators(values, 4)
        assert all(s in values for s in seps)

    def test_duplicates_can_repeat_separators(self):
        values = np.array([1] * 90 + list(range(2, 12)))
        seps = equi_height_separators(np.sort(values), 5)
        # Value 1 dominates: multiple separators land on it.
        assert (seps == 1).sum() >= 2

    def test_separators_non_decreasing(self):
        values = np.sort(np.random.default_rng(0).integers(0, 1000, size=500))
        seps = equi_height_separators(values, 20)
        assert (np.diff(seps) >= 0).all()

    def test_empty_values_raises(self):
        with pytest.raises(EmptyDataError):
            equi_height_separators(np.array([]), 4)

    def test_non_positive_k_raises(self):
        with pytest.raises(ParameterError):
            equi_height_separators(np.arange(10), 0)

    def test_more_buckets_than_values(self):
        # Degenerate but legal: separators repeat values.
        seps = equi_height_separators(np.array([1, 2, 3]), 10)
        assert seps.size == 9


class TestConstruction:
    def test_from_values_equal_buckets_on_distinct_data(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        assert hist.k == 10
        assert hist.total == 1000
        np.testing.assert_array_equal(hist.counts, np.full(10, 100))

    def test_from_values_accepts_unsorted_input(self):
        rng = np.random.default_rng(1)
        values = rng.permutation(np.arange(1, 501))
        hist = EquiHeightHistogram.from_values(values, 5)
        np.testing.assert_array_equal(hist.counts, np.full(5, 100))

    def test_from_sorted_values_matches_from_values(self):
        values = np.sort(np.random.default_rng(2).integers(0, 10_000, 2000))
        a = EquiHeightHistogram.from_values(values, 8)
        b = EquiHeightHistogram.from_sorted_values(values, 8)
        assert a == b

    def test_from_separators_counts_full_data(self):
        data = np.arange(1, 101)
        hist = EquiHeightHistogram.from_separators(np.array([30, 60]), data)
        assert list(hist.counts) == [30, 30, 40]

    def test_min_max_recorded(self):
        hist = EquiHeightHistogram.from_values(np.array([5, 1, 9, 3]), 2)
        assert hist.min_value == 1
        assert hist.max_value == 9

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            EquiHeightHistogram.from_values(np.array([]), 4)

    def test_mismatched_counts_and_separators_rejected(self):
        with pytest.raises(ParameterError):
            EquiHeightHistogram(np.array([1.0]), np.array([1, 2, 3]), 0, 2)

    def test_decreasing_separators_rejected(self):
        with pytest.raises(ParameterError):
            EquiHeightHistogram(np.array([5.0, 1.0]), np.array([1, 1, 1]), 0, 9)

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError):
            EquiHeightHistogram(np.array([1.0]), np.array([1, -1]), 0, 2)

    def test_min_above_max_rejected(self):
        with pytest.raises(ParameterError):
            EquiHeightHistogram(np.array([1.0]), np.array([1, 1]), 5, 2)


class TestBucketSemantics:
    """The paper's convention: B_j = {v : s_{j-1} < v <= s_j}."""

    def test_value_equal_to_separator_goes_left(self):
        hist = EquiHeightHistogram.from_separators(
            np.array([10.0, 20.0]), np.arange(1, 31)
        )
        assert hist.bucket_index(10) == 0
        assert hist.bucket_index(20) == 1

    def test_value_above_separator_goes_right(self):
        hist = EquiHeightHistogram.from_separators(
            np.array([10.0, 20.0]), np.arange(1, 31)
        )
        assert hist.bucket_index(10.5) == 1
        assert hist.bucket_index(25) == 2

    def test_extremes(self):
        hist = EquiHeightHistogram.from_separators(
            np.array([10.0, 20.0]), np.arange(1, 31)
        )
        assert hist.bucket_index(-1e9) == 0
        assert hist.bucket_index(1e9) == 2

    def test_count_values_partitions_everything(self):
        data = np.random.default_rng(3).integers(0, 1000, size=5000)
        hist = EquiHeightHistogram.from_values(data, 7)
        other = np.random.default_rng(4).integers(0, 1000, size=3000)
        counts = hist.count_values(other)
        assert counts.sum() == other.size

    def test_count_values_empty(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        counts = hist.count_values(np.array([]))
        assert counts.sum() == 0
        assert counts.size == 4

    def test_counts_match_bincount_definition(self):
        data = np.random.default_rng(5).normal(size=2000)
        hist = EquiHeightHistogram.from_values(data, 16)
        expected = np.bincount(
            np.searchsorted(hist.separators, np.sort(data), side="left"),
            minlength=16,
        )
        np.testing.assert_array_equal(hist.counts, expected)

    def test_recount_keeps_separators(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        recounted = hist.recount(np.arange(50))
        np.testing.assert_array_equal(recounted.separators, hist.separators)
        assert recounted.total == 50


class TestBuckets:
    def test_buckets_have_finite_bounds(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 101), 4)
        buckets = hist.buckets()
        assert len(buckets) == 4
        assert buckets[0].lo == 1
        assert buckets[-1].hi == 100

    def test_bucket_widths_positive_for_distinct_data(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 101), 4)
        assert all(b.width > 0 for b in hist.buckets())

    def test_bucket_counts_match(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 101), 4)
        assert [b.count for b in hist.buckets()] == list(hist.counts)

    def test_bucket_dataclass(self):
        b = Bucket(lo=0.0, hi=10.0, count=5)
        assert b.width == 10.0


class TestRangeEstimation:
    def test_full_range_estimates_total(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        assert hist.estimate_range(1, 1000) == pytest.approx(1000, rel=0.01)

    def test_uniform_data_interpolation_accurate(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        # True count of [101, 300] is 200.
        assert hist.estimate_range(101, 300) == pytest.approx(200, rel=0.05)

    def test_out_of_domain_range_is_zero(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        assert hist.estimate_range(2000, 3000) == 0.0
        assert hist.estimate_range(-100, -50) == 0.0

    def test_reversed_range_raises(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 101), 4)
        with pytest.raises(ParameterError):
            hist.estimate_range(50, 10)

    def test_estimate_leq_monotone(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        points = np.linspace(-10, 1010, 57)
        estimates = [hist.estimate_leq(p) for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(estimates, estimates[1:]))

    def test_estimate_leq_bounds(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        assert hist.estimate_leq(-5) == 0.0
        assert hist.estimate_leq(5000) == 1000.0

    def test_theorem3_error_bound_holds_empirically(self):
        """Range estimates from a perfect histogram stay within 2n/k of truth
        on duplicate-free data (Theorem 1 part 1 is tight at 2n/k; the
        interpolation here should not exceed it)."""
        n, k = 10_000, 50
        data = np.arange(1, n + 1)
        hist = EquiHeightHistogram.from_values(data, k)
        rng = np.random.default_rng(6)
        for _ in range(50):
            lo, hi = np.sort(rng.integers(1, n + 1, size=2))
            truth = hi - lo + 1
            estimate = hist.estimate_range(lo, hi)
            assert abs(estimate - truth) <= 2 * n / k + 1

    def test_ideal_bucket_size(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 101), 4)
        assert hist.ideal_bucket_size == 25.0


class TestEquality:
    def test_equal_histograms(self):
        a = EquiHeightHistogram.from_values(np.arange(100), 4)
        b = EquiHeightHistogram.from_values(np.arange(100), 4)
        assert a == b

    def test_different_k_not_equal(self):
        a = EquiHeightHistogram.from_values(np.arange(100), 4)
        b = EquiHeightHistogram.from_values(np.arange(100), 5)
        assert a != b

    def test_not_equal_to_other_types(self):
        a = EquiHeightHistogram.from_values(np.arange(100), 4)
        assert (a == 42) is False

    def test_counts_are_read_only(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        with pytest.raises(ValueError):
            hist.counts[0] = 999

    def test_repr_mentions_k_and_total(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        assert "k=4" in repr(hist)
        assert "total=100" in repr(hist)


class TestInputValidation:
    """NaN/inf poisoning is rejected up front."""

    def test_nan_rejected_in_from_values(self):
        values = np.array([1.0, 2.0, np.nan, 4.0])
        with pytest.raises(ParameterError):
            EquiHeightHistogram.from_values(values, 2)

    def test_inf_rejected(self):
        values = np.array([1.0, np.inf, 3.0])
        with pytest.raises(ParameterError):
            EquiHeightHistogram.from_values(values, 2)

    def test_nan_rejected_in_from_separators(self):
        with pytest.raises(ParameterError):
            EquiHeightHistogram.from_separators(
                np.array([1.0]), np.array([0.0, np.nan])
            )

    def test_integer_arrays_skip_the_check(self):
        # No NaN possible: the fast path must not pay for the scan.
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        assert hist.total == 100

    def test_clean_floats_accepted(self):
        hist = EquiHeightHistogram.from_values(
            np.linspace(0.0, 1.0, 100), 4
        )
        assert hist.total == 100


class TestQuantileEstimation:
    def test_endpoints(self):
        hist = EquiHeightHistogram.from_values(np.arange(1, 1001), 10)
        assert hist.estimate_quantile(0.0) == pytest.approx(1, abs=1)
        assert hist.estimate_quantile(1.0) == pytest.approx(1000, abs=1)

    def test_uniform_data_linear(self):
        hist = EquiHeightHistogram.from_values(np.arange(0, 10_000), 20)
        for q in (0.1, 0.25, 0.5, 0.9):
            assert hist.estimate_quantile(q) == pytest.approx(
                q * 10_000, rel=0.02
            )

    def test_monotone_in_q(self):
        data = np.random.default_rng(0).normal(size=5_000)
        hist = EquiHeightHistogram.from_values(data, 16)
        qs = np.linspace(0, 1, 41)
        values = [hist.estimate_quantile(q) for q in qs]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_roundtrip_with_cumulative_fraction(self):
        data = np.arange(0, 100_000)
        hist = EquiHeightHistogram.from_values(data, 50)
        for q in (0.2, 0.5, 0.77):
            v = hist.estimate_quantile(q)
            assert hist.cumulative_fraction(v) == pytest.approx(q, abs=0.02)

    def test_hot_value_plateau(self):
        """A value holding half the mass: a wide band of quantiles maps
        onto it exactly."""
        # Values <= 500 cover quantiles up to ~0.55; the hot value's point
        # mass occupies the band (0.05, 0.55).
        values = np.concatenate([np.full(5_000, 500), np.arange(5_000)])
        hist = EquiHeightHistogram.from_values(values, 10)
        assert hist.estimate_quantile(0.3) == pytest.approx(500, abs=1)
        assert hist.estimate_quantile(0.5) == pytest.approx(500, abs=1)

    def test_invalid_q_rejected(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        with pytest.raises(ParameterError):
            hist.estimate_quantile(-0.1)
        with pytest.raises(ParameterError):
            hist.estimate_quantile(1.1)

    def test_quantiles_close_to_true_from_sample(self):
        rng = np.random.default_rng(1)
        data = np.sort(rng.lognormal(3, 1, size=100_000))
        sample = rng.choice(data, size=10_000, replace=True)
        hist = EquiHeightHistogram.from_values(sample, 50)
        for q in (0.1, 0.5, 0.9):
            true_q = float(np.quantile(data, q))
            assert hist.estimate_quantile(q) == pytest.approx(true_q, rel=0.1)
