"""Tests for compressed histograms (Section 5 extension)."""

import numpy as np
import pytest

from repro.core.compressed import CompressedHistogram, SingletonBucket
from repro.exceptions import EmptyDataError, ParameterError


def skewed_values():
    """One value with 60% of the mass, the rest spread thin."""
    return np.concatenate(
        [np.full(6000, 500), np.arange(1, 4001)]
    )


class TestConstruction:
    def test_hot_value_becomes_singleton(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        singles = hist.singletons
        assert any(s.value == 500 and s.count >= 6000 for s in singles)

    def test_total_preserved(self):
        values = skewed_values()
        hist = CompressedHistogram.from_values(values, k=10)
        assert hist.total == values.size

    def test_no_singletons_on_distinct_data(self):
        hist = CompressedHistogram.from_values(np.arange(1, 1001), k=10)
        assert hist.singletons == []
        assert hist.remainder is not None
        assert hist.remainder.k == 10

    def test_bucket_budget_respected(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        assert hist.k <= 10

    def test_at_most_k_minus_1_singletons(self):
        # Every value hot: all duplicates, 5 distinct values, k=3.
        values = np.repeat(np.arange(5), 100)
        hist = CompressedHistogram.from_values(values, k=3)
        assert len(hist.singletons) <= 2

    def test_all_one_value(self):
        values = np.full(1000, 42)
        hist = CompressedHistogram.from_values(values, k=5)
        assert len(hist.singletons) == 1
        assert hist.singletons[0] == SingletonBucket(42.0, 1000)
        assert hist.remainder is None

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            CompressedHistogram.from_values(np.array([]), k=5)

    def test_invalid_k_rejected(self):
        with pytest.raises(ParameterError):
            CompressedHistogram.from_values(np.arange(10), k=0)

    def test_inconsistent_total_rejected(self):
        with pytest.raises(ParameterError):
            CompressedHistogram([SingletonBucket(1.0, 5)], None, total=10)

    def test_threshold_factor_controls_cutoff(self):
        values = np.concatenate([np.full(300, 7), np.arange(1000)])
        # n/k = 130: 300 > 130, singleton at factor 1.
        strict = CompressedHistogram.from_values(values, k=10, threshold_factor=1.0)
        assert len(strict.singletons) == 1
        # Factor 3 raises cutoff to 390: no singleton.
        loose = CompressedHistogram.from_values(values, k=10, threshold_factor=3.0)
        assert len(loose.singletons) == 0


class TestEstimation:
    def test_equality_on_singleton_is_exact(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        # 6000 explicit copies plus one from the arange ramp.
        assert hist.estimate_equality(500) == 6001

    def test_range_covering_all_is_total(self):
        values = skewed_values()
        hist = CompressedHistogram.from_values(values, k=10)
        est = hist.estimate_range(values.min(), values.max())
        assert est == pytest.approx(values.size, rel=0.02)

    def test_range_excluding_hot_value(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        # [1000, 4000] excludes value 500: ~3001 thin values.
        est = hist.estimate_range(1000, 4000)
        assert est == pytest.approx(3001, rel=0.15)

    def test_range_including_hot_value_dominated_by_it(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        est = hist.estimate_range(450, 550)
        assert est >= 6000

    def test_reversed_range_rejected(self):
        hist = CompressedHistogram.from_values(skewed_values(), k=10)
        with pytest.raises(ParameterError):
            hist.estimate_range(10, 5)

    def test_better_than_plain_equiheight_on_hot_value(self):
        """The motivating property: the hot value's count is exact, whereas a
        plain 10-bucket equi-height histogram smears it."""
        from repro.core.histogram import EquiHeightHistogram

        values = skewed_values()
        compressed = CompressedHistogram.from_values(values, k=10)
        plain = EquiHeightHistogram.from_values(values, 10)
        truth = 6000
        err_compressed = abs(compressed.estimate_range(500, 500) - truth)
        err_plain = abs(plain.estimate_range(500, 500) - truth)
        assert err_compressed <= err_plain


class TestFromSample:
    def test_scales_to_relation_size(self, rng):
        values = skewed_values()
        sample = rng.choice(values, size=2000, replace=True)
        hist = CompressedHistogram.from_sample(sample, n=values.size, k=10)
        assert hist.total == pytest.approx(values.size, rel=0.05)

    def test_hot_value_survives_sampling(self, rng):
        values = skewed_values()
        sample = rng.choice(values, size=2000, replace=True)
        hist = CompressedHistogram.from_sample(sample, n=values.size, k=10)
        assert hist.estimate_equality(500) == pytest.approx(6000, rel=0.25)

    def test_sample_larger_than_n_rejected(self):
        with pytest.raises(ParameterError):
            CompressedHistogram.from_sample(np.arange(100), n=50, k=5)

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptyDataError):
            CompressedHistogram.from_sample(np.array([]), n=100, k=5)
