"""Regression pins for ``merge_equi_height`` counterexamples.

These are deterministic (non-property) copies of inputs Hypothesis once
shrank to; keeping them as plain unit tests means the fixes can never
silently regress even if future Hypothesis runs shrink differently.
"""

import numpy as np

from repro.core.histogram import EquiHeightHistogram
from repro.core.merge import merge_equi_height


def hist_of(values, k):
    return EquiHeightHistogram.from_values(np.asarray(values), k)


class TestEmptyLeadingBucketCounterexample:
    """The exact array Hypothesis shrank to: a count vector with empty
    leading buckets and heavy duplication.  Rounding each merged bucket
    independently left all mass at one cut; the old shortfall patch then
    clamped a negative residual on an empty last bucket, inflating the
    total (20 instead of 19)."""

    A = np.array([201, 200, 200, 200, 200])
    B = np.array([0, 0, 0] + [400] * 11)

    def test_total_preserved(self):
        left = hist_of(self.A, 4)
        right = hist_of(self.B, 4)
        merged = merge_equi_height(left, right, k=4)
        assert merged.total == self.A.size + self.B.size == 19

    def test_range_and_k_preserved(self):
        merged = merge_equi_height(hist_of(self.A, 4), hist_of(self.B, 4), k=4)
        assert merged.min_value == 0
        assert merged.max_value == 400
        assert merged.k == 4
        assert (merged.counts >= 0).all()

    def test_merge_order_does_not_change_total(self):
        ab = merge_equi_height(hist_of(self.A, 4), hist_of(self.B, 4), k=4)
        ba = merge_equi_height(hist_of(self.B, 4), hist_of(self.A, 4), k=4)
        assert ab.total == ba.total == 19


class TestHeavyDuplicationVariants:
    """Nearby shapes that stress the same apportionment path."""

    def test_single_hot_value_both_sides(self):
        merged = merge_equi_height(
            hist_of(np.full(100, 7.0), 3), hist_of(np.full(50, 7.0), 3), k=3
        )
        assert merged.total == 150

    def test_point_mass_against_spread(self):
        left = hist_of(np.full(997, 5.0), 5)
        right = hist_of(np.arange(100), 5)
        merged = merge_equi_height(left, right, k=5)
        assert merged.total == 997 + 100

    def test_zeros_then_far_cluster(self):
        left = hist_of(np.array([0.0, 0.0, 0.0]), 2)
        right = hist_of(np.array([1e6] * 9), 2)
        merged = merge_equi_height(left, right, k=2)
        assert merged.total == 12
        assert (merged.counts >= 0).all()
