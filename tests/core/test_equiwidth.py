"""Tests for the equi-width baseline histogram."""

import numpy as np
import pytest

from repro.core.equiwidth import EquiWidthHistogram
from repro.core.histogram import EquiHeightHistogram
from repro.exceptions import EmptyDataError, ParameterError


class TestConstruction:
    def test_uniform_data_fills_evenly(self):
        values = np.arange(0, 1000)
        hist = EquiWidthHistogram.from_values(values, 10)
        assert hist.k == 10
        assert hist.total == 1000
        assert (hist.counts >= 90).all()

    def test_edges_span_observed_range(self):
        values = np.array([5.0, 10.0, 20.0])
        hist = EquiWidthHistogram.from_values(values, 4)
        assert hist.edges[0] == 5.0
        assert hist.edges[-1] == 20.0

    def test_constant_column(self):
        hist = EquiWidthHistogram.from_values(np.full(100, 7.0), 5)
        assert hist.total == 100
        assert hist.counts[0] == 100

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            EquiWidthHistogram.from_values(np.array([]), 5)

    def test_bad_k_rejected(self):
        with pytest.raises(ParameterError):
            EquiWidthHistogram.from_values(np.arange(10), 0)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ParameterError):
            EquiWidthHistogram(np.array([0.0, 1.0]), np.array([1, 2]))


class TestEstimation:
    def test_full_range(self):
        values = np.arange(0, 1000)
        hist = EquiWidthHistogram.from_values(values, 10)
        assert hist.estimate_range(0, 999) == pytest.approx(1000, rel=0.01)

    def test_uniform_interpolation(self):
        values = np.arange(0, 10_000)
        hist = EquiWidthHistogram.from_values(values, 10)
        assert hist.estimate_range(1000, 2999) == pytest.approx(2000, rel=0.05)

    def test_out_of_range_zero(self):
        hist = EquiWidthHistogram.from_values(np.arange(100), 5)
        assert hist.estimate_range(500, 600) == 0.0

    def test_reversed_range_rejected(self):
        hist = EquiWidthHistogram.from_values(np.arange(100), 5)
        with pytest.raises(ParameterError):
            hist.estimate_range(5, 1)

    def test_skew_hurts_equiwidth_more_than_equiheight(self, zipf_dataset):
        """The reason optimizers use equi-height (Section 2): on skewed data
        the equi-width histogram concentrates nearly all tuples in few
        buckets, so a thin-range estimate is much worse."""
        values = zipf_dataset.values
        ew = EquiWidthHistogram.from_values(values, 20)
        eh = EquiHeightHistogram.from_values(values, 20)
        # Probe a range in the sparse upper half of the domain.
        lo = float(np.quantile(values, 0.99))
        hi = float(values.max())
        truth = int(((values >= lo) & (values <= hi)).sum())
        err_ew = abs(ew.estimate_range(lo, hi) - truth)
        err_eh = abs(eh.estimate_range(lo, hi) - truth)
        assert err_eh <= err_ew

    def test_estimate_leq_monotone(self):
        values = np.random.default_rng(0).normal(size=2000)
        hist = EquiWidthHistogram.from_values(values, 16)
        points = np.linspace(values.min() - 1, values.max() + 1, 99)
        estimates = [hist.estimate_leq(p) for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(estimates, estimates[1:]))
