"""Unit tests for the error metrics of Sections 2, 4 and 5."""

import numpy as np
import pytest

from repro.core.error_metrics import (
    avg_error,
    fractional_max_error,
    histogram_max_error_fraction,
    is_delta_deviant,
    is_delta_separated,
    max_error,
    max_error_fraction,
    relative_deviation,
    relative_deviation_fraction,
    separation_error,
    var_error,
)
from repro.core.histogram import EquiHeightHistogram
from repro.exceptions import EmptyDataError, ParameterError

#: The bucket sizes of the paper's Example 2 (n=1000, k=10).
EXAMPLE2_COUNTS = np.array([88, 101, 87, 88, 89, 180, 90, 88, 103, 86])


class TestPaperExample2:
    """The paper computes all three metrics on a fixed bucket vector."""

    def test_avg_error(self):
        assert avg_error(EXAMPLE2_COUNTS) == pytest.approx(16.8)

    def test_var_error(self):
        # Exact value is 27.25; the paper rounds to 27.5.
        assert var_error(EXAMPLE2_COUNTS) == pytest.approx(27.25, abs=0.05)

    def test_max_error(self):
        assert max_error(EXAMPLE2_COUNTS) == pytest.approx(80.0)

    def test_max_error_fraction(self):
        assert max_error_fraction(EXAMPLE2_COUNTS) == pytest.approx(0.80)


class TestMetricBasics:
    def test_perfect_histogram_has_zero_errors(self):
        counts = np.full(10, 100)
        assert avg_error(counts) == 0.0
        assert var_error(counts) == 0.0
        assert max_error(counts) == 0.0

    def test_theorem2_max_dominates_avg_and_var(self):
        """Theorem 2: Δmax <= δ implies Δavg <= δ and Δvar <= δ."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            counts = rng.integers(0, 1000, size=rng.integers(2, 64))
            delta = max_error(counts)
            assert avg_error(counts) <= delta + 1e-9
            assert var_error(counts) <= delta + 1e-9

    def test_var_at_least_avg_never_required(self):
        """Δvar >= Δavg always (RMS-mean inequality) — a sanity relation."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            counts = rng.integers(0, 500, size=16)
            assert var_error(counts) >= avg_error(counts) - 1e-9

    def test_is_delta_deviant(self):
        counts = np.array([90, 110, 100, 100])
        assert is_delta_deviant(counts, 10)
        assert not is_delta_deviant(counts, 9)

    def test_negative_delta_rejected(self):
        with pytest.raises(ParameterError):
            is_delta_deviant(np.array([1, 2]), -1)

    def test_empty_counts_rejected(self):
        with pytest.raises(ParameterError):
            max_error(np.array([]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError):
            avg_error(np.array([5, -1]))

    def test_fraction_of_zero_total_rejected(self):
        with pytest.raises(EmptyDataError):
            max_error_fraction(np.zeros(4))


class TestRelativeDeviation:
    def test_deviation_of_matching_sample_is_small(self):
        data = np.arange(100_000)
        hist = EquiHeightHistogram.from_values(data, 10)
        # The full data partitions perfectly by its own separators.
        assert relative_deviation(hist, data) == 0.0

    def test_deviation_of_shifted_sample_is_large(self):
        data = np.arange(10_000)
        hist = EquiHeightHistogram.from_values(data, 10)
        shifted = np.arange(5_000)  # only lower half: upper buckets empty
        dev = relative_deviation(hist, shifted)
        assert dev >= 5_000 / 10  # at least one bucket is off by |S|/k

    def test_fraction_form(self):
        data = np.arange(10_000)
        hist = EquiHeightHistogram.from_values(data, 10)
        sample = np.arange(0, 10_000, 2)
        frac = relative_deviation_fraction(hist, sample)
        dev = relative_deviation(hist, sample)
        assert frac == pytest.approx(dev * 10 / sample.size)

    def test_empty_sample_rejected(self):
        hist = EquiHeightHistogram.from_values(np.arange(100), 4)
        with pytest.raises(EmptyDataError):
            relative_deviation(hist, np.array([]))


class TestSeparationError:
    def test_identical_separators_have_zero_separation(self):
        data = np.arange(1000)
        seps = np.array([250.0, 500.0, 750.0])
        assert separation_error(seps, seps, data) == 0.0

    def test_known_shift(self):
        data = np.arange(1, 101)  # 1..100
        a = np.array([50.0])
        b = np.array([60.0])
        # B_1 differs by the 10 values in (50, 60]; symmetric difference 10.
        assert separation_error(a, b, data) == 10.0

    def test_symmetric(self):
        data = np.sort(np.random.default_rng(2).integers(0, 1000, 500))
        a = np.array([100.0, 400.0, 800.0])
        b = np.array([150.0, 350.0, 850.0])
        assert separation_error(a, b, data) == separation_error(b, a, data)

    def test_mismatched_k_rejected(self):
        with pytest.raises(ParameterError):
            separation_error(np.array([1.0]), np.array([1.0, 2.0]), np.arange(10))

    def test_empty_data_rejected(self):
        with pytest.raises(EmptyDataError):
            separation_error(np.array([1.0]), np.array([2.0]), np.array([]))

    def test_is_delta_separated(self):
        data = np.arange(1, 101)
        assert is_delta_separated(np.array([50.0]), np.array([55.0]), data, 5)
        assert not is_delta_separated(np.array([50.0]), np.array([60.0]), data, 5)

    def test_separation_bounds_deviation(self):
        """δ-separation implies each bucket size differs by at most δ, so it
        is the stronger metric (Section 3.2)."""
        data = np.sort(np.random.default_rng(3).integers(0, 10_000, 5000))
        perfect = EquiHeightHistogram.from_sorted_values(data, 20)
        sample = np.sort(
            np.random.default_rng(4).choice(data, size=1000, replace=True)
        )
        approx = EquiHeightHistogram.from_values(sample, 20)
        sep = separation_error(approx.separators, perfect.separators, data)
        counted = approx.recount(data)
        assert max_error(counted.counts) <= sep + 1e-9


class TestFractionalMaxError:
    def test_reduces_to_f_on_distinct_data(self):
        """With duplicate-free data and separators at exact sample quantiles,
        f' equals the per-range relative deviation, which matches the count
        metric's fraction."""
        data = np.arange(1, 10_001)
        hist = EquiHeightHistogram.from_sorted_values(data, 10)
        # Against the same data, error is zero.
        assert fractional_max_error(hist.separators, data, data) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_detects_distribution_mismatch(self):
        reference = np.arange(1, 1001)
        hist = EquiHeightHistogram.from_sorted_values(reference, 10)
        observed = np.concatenate([np.arange(1, 501)] * 2)  # lower half only
        err = fractional_max_error(hist.separators, reference, observed)
        assert err >= 0.9  # upper ranges hold ~0 observed mass

    def test_safe_under_heavy_duplicates(self, zipf_dataset):
        values = zipf_dataset.values
        hist = EquiHeightHistogram.from_sorted_values(values, 20)
        err = fractional_max_error(hist.separators, values, values)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_sampled_reference_close_to_data(self, rng):
        data = np.sort(rng.integers(0, 10**6, size=50_000))
        sample = np.sort(rng.choice(data, size=20_000, replace=True))
        hist = EquiHeightHistogram.from_values(sample, 10)
        err = fractional_max_error(hist.separators, sample, data)
        assert err < 0.2

    def test_empty_inputs_rejected(self):
        with pytest.raises(EmptyDataError):
            fractional_max_error(np.array([1.0]), np.array([]), np.arange(10))
        with pytest.raises(EmptyDataError):
            fractional_max_error(np.array([1.0]), np.arange(10), np.array([]))

    def test_histogram_max_error_fraction_end_to_end(self, rng):
        data = np.arange(1, 100_001)
        sample = np.sort(rng.choice(data, size=10_000, replace=True))
        approx = EquiHeightHistogram.from_values(sample, 20)
        err = histogram_max_error_fraction(approx, data)
        assert 0 <= err < 0.5


class TestCountNormalisationDtypes:
    """Pin the `_normalise_counts` dtype contract at REPRO_SCALE extremes.

    The historical blanket cast to float64 silently widened integer counts,
    losing exactness above 2**53 — at the paper's 20 M-row scale a full-table
    recount into few buckets sits uncomfortably close to where narrow input
    dtypes overflow instead.  Integer inputs must now stay int64 end-to-end.
    """

    def test_int64_counts_with_sum_above_float53_stay_exact(self):
        # The bucket values are float-exact but their sum (2**53 + 1) is
        # not: the old float path summed to 2**53 and skewed the ideal by
        # half a tuple.  With int64 accumulation the ideal is the exactly
        # representable (2**53 + 1) / 3 and the deviations are exact.
        counts = np.array([2**52, 2**52, 1], dtype=np.int64)
        ideal = (2**53 + 1) // 3  # divides exactly
        assert max_error(counts) == float(ideal - 1)

    def test_int32_counts_at_20m_scale_do_not_overflow(self):
        # 20 M rows in int32 buckets: sums exceed int32 range; int64
        # accumulation must keep Delta-avg exact.
        counts = np.full(4, 20_000_000, dtype=np.int32)
        assert avg_error(counts) == 0.0
        assert max_error_fraction(np.array([0, 40_000_000], np.int32)) == 1.0

    def test_small_integer_results_unchanged_versus_float_path(self):
        # Below 2**53 the int64 path must agree bit-for-bit with the old
        # float64 widening — this is what keeps bench baselines stable.
        counts = np.array([3, 9, 1, 7], dtype=np.int16)
        as_float = counts.astype(np.float64)
        assert max_error(counts) == max_error(as_float)
        assert avg_error(counts) == avg_error(as_float)
        assert var_error(counts) == var_error(as_float)
        assert max_error_fraction(counts) == max_error_fraction(as_float)

    def test_uint64_within_int64_range_accepted(self):
        counts = np.array([5, 10], dtype=np.uint64)
        assert max_error(counts) == 2.5

    def test_uint64_beyond_int64_range_rejected(self):
        counts = np.array([2**63, 1], dtype=np.uint64)
        with pytest.raises(ParameterError, match="int64"):
            max_error(counts)

    def test_float_counts_still_accepted(self):
        # Fractional counts are legitimate (merged / scaled histograms).
        counts = np.array([1.5, 2.5], dtype=np.float32)
        assert max_error(counts) == 0.5

    def test_non_numeric_counts_rejected(self):
        with pytest.raises(ParameterError, match="numeric"):
            max_error(np.array(["a", "b"]))
