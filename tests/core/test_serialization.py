"""Tests for histogram serialization and catalog-page budgeting."""

import numpy as np
import pytest

from repro.core.compressed import CompressedHistogram
from repro.core.equiwidth import EquiWidthHistogram
from repro.core.histogram import EquiHeightHistogram
from repro.core.serialization import (
    fit_to_page,
    histogram_from_dict,
    histogram_from_json,
    histogram_to_dict,
    histogram_to_json,
    max_bins_for_page,
)
from repro.exceptions import ParameterError


def skewed_values():
    return np.concatenate([np.full(3000, 77), np.arange(1, 2001)])


class TestRoundTrips:
    def test_equi_height_dict_roundtrip(self):
        hist = EquiHeightHistogram.from_values(skewed_values(), 16)
        rebuilt = histogram_from_dict(histogram_to_dict(hist))
        assert rebuilt == hist

    def test_equi_height_preserves_eq_counts(self):
        hist = EquiHeightHistogram.from_values(skewed_values(), 16)
        rebuilt = histogram_from_dict(histogram_to_dict(hist))
        np.testing.assert_array_equal(rebuilt.eq_counts, hist.eq_counts)

    def test_equi_height_json_roundtrip(self):
        hist = EquiHeightHistogram.from_values(np.arange(500), 8)
        rebuilt = histogram_from_json(histogram_to_json(hist))
        assert rebuilt == hist

    def test_equi_width_roundtrip(self):
        hist = EquiWidthHistogram.from_values(skewed_values(), 12)
        rebuilt = histogram_from_dict(histogram_to_dict(hist))
        np.testing.assert_array_equal(rebuilt.edges, hist.edges)
        np.testing.assert_array_equal(rebuilt.counts, hist.counts)

    def test_compressed_roundtrip(self):
        hist = CompressedHistogram.from_values(skewed_values(), 10)
        rebuilt = histogram_from_dict(histogram_to_dict(hist))
        assert rebuilt.total == hist.total
        assert rebuilt.singletons == hist.singletons
        assert rebuilt.estimate_range(1, 2000) == pytest.approx(
            hist.estimate_range(1, 2000)
        )

    def test_estimates_survive_roundtrip(self):
        hist = EquiHeightHistogram.from_values(skewed_values(), 16)
        rebuilt = histogram_from_json(histogram_to_json(hist))
        for lo, hi in [(1, 100), (77, 77), (500, 1500)]:
            assert rebuilt.estimate_range(lo, hi) == pytest.approx(
                hist.estimate_range(lo, hi)
            )

    def test_unknown_type_rejected(self):
        with pytest.raises(ParameterError):
            histogram_to_dict(object())
        with pytest.raises(ParameterError):
            histogram_from_dict({"type": "alien"})
        with pytest.raises(ParameterError):
            histogram_from_dict({"no": "type"})

    def test_bad_json_rejected(self):
        with pytest.raises(ParameterError):
            histogram_from_json("{not json")


class TestPageBudget:
    def test_int32_budget_matches_paper(self):
        """Section 7.1: one 8 KB page holds ~600 bins for an integer column."""
        budget = max_bins_for_page("int32")
        assert 550 <= budget <= 700

    def test_wider_types_fit_fewer(self):
        assert max_bins_for_page("int64") < max_bins_for_page("int32")
        assert max_bins_for_page("float64") == max_bins_for_page("int64")

    def test_unknown_type_rejected(self):
        with pytest.raises(ParameterError):
            max_bins_for_page("varchar")

    def test_fit_to_page_noop_when_small(self):
        values = np.arange(10_000)
        hist = EquiHeightHistogram.from_sorted_values(values, 100)
        assert fit_to_page(hist, values) is hist

    def test_fit_to_page_rebuckets_oversized(self):
        values = np.arange(10_000)
        hist = EquiHeightHistogram.from_sorted_values(values, 2000)
        fitted = fit_to_page(hist, values, "int32")
        assert fitted.k == max_bins_for_page("int32")
        assert fitted.total == hist.total
