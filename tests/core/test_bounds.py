"""Unit tests for the analytical bounds (Theorems 1, 3-8, Corollary 1).

Includes the paper's own numeric evaluations (Examples 1, 3 and 4) as
regression anchors.
"""

import math

import pytest

from repro.core import bounds
from repro.exceptions import InfeasibleBoundError, ParameterError


class TestCorollary1PaperExample3:
    """Example 3 numerics, with gamma = 0.01.

    The paper rounds aggressively — it quotes ``ln(2n/gamma) ~ 20`` at
    n = 1 Gig where the exact value is ~26 — so its headline numbers
    (1 Meg, 800 K, 800 buckets, 14%) come out 20-30% below the exact
    formula.  Tests anchor the exact values and check the paper's quotes
    are within that rounding slack.
    """

    def test_log_term_magnitude(self):
        exact = math.log(2 * 2**30 / 0.01)
        assert exact == pytest.approx(26.1, abs=0.1)
        assert abs(exact - 20) / exact < 0.31  # the paper's "roughly 20"

    def test_sample_size_k500_f02_is_about_1meg(self):
        r = bounds.corollary1_sample_size(n=2**30, k=500, f=0.2, gamma=0.01)
        assert 0.9e6 <= r <= 1.4e6  # paper: "roughly 1Meg"

    def test_sample_size_k100_f01_is_about_800k(self):
        r = bounds.corollary1_sample_size(n=2**30, k=100, f=0.1, gamma=0.01)
        assert 0.7e6 <= r <= 1.1e6  # paper: "roughly 800K"

    def test_histogram_size_20meg_sample_1meg_f025_is_about_800(self):
        k = bounds.corollary1_max_buckets(
            n=20 * 2**20, r=2**20, f=0.25, gamma=0.01
        )
        assert 650 <= k <= 800  # paper: "should not have k exceeding 800"

    def test_error_800k_sample_25meg_k200_is_about_14pct(self):
        f = bounds.corollary1_error_fraction(
            n=25 * 2**20, k=200, r=800_000, gamma=0.01
        )
        assert 0.12 <= f <= 0.15


class TestTheorem4:
    def test_consistency_with_corollary1(self):
        n, k, f, gamma = 10**6, 100, 0.1, 0.01
        delta = f * n / k
        assert bounds.theorem4_sample_size(n, k, delta, gamma) == (
            bounds.corollary1_sample_size(n, k, f, gamma)
        )

    def test_inverse_relationship(self):
        n, k, gamma = 10**6, 100, 0.01
        r = 500_000
        delta = bounds.theorem4_error(n, k, r, gamma)
        # Plugging the error back should need about r samples.
        r_back = bounds.theorem4_sample_size(n, k, delta, gamma)
        assert abs(r_back - r) <= 2

    def test_sample_grows_linearly_in_k(self):
        base = bounds.corollary1_sample_size(10**7, 100, 0.1, 0.01)
        double = bounds.corollary1_sample_size(10**7, 200, 0.1, 0.01)
        assert double == pytest.approx(2 * base, rel=0.01)

    def test_sample_grows_inverse_squared_in_f(self):
        base = bounds.corollary1_sample_size(10**7, 100, 0.2, 0.01)
        fine = bounds.corollary1_sample_size(10**7, 100, 0.1, 0.01)
        assert fine == pytest.approx(4 * base, rel=0.01)

    def test_essentially_independent_of_n(self):
        small = bounds.corollary1_sample_size(10**6, 100, 0.1, 0.01)
        large = bounds.corollary1_sample_size(10**9, 100, 0.1, 0.01)
        assert large < 1.5 * small  # only logarithmic growth

    def test_delta_above_bucket_size_rejected(self):
        with pytest.raises(ParameterError):
            bounds.theorem4_sample_size(1000, 10, 200, 0.01)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ParameterError):
            bounds.corollary1_sample_size(1000, 10, 0.1, 1.5)

    def test_invalid_f_rejected(self):
        with pytest.raises(ParameterError):
            bounds.corollary1_sample_size(1000, 10, 0.0, 0.01)
        with pytest.raises(ParameterError):
            bounds.corollary1_sample_size(1000, 10, 1.5, 0.01)

    def test_max_buckets_infeasible(self):
        with pytest.raises(InfeasibleBoundError):
            bounds.corollary1_max_buckets(n=10**9, r=10, f=0.01, gamma=0.01)


class TestTheorem5:
    def test_larger_than_theorem4(self):
        """δ-separation costs more sampling than δ-deviance (12 vs 4/k)."""
        n, k, gamma = 10**6, 100, 0.01
        delta = 0.1 * n / k
        assert bounds.theorem5_sample_size(n, k, delta, gamma) > (
            bounds.theorem4_sample_size(n, k, delta, gamma)
        )

    def test_inverse(self):
        n, k, gamma = 10**6, 100, 0.01
        r = 10**7  # large enough that the implied delta stays below n/k
        delta = bounds.theorem5_separation(n, k, r, gamma)
        assert delta <= n / k
        assert abs(bounds.theorem5_sample_size(n, k, delta, gamma) - r) <= 2

    def test_delta_above_bucket_size_rejected(self):
        with pytest.raises(ParameterError):
            bounds.theorem5_sample_size(1000, 10, 150, 0.01)


class TestTheorem7:
    def test_accept_needs_more_than_reject(self):
        # ln(k/gamma) > ln(1/gamma) and 16 > 4.
        k, f, gamma = 100, 0.1, 0.01
        assert bounds.theorem7_accept_sample_size(k, f, gamma) > (
            bounds.theorem7_reject_sample_size(k, f, gamma)
        )

    def test_combined_size_is_max(self):
        k, f, gamma = 100, 0.1, 0.01
        assert bounds.cross_validation_sample_size(k, f, gamma) == max(
            bounds.theorem7_reject_sample_size(k, f, gamma),
            bounds.theorem7_accept_sample_size(k, f, gamma),
        )

    def test_comparable_to_construction_size(self):
        """Section 4.3: the validation sample need not exceed the size
        needed to build a histogram at the same error."""
        n, k, f, gamma = 10**7, 100, 0.1, 0.01
        build = bounds.corollary1_sample_size(n, k, f, gamma)
        validate = bounds.cross_validation_sample_size(k, f, gamma)
        assert validate <= 2 * build


class TestTheorem1And3:
    def test_example1_avg_factor(self):
        """Example 1: k=1000, f=0.05, t=10 — avg-bounded histograms are
        13.5x worse than perfect."""
        k, f, t = 1000, 0.05, 10
        perfect = bounds.theorem1_perfect_relative_error(t)
        avg = bounds.theorem1_avg_relative_error(k, f, t)
        assert avg / perfect == pytest.approx(13.5, rel=0.01)

    def test_example1_var_factor(self):
        """Example 1: var-bounded histograms are ~2.8x worse."""
        k, f, t = 1000, 0.05, 10
        perfect = bounds.theorem1_perfect_relative_error(t)
        var = bounds.theorem1_var_relative_error(k, f, t)
        assert var / perfect == pytest.approx(2.77, rel=0.02)

    def test_example2_max_factor(self):
        """Continuation of Example 2: max-bounded is only (1+f) = 1.05x."""
        f, t = 0.05, 10
        perfect = bounds.theorem1_perfect_relative_error(t)
        mx = bounds.theorem3_relative_error(f, t)
        assert mx / perfect == pytest.approx(1.05, rel=0.001)

    def test_perfect_absolute_error(self):
        assert bounds.theorem1_perfect_absolute_error(1000, 10) == 200.0

    def test_theorem3_absolute(self):
        assert bounds.theorem3_absolute_error(1000, 10, 0.5) == pytest.approx(300.0)

    def test_var_penalty_grows_with_t(self):
        """Example 1's note: increasing s (i.e. t) worsens the var-bounded
        case *relative to the perfect histogram* — the multiplicative
        penalty (1 + f*sqrt(kt/8)) grows with t."""
        k, f = 1000, 0.05
        penalty_small = bounds.theorem1_var_relative_error(
            k, f, 10
        ) / bounds.theorem1_perfect_relative_error(10)
        penalty_large = bounds.theorem1_var_relative_error(
            k, f, 100
        ) / bounds.theorem1_perfect_relative_error(100)
        assert penalty_large > penalty_small


class TestGMPTheorem6:
    def test_example4_k100_guarantees_only_f048(self):
        f = bounds.gmp_error_fraction(k=100, c=4)
        assert f == pytest.approx(0.48, abs=0.01)

    def test_example4_n_min_is_prohibitive(self):
        """k=100 needs n >= ~6e11 (Example 4.2)."""
        bound = bounds.gmp_theorem6(k=100, c=4, n=10**9)
        assert bound.n_min > 5e11
        assert not bound.feasible

    def test_f043_at_k500_is_the_c4_limit(self):
        """At k=500 the best fraction c=4 can promise is ~0.43, so asking
        for f=0.43 needs c just above the theorem's minimum."""
        c = bounds.gmp_required_c(k=500, f=0.43)
        assert 4.0 <= c <= 4.2
        # And the validity requirement n >= r^3 is already prohibitive.
        bound = bounds.gmp_theorem6(k=500, c=c, n=10**12)
        assert bound.n_min > 1e14
        assert not bound.feasible

    def test_f_below_035_needs_impractical_k(self):
        """Example 4.4: at c=4, f=0.35 needs k > ~100,000 and f=0.1 needs
        k > e^500."""
        assert bounds.gmp_required_k(0.35, c=4) > 1e5
        assert bounds.gmp_required_log_k(0.1, c=4) == pytest.approx(500, rel=0.01)
        assert bounds.gmp_required_k(0.1, c=4) > 1e200  # e^500

    def test_f02_needs_log_k_60(self):
        """Example 4.4: f = 0.2 needs k > e^60 (and n > e^180)."""
        log_k = bounds.gmp_required_log_k(0.2, c=4)
        assert log_k == pytest.approx(62.5, rel=0.02)

    def test_ours_beats_gmp_example4_5(self):
        """Example 4.5's substance: at (k=500, f=0.2) our bound needs a few
        Meg while GMP's needs c ~ 400, hence r ~ 8 Meg and validity
        n >= r^3 ~ 5e20 — unusable at any real table size."""
        c = bounds.gmp_required_c(k=500, f=0.2)
        assert c > 100
        gmp = bounds.gmp_theorem6(k=500, c=c, n=10**12)
        gamma_gmp = max(gmp.gamma, 1e-6)
        ours = bounds.corollary1_sample_size(10**12, 500, 0.2, gamma_gmp)
        assert ours < gmp.r
        assert gmp.n_min > 1e20
        assert not gmp.feasible

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            bounds.gmp_theorem6(k=2, c=4, n=100)
        with pytest.raises(ParameterError):
            bounds.gmp_theorem6(k=100, c=3, n=100)


class TestTheorem8:
    def test_lower_bound_formula(self):
        lb = bounds.theorem8_error_lower_bound(n=10**6, r=10**4, gamma=0.5)
        assert lb == pytest.approx(math.sqrt(10**6 * math.log(2) / 10**4))

    def test_paper_haas_comparison(self):
        """Section 6.1: with r = 0.2n and gamma = 0.5, the bound gives
        error at least 1.86."""
        n = 10**6
        lb = bounds.theorem8_error_lower_bound(n=n, r=int(0.2 * n), gamma=0.5)
        assert lb == pytest.approx(1.86, abs=0.01)

    def test_inverse(self):
        n, gamma = 10**6, 0.5
        r = bounds.theorem8_sample_size_for_error(n, 2.0, gamma)
        lb = bounds.theorem8_error_lower_bound(n, r, gamma)
        assert lb == pytest.approx(2.0, rel=0.01)

    def test_gamma_too_small_rejected(self):
        with pytest.raises(ParameterError):
            bounds.theorem8_error_lower_bound(n=100, r=5, gamma=1e-3)

    def test_error_target_below_one_rejected(self):
        with pytest.raises(ParameterError):
            bounds.theorem8_sample_size_for_error(100, 0.5, 0.5)


class TestInitialBlocks:
    def test_divides_by_blocking_factor(self):
        n, k, f, gamma = 10**7, 100, 0.1, 0.01
        r = bounds.corollary1_sample_size(n, k, f, gamma)
        g0 = bounds.initial_blocks(n, k, f, gamma, b=100)
        assert g0 == math.ceil(r / 100)

    def test_at_least_one_block(self):
        assert bounds.initial_blocks(100, 2, 1.0, 0.5, b=10**6) == 1
