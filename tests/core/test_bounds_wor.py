"""Tests for the without-replacement sample-size correction (Section 3.1)."""

import math

import pytest

from repro.core.bounds import (
    corollary1_sample_size,
    effective_with_replacement_size,
    without_replacement_sample_size,
)
from repro.exceptions import ParameterError


class TestWithoutReplacementCorrection:
    def test_never_larger_than_with_replacement(self):
        for r in (10, 1_000, 100_000):
            for n in (1_000, 10**6, 10**9):
                assert without_replacement_sample_size(r, n) <= r

    def test_negligible_for_small_sampling_fraction(self):
        """When r << n the correction vanishes — matching the paper's
        'without any noticeable change in the bounds' remark."""
        r = 10_000
        n = 10**9
        assert without_replacement_sample_size(r, n) == pytest.approx(r, abs=2)

    def test_substantial_for_large_fraction(self):
        r, n = 50_000, 100_000
        corrected = without_replacement_sample_size(r, n)
        assert corrected < 0.75 * r

    def test_capped_at_population(self):
        assert without_replacement_sample_size(10**9, 1000) == 1000

    def test_roundtrip_with_effective_size(self):
        n = 10**6
        r_wor = 100_000
        effective = effective_with_replacement_size(r_wor, n)
        back = without_replacement_sample_size(math.ceil(effective), n)
        assert abs(back - r_wor) <= 2

    def test_effective_size_blows_up_near_census(self):
        # A full without-replacement draw is worth ~n^2 with-replacement
        # draws under the variance-matching correction.
        n = 1_000
        assert effective_with_replacement_size(n, n) >= 0.9 * n * n

    def test_effective_size_validation(self):
        with pytest.raises(ParameterError):
            effective_with_replacement_size(1001, 1000)
        with pytest.raises(ParameterError):
            without_replacement_sample_size(0, 100)

    def test_composes_with_corollary1(self):
        """Planning pipeline: Corollary 1 gives r with replacement; the
        correction turns it into the cheaper WOR prescription."""
        n, k, f, gamma = 10**6, 100, 0.2, 0.01
        r = corollary1_sample_size(n, k, f, gamma)
        r_wor = without_replacement_sample_size(r, n)
        assert r_wor <= r
        assert r_wor >= r / 2  # at this fraction the saving is modest
