"""Tests for the MaxDiff(V,A) histogram baseline."""

import numpy as np
import pytest

from repro.core.histogram import EquiHeightHistogram
from repro.core.maxdiff import MaxDiffBucket, MaxDiffHistogram
from repro.exceptions import EmptyDataError, ParameterError


def spiky_values():
    """Uniform background with one dominant value."""
    return np.concatenate([np.arange(1, 2001), np.full(5000, 1000)])


class TestConstruction:
    def test_bucket_budget(self):
        hist = MaxDiffHistogram.from_values(np.arange(1000), 16)
        assert hist.k <= 16
        assert hist.total == 1000

    def test_single_bucket(self):
        hist = MaxDiffHistogram.from_values(np.arange(100), 1)
        assert hist.k == 1
        assert hist.buckets()[0].count == 100

    def test_single_value(self):
        hist = MaxDiffHistogram.from_values(np.full(50, 7), 8)
        assert hist.k == 1
        assert hist.buckets()[0] == MaxDiffBucket(7.0, 7.0, 50, 1)

    def test_hot_value_isolated(self):
        """The defining MaxDiff property: the frequency spike lands on
        bucket boundaries, isolating the hot value."""
        hist = MaxDiffHistogram.from_values(spiky_values(), 8)
        hot_buckets = [
            b for b in hist.buckets() if b.lo <= 1000 <= b.hi
        ]
        assert len(hot_buckets) == 1
        hot = hot_buckets[0]
        # The hot value's bucket is narrow (few distinct values around it).
        assert hot.distinct <= 3
        assert hot.count >= 5000

    def test_distinct_counts_partition(self):
        values = spiky_values()
        hist = MaxDiffHistogram.from_values(values, 8)
        assert hist.estimate_distinct() == np.unique(values).size

    def test_buckets_ordered_and_disjoint(self):
        hist = MaxDiffHistogram.from_values(spiky_values(), 8)
        buckets = hist.buckets()
        for a, b in zip(buckets, buckets[1:]):
            assert a.hi < b.lo or a.hi <= b.lo

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            MaxDiffHistogram.from_values(np.array([]), 4)

    def test_invalid_k_rejected(self):
        with pytest.raises(ParameterError):
            MaxDiffHistogram.from_values(np.arange(10), 0)

    def test_unordered_buckets_rejected(self):
        with pytest.raises(ParameterError):
            MaxDiffHistogram(
                [MaxDiffBucket(5, 10, 1, 1), MaxDiffBucket(0, 4, 1, 1)]
            )


class TestEstimation:
    def test_full_range(self):
        values = spiky_values()
        hist = MaxDiffHistogram.from_values(values, 8)
        est = hist.estimate_range(values.min(), values.max())
        assert est == pytest.approx(values.size, rel=0.01)

    def test_hot_value_estimate_exact(self):
        hist = MaxDiffHistogram.from_values(spiky_values(), 8)
        # The hot value sits in its own (near-)singleton bucket.
        assert hist.estimate_range(1000, 1000) >= 5000

    def test_monotone_leq(self):
        hist = MaxDiffHistogram.from_values(spiky_values(), 8)
        points = np.linspace(0, 2100, 64)
        estimates = [hist.estimate_leq(p) for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(estimates, estimates[1:]))

    def test_out_of_range_zero(self):
        hist = MaxDiffHistogram.from_values(np.arange(100), 4)
        assert hist.estimate_range(500, 600) == 0.0

    def test_reversed_range_rejected(self):
        hist = MaxDiffHistogram.from_values(np.arange(100), 4)
        with pytest.raises(ParameterError):
            hist.estimate_range(9, 3)

    def test_beats_equiheight_on_spike_with_few_buckets(self):
        """With a tiny bucket budget, MaxDiff isolates the spike while plain
        equi-height (without the EQ_ROWS refinement it normally carries)
        must smear it."""
        values = spiky_values()
        k = 4
        maxdiff = MaxDiffHistogram.from_values(values, k)
        plain = EquiHeightHistogram.from_values(values, k)
        # Strip the equal-boundary refinement for a like-for-like contrast.
        plain = EquiHeightHistogram(
            plain.separators, plain.counts, plain.min_value, plain.max_value
        )
        truth = 5001  # 5000 dups + 1 from the ramp
        err_maxdiff = abs(maxdiff.estimate_range(1000, 1000) - truth)
        err_plain = abs(plain.estimate_range(1000, 1000) - truth)
        assert err_maxdiff < err_plain

    def test_from_sample_usable(self, rng):
        values = spiky_values()
        sample = rng.choice(values, size=1500, replace=True)
        hist = MaxDiffHistogram.from_values(sample, 8)
        scale = values.size / sample.size
        est = hist.estimate_range(1000, 1000) * scale
        assert est == pytest.approx(5001, rel=0.3)
