"""Tests for equi-height histogram merging (partitioned-table stats)."""

import numpy as np
import pytest

from repro.core.histogram import EquiHeightHistogram
from repro.core.merge import merge_equi_height
from repro.exceptions import ParameterError


def hist_of(values, k):
    return EquiHeightHistogram.from_values(np.asarray(values), k)


class TestMerge:
    def test_total_preserved(self):
        left = hist_of(np.arange(0, 10_000), 10)
        right = hist_of(np.arange(10_000, 25_000), 10)
        merged = merge_equi_height(left, right, k=10)
        assert merged.total == 25_000

    def test_default_k(self):
        left = hist_of(np.arange(1000), 8)
        right = hist_of(np.arange(1000, 2000), 16)
        merged = merge_equi_height(left, right)
        assert merged.k == 16

    def test_disjoint_partitions_recover_global_quantiles(self):
        """Two disjoint partitions of a uniform domain: the merged histogram
        should look like the histogram of the union."""
        data = np.arange(0, 30_000)
        left = hist_of(data[:10_000], 20)
        right = hist_of(data[10_000:], 20)
        merged = merge_equi_height(left, right, k=20)
        exact = hist_of(data, 20)
        # Separators within one exact bucket width of the true ones.
        gap = np.abs(merged.separators - exact.separators).max()
        assert gap <= 30_000 / 20

    def test_overlapping_partitions(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 10_000, size=20_000)
        b = rng.integers(5_000, 15_000, size=20_000)
        merged = merge_equi_height(hist_of(a, 25), hist_of(b, 25), k=25)
        union = np.sort(np.concatenate([a, b]))
        exact = EquiHeightHistogram.from_sorted_values(union, 25)
        # Bucket counts induced on the union are near-balanced.
        counted = merged.recount(union)
        ideal = union.size / 25
        assert np.abs(counted.counts - ideal).max() <= 2.5 * ideal

    def test_range_estimates_consistent(self):
        data_left = np.arange(0, 50_000)
        data_right = np.arange(50_000, 100_000)
        merged = merge_equi_height(
            hist_of(data_left, 20), hist_of(data_right, 20), k=20
        )
        est = merged.estimate_range(25_000, 75_000)
        assert est == pytest.approx(50_001, rel=0.1)

    def test_identical_partitions_double_counts(self):
        data = np.arange(1000)
        merged = merge_equi_height(hist_of(data, 10), hist_of(data, 10), k=10)
        assert merged.total == 2_000
        assert merged.estimate_range(0, 999) == pytest.approx(2_000, rel=0.05)

    def test_hot_value_eq_mass_survives(self):
        """A value hot enough to be a separator on both sides keeps its
        point mass through the merge."""
        values = np.concatenate([np.full(5_000, 500), np.arange(1_000)])
        left = hist_of(values, 10)
        right = hist_of(values, 10)
        merged = merge_equi_height(left, right, k=10)
        est = merged.estimate_range(500, 500)
        assert est == pytest.approx(2 * 5_001, rel=0.05)

    def test_invalid_k_rejected(self):
        h = hist_of(np.arange(100), 4)
        with pytest.raises(ParameterError):
            merge_equi_height(h, h, k=0)

    def test_merge_is_commutative_in_totals(self):
        a = hist_of(np.arange(0, 5_000), 8)
        b = hist_of(np.arange(2_000, 9_000), 8)
        ab = merge_equi_height(a, b, k=8)
        ba = merge_equi_height(b, a, k=8)
        assert ab.total == ba.total
        np.testing.assert_allclose(ab.separators, ba.separators, atol=1e-6)
