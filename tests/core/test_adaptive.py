"""Tests for the CVB adaptive block-sampling algorithm (Section 4)."""

import numpy as np
import pytest

from repro.core.adaptive import CVBConfig, CVBSampler, cvb_build
from repro.core.error_metrics import fractional_max_error
from repro.exceptions import ConvergenceError, ParameterError
from repro.sampling.schedule import DoublingSchedule, LinearSchedule
from repro.storage import HeapFile


def make_file(values, layout="random", b=25, rng=0):
    return HeapFile.from_values(values, layout=layout, rng=rng, blocking_factor=b)


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = CVBConfig(k=100)
        assert cfg.f == 0.1
        assert cfg.validation == "full_increment"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": 10, "f": 0.0},
            {"k": 10, "f": 1.5},
            {"k": 10, "gamma": 0.0},
            {"k": 10, "gamma": 1.0},
            {"k": 10, "validation": "bogus"},
            {"k": 10, "metric": "bogus"},
            {"k": 10, "max_sampled_fraction": 0.0},
            {"k": 10, "max_sampled_fraction": 1.5},
            {"k": 10, "min_validation_tuples": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            CVBConfig(**kwargs)


class TestConvergence:
    def test_converges_on_uniform_random_layout(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "random", b=25, rng=1)
        result = cvb_build(hf, k=20, f=0.2, rng=2)
        assert result.converged
        # The result histogram must actually be good against the full data.
        err = fractional_max_error(
            result.histogram.separators, result.sample, np.sort(values)
        )
        assert err <= 0.4  # convergence threshold plus noise allowance

    def test_samples_less_than_full_file_on_easy_data(self):
        values = np.arange(1, 100_001)
        hf = make_file(values, "random", b=50, rng=3)
        result = cvb_build(hf, k=10, f=0.25, rng=4)
        assert result.converged
        assert result.pages_sampled < hf.num_pages

    def test_sorted_layout_needs_more_sampling_than_random(self):
        values = np.arange(1, 50_001)
        random_result = cvb_build(
            make_file(values, "random", b=50, rng=5), k=20, f=0.2, rng=6
        )
        sorted_result = cvb_build(
            make_file(values, "sorted", b=50, rng=7), k=20, f=0.2, rng=8
        )
        assert sorted_result.pages_sampled >= random_result.pages_sampled

    def test_exhausting_file_marks_converged_and_exact(self):
        # Tiny file: initial Theorem 4 sample covers everything.
        values = np.arange(1, 1_001)
        hf = make_file(values, "random", b=10, rng=9)
        result = cvb_build(hf, k=5, f=0.1, rng=10)
        assert result.exhausted
        assert result.converged
        assert result.tuples_sampled == values.size
        # Exact histogram: zero error.
        err = fractional_max_error(
            result.histogram.separators, result.sample, np.sort(values)
        )
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_empty_file_rejected(self):
        hf = HeapFile(np.array([]), blocking_factor=10)
        with pytest.raises(ParameterError):
            cvb_build(hf, k=5, f=0.2, rng=0)


class TestTrace:
    def test_iteration_zero_is_initial_sample(self):
        values = np.arange(1, 20_001)
        result = cvb_build(make_file(values, rng=11), k=10, f=0.3, rng=12)
        first = result.iterations[0]
        assert first.index == 0
        assert np.isnan(first.observed_error)
        assert not first.passed

    def test_cumulative_tuples_monotone(self):
        values = np.arange(1, 20_001)
        result = cvb_build(make_file(values, rng=13), k=10, f=0.3, rng=14)
        cumulative = [it.cumulative_tuples for it in result.iterations]
        assert cumulative == sorted(cumulative)

    def test_last_iteration_passed_when_converged_without_exhaustion(self):
        values = np.arange(1, 100_001)
        result = cvb_build(
            make_file(values, "random", b=50, rng=15), k=10, f=0.25, rng=16
        )
        if not result.exhausted:
            assert result.iterations[-1].passed

    def test_sampling_rate(self):
        values = np.arange(1, 20_001)
        result = cvb_build(make_file(values, rng=17), k=10, f=0.3, rng=18)
        assert result.sampling_rate(values.size) == pytest.approx(
            result.tuples_sampled / values.size
        )
        with pytest.raises(ParameterError):
            result.sampling_rate(0)


class TestBudget:
    def test_max_sampled_fraction_caps_pages(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "sorted", b=25, rng=19)
        config = CVBConfig(k=50, f=0.05, max_sampled_fraction=0.25)
        result = CVBSampler(config).run(hf, rng=20)
        assert result.pages_sampled <= int(0.25 * hf.num_pages) + 1

    def test_run_strict_raises_when_budget_blocks_convergence(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "sorted", b=25, rng=21)
        config = CVBConfig(k=50, f=0.02, max_sampled_fraction=0.1)
        sampler = CVBSampler(config, schedule=LinearSchedule(10))
        with pytest.raises(ConvergenceError) as excinfo:
            sampler.run_strict(hf, rng=22)
        # The partial result rides along for inspection.
        assert excinfo.value.result is not None
        assert excinfo.value.result.pages_sampled > 0


class TestSchedulesAndModes:
    def test_custom_schedule_controls_increments(self):
        values = np.arange(1, 20_001)
        hf = make_file(values, rng=23)
        config = CVBConfig(k=10, f=0.3)
        result = CVBSampler(config, schedule=DoublingSchedule(8)).run(hf, rng=24)
        # First increment is exactly the schedule's initial size (8 blocks).
        assert result.iterations[0].increment_blocks == 8

    def test_one_per_block_validation_runs(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "random", b=50, rng=25)
        result = cvb_build(
            hf, k=10, f=0.3, rng=26, validation="one_per_block"
        )
        assert result.converged

    def test_fractional_metric_on_duplicated_data(self, zipf_dataset):
        hf = make_file(zipf_dataset.values, "random", b=25, rng=27)
        result = cvb_build(hf, k=20, f=0.25, rng=28, metric="fractional")
        assert result.converged
        err = fractional_max_error(
            result.histogram.separators, result.sample, zipf_dataset.values
        )
        assert np.isfinite(err)

    def test_count_metric_runs(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "random", b=50, rng=29)
        result = cvb_build(hf, k=10, f=0.3, rng=30, metric="count")
        assert result.converged

    def test_min_validation_tuples_defers_convergence(self):
        values = np.arange(1, 50_001)
        hf1 = make_file(values, "random", b=50, rng=31)
        eager = cvb_build(hf1, k=10, f=0.5, rng=32)
        hf2 = make_file(values, "random", b=50, rng=31)
        deferred = cvb_build(
            hf2, k=10, f=0.5, rng=32, min_validation_tuples=20_000
        )
        assert deferred.tuples_sampled >= eager.tuples_sampled


class TestDeterminism:
    def test_same_seed_same_result(self):
        values = np.arange(1, 30_001)
        a = cvb_build(make_file(values, rng=33), k=10, f=0.3, rng=34)
        b = cvb_build(make_file(values, rng=33), k=10, f=0.3, rng=34)
        assert a.histogram == b.histogram
        assert a.pages_sampled == b.pages_sampled

    def test_different_seed_usually_differs(self):
        values = np.arange(1, 30_001)
        a = cvb_build(make_file(values, rng=35), k=10, f=0.3, rng=36)
        b = cvb_build(make_file(values, rng=35), k=10, f=0.3, rng=37)
        assert not np.array_equal(a.sample, b.sample)


class TestDescribe:
    def test_describe_mentions_rounds_and_verdicts(self):
        values = np.arange(1, 30_001)
        result = cvb_build(make_file(values, rng=40), k=10, f=0.3, rng=41)
        text = result.describe()
        assert "round 0: initial sample" in text
        assert "CVB run:" in text
        if result.converged and not result.exhausted:
            assert "[PASS]" in text


class TestEdgeCases:
    def test_blocking_factor_one_degenerates_to_record_sampling(self):
        values = np.arange(1, 5_001)
        hf = make_file(values, "random", b=1, rng=50)
        result = cvb_build(hf, k=5, f=0.3, rng=51)
        assert result.converged
        assert result.pages_sampled == result.tuples_sampled

    def test_short_last_page_counted_correctly(self):
        values = np.arange(1, 10_008)  # 10,007 tuples: last page holds 7
        hf = make_file(values, "random", b=100, rng=52)
        result = cvb_build(hf, k=5, f=0.3, rng=53)
        assert result.tuples_sampled <= values.size
        if result.exhausted:
            assert result.tuples_sampled == values.size

    def test_k_larger_than_initial_sample(self):
        """More buckets than early sample tuples: separators repeat, the
        algorithm keeps sampling rather than crashing."""
        values = np.arange(1, 20_001)
        hf = make_file(values, "random", b=200, rng=54)
        result = cvb_build(hf, k=500, f=0.5, rng=55)
        assert result.histogram.k == 500

    def test_single_page_file(self):
        values = np.arange(1, 11)
        hf = make_file(values, "random", b=100, rng=56)
        result = cvb_build(hf, k=3, f=0.5, rng=57)
        assert result.exhausted
        assert result.converged
        assert result.tuples_sampled == 10

    def test_constant_column(self):
        values = np.full(5_000, 42)
        hf = make_file(values, "random", b=50, rng=58)
        result = cvb_build(hf, k=10, f=0.3, rng=59)
        assert result.converged
        assert result.histogram.estimate_range(42, 42) == pytest.approx(
            result.tuples_sampled, rel=0.01
        )


class TestRefine:
    def test_refine_reuses_previous_pages(self):
        values = np.arange(1, 100_001)
        hf = make_file(values, "random", b=50, rng=60)
        coarse = CVBSampler(CVBConfig(k=10, f=0.4)).run(hf, rng=61)
        assert coarse.converged
        hf.iostats.reset()

        fine = CVBSampler(CVBConfig(k=10, f=0.15)).refine(hf, coarse, rng=62)
        assert fine.converged
        # The refined run reports the union of pages...
        assert fine.pages_sampled >= coarse.pages_sampled
        # ...but only paid for the fresh ones.
        fresh = fine.pages_sampled - coarse.pages_sampled
        assert hf.iostats.page_reads == fresh

    def test_refined_pages_disjoint_from_previous(self):
        values = np.arange(1, 50_001)
        hf = make_file(values, "random", b=25, rng=63)
        coarse = CVBSampler(CVBConfig(k=10, f=0.4)).run(hf, rng=64)
        fine = CVBSampler(CVBConfig(k=10, f=0.2)).refine(hf, coarse, rng=65)
        previous = set(coarse.sampled_pages.tolist())
        fresh = set(fine.sampled_pages.tolist()) - previous
        assert previous <= set(fine.sampled_pages.tolist())
        assert len(fresh) == fine.pages_sampled - coarse.pages_sampled

    def test_refine_improves_error(self):
        from repro.core.error_metrics import fractional_max_error

        values = np.arange(1, 100_001)
        data = np.sort(values)
        hf = make_file(values, "random", b=50, rng=66)
        coarse = CVBSampler(CVBConfig(k=20, f=0.5)).run(hf, rng=67)
        fine = CVBSampler(CVBConfig(k=20, f=0.15)).refine(hf, coarse, rng=68)
        err_coarse = fractional_max_error(
            coarse.histogram.separators, coarse.sample, data
        )
        err_fine = fractional_max_error(
            fine.histogram.separators, fine.sample, data
        )
        assert err_fine <= err_coarse + 0.02

    def test_refine_to_exhaustion_is_exact(self):
        values = np.arange(1, 5_001)
        hf = make_file(values, "random", b=10, rng=69)
        coarse = CVBSampler(CVBConfig(k=5, f=0.5)).run(hf, rng=70)
        # Demand an impossible error: refine should scan the remainder.
        fine = CVBSampler(CVBConfig(k=5, f=0.01)).refine(hf, coarse, rng=71)
        assert fine.exhausted
        assert fine.tuples_sampled == values.size

    def test_refine_without_page_ids_rejected(self):
        values = np.arange(1, 10_001)
        hf = make_file(values, "random", b=25, rng=72)
        result = cvb_build(hf, k=5, f=0.4, rng=73)
        result.sampled_pages = None
        with pytest.raises(ParameterError):
            CVBSampler(CVBConfig(k=5, f=0.2)).refine(hf, result, rng=74)

    def test_sampled_pages_recorded_on_plain_run(self):
        values = np.arange(1, 20_001)
        hf = make_file(values, "random", b=25, rng=75)
        result = cvb_build(hf, k=10, f=0.3, rng=76)
        assert result.sampled_pages is not None
        assert result.sampled_pages.size == result.pages_sampled
        assert np.unique(result.sampled_pages).size == result.pages_sampled
