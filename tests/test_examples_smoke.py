"""Smoke tests: every example script runs clean and prints its takeaway.

Examples are documentation; documentation that crashes is worse than none.
Each runs as a real subprocess (the way a reader would run it) with a
generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: (script, a string its output must contain)
EXAMPLES = [
    ("quickstart.py", "achieved max error"),
    ("sample_size_planner.py", "How much sampling"),
    ("selectivity_estimation.py", "takeaway"),
    ("adaptive_block_sampling.py", "takeaway"),
    ("distinct_value_estimation.py", "rel-error"),
    ("optimizer_pipeline.py", "optimizer picks"),
    ("histogram_structures.py", "takeaway"),
]


@pytest.mark.parametrize("script,marker", EXAMPLES)
def test_example_runs(script, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_reproduce_paper_micro():
    """The figure-regeneration script at its smallest scale."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "reproduce_paper.py"), "small", "2"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "all figures regenerated" in result.stdout
    # Every figure block is present.
    for token in ("Figure 3", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
        assert token in result.stdout
