"""Statistical validation of the paper's theorems at test scale.

These are the "does the math actually hold on data" tests: Monte-Carlo
checks that the prescribed sample sizes deliver the promised deviations,
that the cross-validation test separates good from bad histograms
(Theorem 7), and that the Theorem 8 adversary defeats every estimator.
Each uses small sizes and fixed seeds to stay fast and deterministic.
"""

import numpy as np
import pytest

from repro.core import bounds
from repro.core.error_metrics import max_error, relative_deviation
from repro.core.histogram import EquiHeightHistogram
from repro.distinct.bounds import adversarial_pair, forced_ratio_error
from repro.distinct.estimators import ALL_ESTIMATORS
from repro.sampling.record_sampler import sample_with_replacement


class TestTheorem4Empirically:
    def test_prescribed_sample_is_delta_deviant(self):
        """At the Theorem 4 sample size the histogram is δ-deviant in every
        trial (the bound is conservative, so zero failures expected)."""
        n, k, f, gamma = 50_000, 10, 0.5, 0.1
        data = np.arange(n)
        delta = f * n / k
        r = min(n, bounds.theorem4_sample_size(n, k, delta, gamma))
        failures = 0
        for seed in range(10):
            sample = sample_with_replacement(data, r, seed)
            approx = EquiHeightHistogram.from_values(sample, k)
            counted = approx.recount(data)
            if max_error(counted.counts) > delta:
                failures += 1
        assert failures == 0

    def test_error_shrinks_like_inverse_sqrt_r(self):
        """Quadrupling the sample should roughly halve the measured error."""
        n, k = 100_000, 20
        data = np.arange(n)
        errors = {}
        for r in (1_000, 16_000):
            trial_errors = []
            for seed in range(8):
                sample = sample_with_replacement(data, r, seed)
                approx = EquiHeightHistogram.from_values(sample, k)
                trial_errors.append(max_error(approx.recount(data).counts))
            errors[r] = np.mean(trial_errors)
        ratio = errors[1_000] / errors[16_000]
        assert 2.0 <= ratio <= 8.0  # ideal 4, generous noise band


class TestTheorem7Empirically:
    def _data(self, n=100_000):
        return np.arange(n)

    def test_bad_histogram_flagged(self):
        """A histogram with deviation 2f*n/k fails the δ_S < f*s/k test in
        nearly every trial (Theorem 7 part 1)."""
        n, k, f = 100_000, 10, 0.2
        data = self._data(n)
        # Construct a bad histogram: shift one separator to create a bucket
        # of size n/k + 2f*n/k.
        perfect = EquiHeightHistogram.from_sorted_values(data, k)
        seps = perfect.separators.copy()
        seps[0] = seps[0] + 2 * f * n / k  # bucket 0 grows by 2f*n/k values
        bad = EquiHeightHistogram.from_separators(seps, data)
        s = bounds.theorem7_reject_sample_size(k, f, gamma=0.1)
        flagged = 0
        for seed in range(10):
            sample = sample_with_replacement(data, s, seed)
            if relative_deviation(bad, sample) >= f * s / k:
                flagged += 1
        assert flagged >= 9

    def test_good_histogram_passes(self):
        """A histogram with deviation <= f*n/(2k) passes the test in nearly
        every trial (Theorem 7 part 2)."""
        n, k, f = 100_000, 10, 0.2
        data = self._data(n)
        perfect = EquiHeightHistogram.from_sorted_values(data, k)
        s = bounds.theorem7_accept_sample_size(k, f, gamma=0.1)
        s = min(s, n)
        passed = 0
        for seed in range(10):
            sample = sample_with_replacement(data, s, seed)
            if relative_deviation(perfect, sample) < f * s / k:
                passed += 1
        assert passed >= 9


class TestTheorem8Empirically:
    def test_every_estimator_defeated_by_the_adversary(self):
        """No estimator in the library beats the indistinguishability bound
        on the adversarial pair — the executable content of Theorem 8."""
        n, r, gamma = 50_000, 30, 0.5
        pair = adversarial_pair(n, r, gamma)
        floor = 0.25 * pair.guaranteed_ratio
        for estimator in ALL_ESTIMATORS:
            errors = [
                forced_ratio_error(pair, estimator, rng=seed)
                for seed in range(8)
            ]
            assert np.median(errors) >= floor, estimator.name

    def test_bound_scales_with_sample_size(self):
        """Larger samples genuinely shrink the forced error (the sqrt(n/r)
        law), so the lower bound is about sampling, not a fixed wall."""
        n, gamma = 50_000, 0.5
        small = adversarial_pair(n, 20, gamma).guaranteed_ratio
        large = adversarial_pair(n, 200, gamma).guaranteed_ratio
        assert large < small
        theory_small = bounds.theorem8_error_lower_bound(n, 20, gamma)
        theory_large = bounds.theorem8_error_lower_bound(n, 200, gamma)
        assert theory_large < theory_small


class TestDistributionIndependence:
    @pytest.mark.parametrize("dataset_name", ["zipf0", "zipf2", "zipf4"])
    def test_same_sample_size_similar_error_across_skew(self, dataset_name):
        """Corollary 1 is distribution-free: a fixed sample size yields
        comparable fractional error regardless of skew (Figure 5's point),
        measured with the duplicate-safe metric."""
        from repro.core.error_metrics import fractional_max_error
        from repro.workloads import make_dataset

        dataset = make_dataset(dataset_name, 50_000, rng=0)
        data = dataset.values
        errors = []
        for seed in range(5):
            sample = np.sort(sample_with_replacement(data, 10_000, seed))
            hist = EquiHeightHistogram.from_sorted_values(sample, 20)
            errors.append(
                fractional_max_error(hist.separators, sample, data)
            )
        assert np.mean(errors) < 0.25
