"""Lifecycle integration: build -> persist -> reload -> refine -> refresh.

Exercises the catalog operations a long-lived deployment performs, across
module boundaries: CVB builds, JSON persistence, coarse-to-fine refinement,
and policy-driven refresh, all against the storage simulator.
"""

import numpy as np
import pytest

from repro.core.adaptive import CVBConfig, CVBSampler
from repro.core.error_metrics import fractional_max_error
from repro.engine import (
    AutoStatistics,
    RefreshPolicy,
    StatisticsManager,
    Table,
)
from repro.engine.serialization import (
    dump_catalog,
    load_catalog,
    statistics_from_json,
    statistics_to_json,
)
from repro.workloads import make_dataset


class TestLifecycle:
    def test_persist_reload_estimate(self):
        """Statistics survive a round trip to JSON and answer the same."""
        dataset = make_dataset("zipf1", 50_000, rng=0)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=40, f=0.2, rng=1)

        reloaded = statistics_from_json(statistics_to_json(stats))
        for lo, hi in [(5, 100), (200, 450), (1, 500)]:
            assert reloaded.estimate_range(lo, hi) == pytest.approx(
                stats.estimate_range(lo, hi)
            )

    def test_coarse_build_then_refine_cheaper_than_rebuild(self):
        """Refining a coarse run to a tight target reads fewer fresh pages
        than building the tight histogram from scratch."""
        dataset = make_dataset("zipf0", 100_000, rng=2)
        values = dataset.values

        def heapfile():
            from repro.storage import HeapFile

            return HeapFile.from_values(
                values, layout="random", rng=3, blocking_factor=50
            )

        coarse_hf = heapfile()
        coarse = CVBSampler(CVBConfig(k=25, f=0.25)).run(coarse_hf, rng=4)
        coarse_hf.iostats.reset()
        refined = CVBSampler(CVBConfig(k=25, f=0.15)).refine(
            coarse_hf, coarse, rng=5
        )
        fresh_pages = coarse_hf.iostats.page_reads

        scratch_hf = heapfile()
        scratch = CVBSampler(CVBConfig(k=25, f=0.15)).run(scratch_hf, rng=5)

        assert refined.converged and scratch.converged
        assert fresh_pages < scratch.pages_sampled
        err = fractional_max_error(
            refined.histogram.separators, refined.sample, values
        )
        assert err < 0.3

    def test_catalog_survives_dump_and_refresh_cycle(self):
        """Dump a multi-column catalog, reload it into a new manager, keep
        refreshing with the auto policy."""
        rng = np.random.default_rng(6)
        table = Table(
            "orders",
            {
                "qty": rng.integers(0, 500, size=30_000),
                "amount": rng.lognormal(3, 1, size=30_000),
            },
        )
        auto = AutoStatistics(policy=RefreshPolicy(fraction=0.1))
        auto.analyze(table, "qty", k=20, f=0.25, rng=7)
        auto.analyze(table, "amount", k=20, f=0.25, rng=8)

        # Ship the catalog elsewhere.
        restored = load_catalog(dump_catalog(auto.manager.catalog))
        assert restored.keys() == [("orders", "amount"), ("orders", "qty")]

        # Meanwhile the original keeps serving refreshes.
        auto.record_modifications("orders", "qty", 10_000)
        refreshed = auto.ensure_fresh(table, "qty", rng=9)
        assert auto.refresh_count == 1
        assert refreshed.n == 30_000

    def test_all_columns_pipeline(self):
        """analyze_all + catalog + range answers on every column."""
        rng = np.random.default_rng(10)
        table = Table(
            "t",
            {
                "a": rng.integers(0, 1_000, size=20_000),
                "b": rng.normal(50, 10, size=20_000),
                "c": np.repeat(np.arange(200), 100),
            },
        )
        manager = StatisticsManager()
        results = manager.analyze_all(table, k=20, f=0.25, rng=11)
        assert len(results) == 3
        for name in ("a", "b", "c"):
            column = table.column(name).sorted_values()
            lo, hi = float(np.quantile(column, 0.2)), float(
                np.quantile(column, 0.7)
            )
            truth = int(((column >= lo) & (column <= hi)).sum())
            est = manager.estimate_range("t", name, lo, hi)
            assert est == pytest.approx(truth, rel=0.25), name
