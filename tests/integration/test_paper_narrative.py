"""The paper, section by section, as executable assertions.

Each test walks one section's central claim end-to-end on small data —
a table of contents for the reproduction, and a regression net across
module boundaries.
"""

import numpy as np
import pytest

from repro.core import bounds
from repro.core.adaptive import CVBConfig, CVBSampler
from repro.core.error_metrics import (
    avg_error,
    fractional_max_error,
    max_error,
    max_error_fraction,
)
from repro.core.histogram import EquiHeightHistogram
from repro.distinct.bounds import adversarial_pair, forced_ratio_error
from repro.distinct.estimators import GEEEstimator, NaiveEstimator
from repro.distinct.metrics import ratio_error, rel_error
from repro.sampling.record_sampler import sample_with_replacement
from repro.storage import HeapFile
from repro.workloads import make_dataset


class TestSection2_ErrorMetric:
    def test_small_average_error_can_hide_a_big_bucket(self):
        """Section 2.2's critique: Δavg small, one bucket badly wrong."""
        counts = np.full(100, 1000)
        counts[50] += 5_000
        counts[:50] -= 100  # drain to keep things comparable
        assert avg_error(counts) < 0.11 * counts.mean()
        assert max_error(counts) > 4 * avg_error(counts)

    def test_max_metric_is_the_conservative_one(self):
        """Definition 1 / Theorem 2: bounding Δmax bounds everything."""
        rng = np.random.default_rng(0)
        counts = rng.integers(500, 1500, size=64)
        assert avg_error(counts) <= max_error(counts)


class TestSection3_RecordLevelBounds:
    def test_corollary1_sample_works_on_any_distribution(self):
        """The bound is distribution-free: the same r handles uniform and
        heavily skewed data at the same k and f."""
        n, k, f = 100_000, 20, 0.3
        r = min(n, bounds.corollary1_sample_size(n, k, f, 0.05))
        for name in ("zipf0", "zipf4"):
            dataset = make_dataset(name, n, rng=1)
            sample = sample_with_replacement(dataset.values, r, 2)
            hist = EquiHeightHistogram.from_values(sample, k)
            achieved = fractional_max_error(
                hist.separators, np.sort(sample), dataset.values
            )
            assert achieved <= f, name

    def test_sample_size_flat_in_n(self):
        r_small = bounds.corollary1_sample_size(10**6, 100, 0.1, 0.01)
        r_huge = bounds.corollary1_sample_size(10**12, 100, 0.1, 0.01)
        assert r_huge < 2 * r_small


class TestSection4_BlockLevelAdaptivity:
    def test_cvb_cost_tracks_page_information_content(self):
        """Scenario (a) vs (b): the same tuples cost more pages to
        summarise when pages are internally correlated."""
        dataset = make_dataset("zipf0", 60_000, rng=3)
        costs = {}
        for layout in ("random", "sorted"):
            hf = HeapFile.from_values(
                dataset.values, layout=layout, rng=4, blocking_factor=50
            )
            result = CVBSampler(CVBConfig(k=20, f=0.25)).run(hf, rng=5)
            costs[layout] = result.pages_sampled
        assert costs["sorted"] > costs["random"]


class TestSection5_Duplicates:
    def test_count_metric_breaks_fractional_metric_survives(self):
        """With one value above n/k, the count-form fraction is stuck high
        no matter the sample, while f' correctly reports a good histogram."""
        dataset = make_dataset("zipf2", 50_000, rng=6)
        hist = EquiHeightHistogram.from_sorted_values(dataset.values, 50)
        count_form = max_error_fraction(hist.counts)
        fractional = fractional_max_error(
            hist.separators, dataset.values, dataset.values
        )
        assert count_form > 1.0  # hot value alone overflows a bucket
        assert fractional == pytest.approx(0.0, abs=1e-12)


class TestSection6_DistinctValues:
    def test_the_negative_result_and_the_positive_one(self):
        """Theorem 8 forbids reliable ratio error; GEE achieves the optimal
        worst case; rel-error remains informative regardless."""
        n, r = 50_000, 40
        pair = adversarial_pair(n, r, gamma=0.5)
        gee, naive = GEEEstimator(), NaiveEstimator()
        gee_err = np.median(
            [forced_ratio_error(pair, gee, rng=s) for s in range(8)]
        )
        naive_err = np.median(
            [forced_ratio_error(pair, naive, rng=s) for s in range(8)]
        )
        # Nobody escapes, but GEE's forced error is the smaller.
        assert gee_err >= 0.25 * pair.guaranteed_ratio
        assert gee_err <= naive_err

        # The weaker metric stays usable: even a 10x-off estimate yields a
        # tiny rel-error when d << n (the paper's closing example).
        assert ratio_error(5_000, 500) == 10
        assert rel_error(5_000, 500, 100_000) == pytest.approx(0.045)
