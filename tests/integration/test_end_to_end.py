"""Integration tests: the full ANALYZE -> estimate pipeline across modules."""

import numpy as np
import pytest

from repro import (
    EquiHeightHistogram,
    GEEEstimator,
    StatisticsManager,
    Table,
    make_dataset,
)
from repro.core.error_metrics import fractional_max_error
from repro.engine.selectivity import RangeSelectivityEstimator, evaluate_workload
from repro.workloads.queries import random_range_queries


class TestAnalyzePipeline:
    @pytest.mark.parametrize("dataset_name", ["zipf0", "zipf2", "unif_dup"])
    def test_cvb_statistics_usable_for_estimation(self, dataset_name):
        """Build stats with CVB over the storage simulator, then answer a
        query workload with bounded error — the full product path."""
        dataset = make_dataset(dataset_name, 50_000, rng=0)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=50, f=0.2, rng=1)
        assert stats.converged

        queries = random_range_queries(dataset.values, 100, rng=2)
        accuracy = evaluate_workload(
            stats.estimator(), dataset.values, queries
        )
        # Theorem 3 envelope with room for interpolation inside buckets on
        # skewed data: a couple of ideal bucket widths.
        n, k = dataset.n, stats.histogram.k
        assert accuracy.max_absolute_error <= 6 * n / k

    def test_multiple_columns_and_refresh(self):
        rng = np.random.default_rng(3)
        table = Table(
            "orders",
            {
                "qty": rng.integers(0, 1000, size=30_000),
                "price": rng.normal(100, 15, size=30_000),
            },
        )
        manager = StatisticsManager()
        manager.analyze(table, "qty", k=20, f=0.25, rng=4)
        manager.analyze(table, "price", k=20, f=0.25, rng=5)
        assert len(manager.catalog) == 2
        manager.analyze(table, "qty", k=40, f=0.25, rng=6)
        assert manager.catalog.version("orders", "qty") == 2
        assert manager.statistics("orders", "qty").histogram.k == 40

    def test_distinct_estimate_quality_zipf(self):
        """Figures 9/11 in miniature: GEE tracks the true distinct count of
        a Zipf column from a modest block sample."""
        dataset = make_dataset("zipf2", 100_000, rng=7)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager(distinct_estimator=GEEEstimator())
        stats = manager.analyze(table, "x", k=50, f=0.15, rng=8)
        rel = abs(dataset.num_distinct - stats.distinct_estimate) / dataset.n
        assert rel < 0.02  # the paper's rel-error metric stays tiny

    def test_custom_layout_via_heapfile(self):
        dataset = make_dataset("zipf2", 30_000, rng=9)
        table = Table("t", {"x": dataset.values})
        hf = table.to_heapfile("x", layout="partial", rng=10, blocking_factor=50)
        manager = StatisticsManager()
        stats = manager.analyze(table, "x", k=20, f=0.25, heapfile=hf, rng=11)
        assert stats.pages_read <= hf.num_pages


class TestSamplingVsFullscanAgreement:
    def test_sampled_histogram_close_to_perfect(self):
        dataset = make_dataset("zipf0", 80_000, rng=12)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager()
        sampled = manager.analyze(table, "x", k=25, f=0.1, rng=13)
        perfect = EquiHeightHistogram.from_sorted_values(dataset.values, 25)

        err = fractional_max_error(
            sampled.histogram.separators, sampled.sample, dataset.values
        )
        assert err < 0.3
        # Separators land close to the perfect ones in quantile terms.
        perfect_cdf = np.searchsorted(
            dataset.values, sampled.histogram.separators, side="right"
        ) / dataset.n
        targets = np.arange(1, 25) / 25
        assert np.abs(perfect_cdf - targets).max() < 0.05

    def test_record_and_block_methods_agree_statistically(self):
        dataset = make_dataset("zipf0", 50_000, rng=14)
        table = Table("t", {"x": dataset.values})
        manager = StatisticsManager()
        record = manager.analyze(
            table, "x", k=20, method="record", record_sample_size=10_000, rng=15
        )
        block = manager.analyze(table, "x", k=20, f=0.15, rng=16)
        for stats in (record, block):
            err = fractional_max_error(
                stats.histogram.separators, stats.sample, dataset.values
            )
            assert err < 0.3


class TestIOAccountingEndToEnd:
    def test_block_sampling_is_cheaper_than_record_sampling(self):
        """The Section 4 motivation, measured end to end in page reads."""
        dataset = make_dataset("zipf0", 50_000, rng=17)
        table = Table("t", {"x": dataset.values})

        hf_record = table.to_heapfile("x", layout="random", rng=18,
                                      blocking_factor=100)
        manager = StatisticsManager()
        record = manager.analyze(
            table, "x", k=20, method="record",
            record_sample_size=10_000, heapfile=hf_record, rng=19,
        )

        hf_block = table.to_heapfile("x", layout="random", rng=18,
                                     blocking_factor=100)
        block = manager.analyze(
            table, "x", k=20, f=0.15, heapfile=hf_block, rng=20
        )
        assert block.pages_read < record.pages_read
