"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestPlan:
    def test_solve_for_r(self, capsys):
        code = main(["plan", "--n", "10000000", "--k", "600", "--f", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "required sample size" in out

    def test_solve_for_f(self, capsys):
        code = main(["plan", "--n", "10000000", "--k", "200", "--r", "800000"])
        assert code == 0
        assert "max error fraction" in capsys.readouterr().out

    def test_solve_for_k(self, capsys):
        code = main(
            ["plan", "--n", "20000000", "--r", "1000000", "--f", "0.25"]
        )
        assert code == 0
        assert "buckets" in capsys.readouterr().out

    def test_wrong_arity_rejected(self, capsys):
        code = main(["plan", "--n", "1000", "--k", "10"])
        assert code == 2
        assert "exactly two" in capsys.readouterr().err

    def test_all_three_rejected(self, capsys):
        code = main(
            ["plan", "--n", "1000", "--k", "10", "--f", "0.2", "--r", "100"]
        )
        assert code == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(["demo", "zipf2", "--n", "20000", "--k", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "zipf2" in out
        assert "true distinct" in out

    def test_demo_default_dataset(self, capsys):
        code = main(["demo", "--n", "10000", "--k", "10"])
        assert code == 0

    def test_demo_layout_option(self, capsys):
        code = main(
            ["demo", "zipf0", "--n", "10000", "--k", "10", "--layout", "sorted"]
        )
        assert code == 0


class TestAnalyze:
    def test_npy_file(self, tmp_path, capsys):
        path = tmp_path / "values.npy"
        np.save(path, np.arange(20_000))
        code = main(["analyze", str(path), "--k", "20", "--f", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=20,000" in out
        assert "converged" in out

    def test_csv_column_selection(self, tmp_path, capsys):
        path = tmp_path / "table.csv"
        rows = np.column_stack([np.arange(5000), np.arange(5000) * 2])
        np.savetxt(path, rows, delimiter=",")
        code = main(
            ["analyze", str(path), "--column", "1", "--k", "10", "--f", "0.3"]
        )
        assert code == 0
        assert "n=5,000" in capsys.readouterr().out

    def test_show_buckets(self, tmp_path, capsys):
        path = tmp_path / "values.npy"
        np.save(path, np.arange(10_000))
        code = main(
            ["analyze", str(path), "--k", "10", "--f", "0.3",
             "--show-buckets", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bucket   0" in out

    def test_missing_file_is_clean_error(self, capsys):
        code = main(["analyze", "/nonexistent/file.npy"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_column_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "table.csv"
        np.savetxt(path, np.arange(100).reshape(-1, 1), delimiter=",")
        code = main(["analyze", str(path), "--column", "5"])
        assert code == 1
        assert "column 5" in capsys.readouterr().err

    def test_fullscan_method(self, tmp_path, capsys):
        path = tmp_path / "values.npy"
        np.save(path, np.arange(5_000))
        code = main(
            ["analyze", str(path), "--method", "fullscan", "--k", "10"]
        )
        assert code == 0
        assert "method=fullscan" in capsys.readouterr().out


FIGURE_SMALL = [
    "figure", "5", "--n", "20000", "--k", "10",
    "--trials", "2", "--rates", "0.05,0.2",
]


class TestFigure:
    def test_figure_runs_and_prints_series(self, capsys):
        code = main(FIGURE_SMALL + ["--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "sampling_rate" in out
        assert "Z=2" in out

    def test_workers_do_not_change_the_numbers(self, capsys):
        """--workers 2 must reproduce --workers 1 bit-for-bit."""
        assert main(FIGURE_SMALL + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(FIGURE_SMALL + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_chunk_size_does_not_change_the_numbers(self, capsys):
        assert main(FIGURE_SMALL + ["--workers", "2"]) == 0
        auto_out = capsys.readouterr().out
        assert main(FIGURE_SMALL + ["--workers", "2", "--chunk-size", "1"]) == 0
        chunked_out = capsys.readouterr().out
        assert chunked_out == auto_out

    def test_zero_workers_is_clean_error(self, capsys):
        code = main(FIGURE_SMALL + ["--workers", "0"])
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_negative_workers_is_clean_error(self, capsys):
        code = main(FIGURE_SMALL + ["--workers", "-2"])
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_negative_chunk_size_is_clean_error(self, capsys):
        code = main(FIGURE_SMALL + ["--chunk-size", "-1"])
        assert code == 2
        assert "--chunk-size must be >= 1" in capsys.readouterr().err

    def test_out_file_written(self, tmp_path, capsys):
        out_path = tmp_path / "fig5.txt"
        code = main(FIGURE_SMALL + ["--out", str(out_path)])
        assert code == 0
        assert out_path.exists()
        assert "Figure 5" in out_path.read_text()

    def test_distinct_value_figure(self, capsys):
        code = main(
            ["figure", "9", "--n", "20000", "--k", "10", "--trials", "2",
             "--rates", "0.05,0.2", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "numDVEst" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "mystery"])


class TestSaveAndEstimate:
    def test_roundtrip_through_files(self, tmp_path, capsys):
        values_path = tmp_path / "values.npy"
        np.save(values_path, np.arange(20_000))
        stats_path = tmp_path / "stats.json"
        assert (
            main(
                ["analyze", str(values_path), "--k", "20", "--f", "0.3",
                 "--save", str(stats_path)]
            )
            == 0
        )
        assert stats_path.exists()
        capsys.readouterr()

        code = main(
            ["estimate", str(stats_path), "--range", "0", "9999",
             "--distinct"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows with 0 <= value <= 9999" in out
        assert "distinct values" in out

    def test_estimate_equals(self, tmp_path, capsys):
        values_path = tmp_path / "values.npy"
        np.save(values_path, np.repeat(np.arange(1000), 10))
        stats_path = tmp_path / "stats.json"
        main(["analyze", str(values_path), "--k", "10", "--f", "0.3",
              "--save", str(stats_path)])
        capsys.readouterr()
        assert main(["estimate", str(stats_path), "--equals", "500"]) == 0
        assert "value = 500" in capsys.readouterr().out

    def test_estimate_without_query_hints(self, tmp_path, capsys):
        values_path = tmp_path / "values.npy"
        np.save(values_path, np.arange(5_000))
        stats_path = tmp_path / "stats.json"
        main(["analyze", str(values_path), "--k", "10", "--f", "0.3",
              "--save", str(stats_path)])
        capsys.readouterr()
        assert main(["estimate", str(stats_path)]) == 0
        assert "no query given" in capsys.readouterr().out

    def test_estimate_missing_file(self, capsys):
        assert main(["estimate", "/nonexistent/stats.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestChaos:
    CHAOS_ARGS = [
        "chaos", "--fault-rate", "0,0.1", "--n", "8000", "--k", "10",
        "--f", "0.25", "--trials", "2", "--blocking-factor", "25",
        "--seed", "7",
    ]

    def test_chaos_runs_and_reports(self, capsys):
        code = main(self.CHAOS_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "fault_rate" in out
        assert "2f_bound" in out

    def test_chaos_deterministic_across_workers(self, capsys):
        assert main(self.CHAOS_ARGS) == 0
        serial = capsys.readouterr().out
        assert main(self.CHAOS_ARGS + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_chaos_writes_out_file(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.txt"
        code = main(self.CHAOS_ARGS + ["--out", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert out_path.read_text().strip() in captured.out
        assert "report written" in captured.err

    def test_chaos_rejects_bad_rate(self, capsys):
        code = main(["chaos", "--fault-rate", "0,1.5", "--n", "2000"])
        assert code == 2
        assert "fault rates must be in [0, 1)" in capsys.readouterr().err

    def test_chaos_rejects_bad_workers(self, capsys):
        code = main(["chaos", "--workers", "0", "--n", "2000"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_chaos_rate_list_parse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--fault-rate", "a,b"])


class TestMetricsWrapper:
    PLAN = ["plan", "--n", "100000", "--k", "50", "--f", "0.2"]

    def test_propagates_wrapped_exit_code(self, capsys):
        # plan with the wrong arity returns 2; the wrapper must not mask it.
        code = main(["metrics", "plan", "--n", "1000", "--k", "10"])
        assert code == 2
        captured = capsys.readouterr()
        assert "exactly two of" in captured.err

    def test_out_to_missing_dir_creates_it(self, tmp_path, capsys):
        # The dump goes through the atomic write helper, which creates
        # missing parent directories rather than erroring.
        missing = tmp_path / "no" / "such" / "dir" / "m.txt"
        code = main(["metrics", "--out", str(missing)] + self.PLAN)
        assert code == 0
        assert missing.exists()
        assert "Traceback" not in capsys.readouterr().err

    def test_empty_registry_text_dump(self, capsys):
        # plan is pure arithmetic: it emits no metrics, and the wrapper
        # still succeeds with an empty dump rather than erroring.
        code = main(["metrics"] + self.PLAN)
        assert code == 0
        assert capsys.readouterr().out.endswith("\n")

    def test_empty_registry_json_dump(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(
            ["metrics", "--format", "json", "--out", str(out)] + self.PLAN
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["metrics"] == []
        assert document["schema_version"] == 1


class TestBench:
    BENCH = [
        "bench", "--scale", "smoke", "--repeats", "1", "--warmup", "0",
    ]
    SUBSET = ["--scenario", "merge_equi_height", "--scenario", "distinct_gee"]

    def test_list_names_every_scenario(self, capsys):
        from repro.obs import bench

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in bench.SCENARIOS:
            assert name in out

    def test_subset_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(self.BENCH + self.SUBSET + ["--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "merge_equi_height" in captured.out
        report = json.loads(out.read_text())
        assert report["schema_version"] == 1
        assert sorted(report["scenarios"]) == [
            "distinct_gee", "merge_equi_height",
        ]

    def test_compare_fails_on_doctored_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        args = self.BENCH + self.SUBSET + ["--out", str(out)]
        assert main(args) == 0
        baseline = json.loads(out.read_text())
        logical = baseline["scenarios"]["merge_equi_height"]["logical"]
        logical["result"]["page_reads"] = (
            logical["result"].get("page_reads", 0) + 999
        )
        doctored = tmp_path / "baseline.json"
        doctored.write_text(json.dumps(baseline))
        capsys.readouterr()
        code = main(args + ["--compare", str(doctored)])
        assert code == 3
        assert "regression" in capsys.readouterr().err

    def test_compare_passes_against_own_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        args = self.BENCH + self.SUBSET + ["--out", str(out)]
        assert main(args) == 0
        code = main(args + ["--compare", str(out)])
        assert code == 0
        assert "comparison passed" in capsys.readouterr().err

    def test_update_baseline_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "bench.json"
        code = main(
            self.BENCH + self.SUBSET
            + ["--out", str(out), "--update-baseline"]
        )
        assert code == 0
        assert (tmp_path / "benchmarks" / "baseline.json").exists()

    def test_rejects_bad_repeats(self, capsys):
        assert main(["bench", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err

    def test_rejects_bad_wall_tolerance(self, capsys):
        assert main(["bench", "--wall-tolerance", "0"]) == 2
        assert "--wall-tolerance" in capsys.readouterr().err

    def test_unknown_scenario_is_clean_error(self, capsys):
        code = main(["bench", "--scenario", "nope", "--scale", "smoke"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestLint:
    FIXTURES = str(
        __import__("pathlib").Path(__file__).parent / "lint" / "fixtures"
    )

    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "lint OK" in capsys.readouterr().out

    def test_fixture_repo_exits_one(self, capsys):
        assert main(["lint", "--root", self.FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "finding(s)" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "OBS001", "EXC001", "FLT001", "DOC002"):
            assert rule_id in out

    def test_json_format_is_parseable(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "lint"
        assert doc["counts"]["total"] == 0

    def test_rules_subset_selection(self, capsys):
        code = main(
            ["lint", "--root", self.FIXTURES, "--rules", "DET001"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "DET002" not in out

    def test_unknown_rule_is_clean_error(self, capsys):
        assert main(["lint", "--rules", "NOPE123"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        code = main(
            ["lint", "--root", self.FIXTURES,
             "--write-baseline", str(baseline)]
        )
        assert code == 0
        assert baseline.exists()
        code = main(
            ["lint", "--root", self.FIXTURES, "--baseline", str(baseline)]
        )
        assert code == 0
        capsys.readouterr()

    def test_out_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "lint.json"
        code = main(["lint", "--format", "json", "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["counts"]["total"] == 0
        assert "lint report written" in capsys.readouterr().err
