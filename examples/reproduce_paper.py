#!/usr/bin/env python
"""Reproduce every figure of the paper in one run.

Regenerates the data series behind Figures 3-12 at a chosen scale and
prints them as tables next to the paper's expectation.  This is the
human-driven twin of the benchmark suite (`pytest benchmarks/
--benchmark-only` adds timing and shape assertions on top of the same
series builders).

Run:  python examples/reproduce_paper.py [small|medium|paper] [seed]

At `small` (default, n = 200k) the whole sweep takes well under a minute;
`paper` (n = 10M, k = 600) reproduces the original testbed scale and takes
correspondingly longer.
"""

import sys
import time

from repro.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_10,
    figure11_12,
    figures_3_and_4,
    format_series,
    get_scale,
    paper_note,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    scale = get_scale(scale_name)
    print(
        f"scale={scale.name}: n={scale.n:,}, k={scale.k}, "
        f"b={scale.blocking_factor}, trials={scale.trials}"
    )
    started = time.time()

    banner("Figures 3 & 4 — sampling rate / blocks vs table size")
    print(paper_note("rate falls ~log(n)/n; blocks ~constant"))
    result = figures_3_and_4(scale=scale, seed=seed)
    print(format_series("Figure 3", [result["rate"]]))
    print(format_series("Figure 4", [result["blocks"]]))

    banner("Figure 5 — error vs rate across skew (Z = 0, 2, 4)")
    print(paper_note("curves fall together; convergence is distribution-free"))
    result = figure5(scale=scale, seed=seed)
    print(format_series("Figure 5", result["series"]))

    banner("Figure 6 — required rate vs number of bins")
    print(paper_note("linear growth in k"))
    result = figure6(scale=scale, seed=seed)
    print(format_series("Figure 6", [result["series"]]))

    banner("Figure 7 — random vs partially clustered layout")
    print(paper_note("clustered layout needs more sampling at every rate"))
    result = figure7(scale=scale, seed=seed)
    print(format_series("Figure 7", result["series"]))

    banner("Figure 8 — sampling vs record size")
    print(paper_note("blocks sampled grow ~linearly with record size"))
    result = figure8(scale=scale, seed=seed)
    print(format_series("Figure 8 (blocks)", [result["blocks"]]))
    print(format_series("Figure 8 (row rate)", [result["rate"]]))

    for dataset, fig_pair in (("zipf2", "9 / 11"), ("unif_dup", "10 / 12")):
        banner(f"Figures {fig_pair} — distinct values, {dataset}")
        print(paper_note("estimate tracks truth; rel-error stays small"))
        result = figure9_10(dataset, scale=scale, seed=seed)
        print(
            format_series(
                "distinct counts",
                [result["real"], result["sample"], result["estimate"]],
            )
        )
        errors = figure11_12(dataset, scale=scale, seed=seed)
        print(
            format_series(
                "rel-error |d-e|/n",
                [errors["err_sample"], errors["err_estimate"]],
            )
        )

    print(f"\nall figures regenerated in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
