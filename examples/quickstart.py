#!/usr/bin/env python
"""Quickstart: build sampled statistics for a column and query them.

This walks the full pipeline of the paper on a synthetic sales table:

1. generate a skewed column (Zipf Z=2) and lay it out on simulated disk,
2. run ANALYZE, which drives the paper's CVB adaptive block-sampling
   algorithm (Section 4) until its cross-validation test certifies the
   target max error (Section 2.3 / Theorem 7),
3. inspect what it cost and how good the histogram actually is,
4. use the statistics the way an optimizer would: range selectivity,
   distinct count, equality cardinality.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import StatisticsManager, Table, make_dataset
from repro.core.error_metrics import fractional_max_error
from repro.workloads import true_range_count

SEED = 7
N = 200_000


def main() -> None:
    # -- 1. a table with a skewed column, stored on simulated disk pages --
    dataset = make_dataset("zipf2", N, rng=SEED)
    table = Table("sales", {"amount": dataset.values})
    print(f"table: {table}")
    print(f"column: {dataset.describe()}")

    # -- 2. ANALYZE via adaptive block sampling -------------------------
    manager = StatisticsManager()
    stats = manager.analyze(
        table,
        "amount",
        k=100,          # histogram buckets
        f=0.2,          # target max error as a fraction of n/k
        gamma=0.01,     # failure probability for the sampling bounds
        layout="random",
        rng=SEED + 1,
    )
    print(f"\nANALYZE -> {stats.summary()}")
    print(f"cross-validation rounds: {len(stats.cvb_result.iterations)}")
    for it in stats.cvb_result.iterations:
        if it.index == 0:
            print(f"  round 0: initial sample, {it.increment_tuples:,} tuples")
        else:
            verdict = "converged" if it.passed else "merge and continue"
            print(
                f"  round {it.index}: +{it.increment_tuples:,} tuples, "
                f"observed error {it.observed_error:.3g} vs threshold "
                f"{it.threshold:.3g} -> {verdict}"
            )

    # -- 3. how good is the histogram, really? --------------------------
    achieved = fractional_max_error(
        stats.histogram.separators, stats.sample, dataset.values
    )
    print(f"\nachieved max error vs full data: {achieved:.3f} (target 0.2)")
    print(f"sampled {stats.sampling_rate:.1%} of rows, {stats.pages_read} pages")

    # -- 4. answer optimizer questions from the statistics --------------
    lo, hi = 100, 800
    estimate = stats.estimate_range(lo, hi)
    truth = true_range_count(dataset.values, _query(lo, hi))
    print(f"\nrange amount in [{lo}, {hi}]: estimated {estimate:,.0f}, "
          f"true {truth:,}")
    print(f"distinct amounts: estimated {stats.distinct_estimate:,.0f}, "
          f"true {dataset.num_distinct:,}")
    print(f"density: {stats.density:.4f} "
          "(0 = all distinct, 1 = all identical)")
    print(f"equality predicate cardinality estimate: "
          f"{stats.estimate_equality(42):,.1f} rows")


def _query(lo, hi):
    from repro.workloads import RangeQuery

    return RangeQuery(lo, hi)


if __name__ == "__main__":
    main()
