#!/usr/bin/env python
"""Histogram structures side by side: who summarises what best?

The paper commits to equi-height histograms because commercial optimizers
use them, and names "other histogram structures [15, 16]" as the extension
frontier.  This example builds all four structures in the library over
three very different columns and races them on the same range workload:

- **equi-height** — the paper's structure, with SQL Server-style
  equal-to-boundary counts;
- **equi-width** — cheapest to build, collapses under skew;
- **MaxDiff(V,A)** — boundaries at the largest frequency-x-spread jumps
  (Ioannidis-Poosala [15]);
- **compressed** — exact singletons for hot values + equi-height remainder
  (Section 5).

Run:  python examples/histogram_structures.py
"""

import numpy as np

from repro.core import (
    CompressedHistogram,
    EquiHeightHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
)
from repro.workloads import make_dataset, random_range_queries, true_range_count

N, K, QUERIES = 100_000, 50, 300
SEED = 3

STRUCTURES = {
    "equi-height": EquiHeightHistogram.from_values,
    "equi-width": EquiWidthHistogram.from_values,
    "maxdiff": MaxDiffHistogram.from_values,
    "compressed": CompressedHistogram.from_values,
}


def race(dataset_name: str) -> None:
    dataset = make_dataset(dataset_name, N, rng=SEED)
    values = dataset.values
    queries = random_range_queries(values, QUERIES, rng=SEED + 1)
    truths = [true_range_count(values, q) for q in queries]
    unit = N / K

    print(f"\n=== {dataset.describe()} ===")
    print(f"{'structure':<14} {'mean |err| (buckets)':>22} {'worst':>8}")
    for name, build in STRUCTURES.items():
        hist = build(values, K)
        errors = [
            abs(hist.estimate_range(q.lo, q.hi) - t)
            for q, t in zip(queries, truths)
        ]
        print(
            f"{name:<14} {np.mean(errors) / unit:>22.3f} "
            f"{np.max(errors) / unit:>8.2f}"
        )


def main() -> None:
    print(
        f"{QUERIES} random range queries per column; errors in units of the "
        f"ideal bucket size n/k = {N // K:,} rows"
    )
    for dataset_name in ("zipf0", "zipf2", "bimodal"):
        race(dataset_name)
    print(
        "\ntakeaway: under skew, structure choice is worth an order of "
        "magnitude; equi-height with boundary counts and compressed stay "
        "reliable everywhere, which is what a general-purpose optimizer "
        "needs — exactly the paper's premise."
    )


if __name__ == "__main__":
    main()
