#!/usr/bin/env python
"""Distinct-value estimation: the GEE estimator vs the classics vs the wall.

Section 6 of the paper has three acts, all reproduced here:

1. **The wall** (Theorem 8): two relations are built that a small sample
   cannot tell apart — one all-distinct, one heavily duplicated.  Whatever
   any estimator answers, it is badly wrong on one of them.
2. **The estimator**: GEE (sqrt(n/r)*f1 + sum f_j) splits the difference
   geometrically, which is the best possible against the wall; the classic
   estimators are compared on Zipf and Unif/Dup data.
3. **The metric that works**: rel-error |d - e|/n stays small even where
   ratio error cannot, so an optimizer can still trust "d << n" decisions.

Run:  python examples/distinct_value_estimation.py
"""

import numpy as np

from repro import make_dataset
from repro.core import bounds
from repro.distinct import (
    ALL_ESTIMATORS,
    adversarial_pair,
    estimate_all,
    forced_ratio_error,
    ratio_error,
    rel_error,
)

SEED = 31
N = 100_000
SAMPLE = 5_000


def act_one_the_wall() -> None:
    print("=== Act 1: the Theorem 8 wall ===")
    r, gamma = 50, 0.5
    pair = adversarial_pair(N, r, gamma)
    floor = bounds.theorem8_error_lower_bound(N, r, gamma)
    print(
        f"relations: HIGH d={pair.high_distinct:,} vs "
        f"LOW d={pair.low_distinct:,} (each value x{pair.duplication})"
    )
    print(f"theorem floor at r={r}, gamma={gamma}: ratio error >= {floor:.1f}")
    for estimator in ALL_ESTIMATORS[:3]:
        err = np.median(
            [forced_ratio_error(pair, estimator, rng=s) for s in range(9)]
        )
        print(f"  {estimator.name:<10} forced ratio error: {err:.1f}")
    print()


def act_two_the_estimators() -> None:
    print("=== Act 2: estimator shoot-out (5% sample) ===")
    rng = np.random.default_rng(SEED)
    for name in ("zipf2", "unif_dup"):
        dataset = make_dataset(name, N, rng=SEED)
        truth = dataset.num_distinct
        sample = dataset.values[rng.integers(0, N, size=SAMPLE)]
        results = estimate_all(sample, N)
        print(f"\n{name}: true d = {truth:,}")
        for est_name, value in sorted(
            results.items(), key=lambda kv: ratio_error(kv[1], truth)
        ):
            print(
                f"  {est_name:<12} {value:>12,.0f}   "
                f"ratio err {ratio_error(value, truth):>6.2f}   "
                f"rel err {rel_error(value, truth, N):.4f}"
            )
    print()


def act_three_the_metric() -> None:
    print("=== Act 3: why rel-error is the metric to trust ===")
    # The paper's own numeric example (Section 6.2).
    n, d, e = 100_000, 500, 5_000
    print(
        f"n={n:,}, true d={d}, estimate e={e:,}: "
        f"ratio error {ratio_error(e, d):.0f}x — looks terrible — but "
        f"rel-error {rel_error(e, d, n):.3f}, so the optimizer still "
        "correctly concludes d << n."
    )


def main() -> None:
    act_one_the_wall()
    act_two_the_estimators()
    act_three_the_metric()


if __name__ == "__main__":
    main()
