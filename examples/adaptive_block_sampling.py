#!/usr/bin/env python
"""Adaptive block sampling: watching CVB adapt to on-disk clustering.

Section 4's scenario analysis: a page of b tuples is worth b independent
samples when the layout is random, but only ~1 when tuples within a page
are correlated.  CVB doesn't know the layout in advance — its cross-
validation loop discovers the effective sampling rate from the data.

This example builds the same Zipf column under three physical layouts
(random, 20%-partially-clustered, fully sorted) and prints each CVB run's
round-by-round trace: watch the clustered layouts fail validation longer
and keep sampling.

Run:  python examples/adaptive_block_sampling.py
"""

from repro import cvb_build, make_dataset
from repro.core.error_metrics import fractional_max_error
from repro.storage import HeapFile

SEED = 23
N = 200_000
BLOCKING_FACTOR = 50
K = 50
F = 0.2


def run_layout(values, layout: str) -> None:
    heapfile = HeapFile.from_values(
        values,
        layout=layout,
        rng=SEED,
        blocking_factor=BLOCKING_FACTOR,
        cluster_fraction=0.2,
    )
    result = cvb_build(heapfile, k=K, f=F, rng=SEED + 1)
    achieved = fractional_max_error(
        result.histogram.separators, result.sample, values
    )

    print(f"\n=== layout: {layout} ===")
    for it in result.iterations[1:]:
        verdict = "PASS" if it.passed else "fail"
        print(
            f"  round {it.index}: increment {it.increment_blocks:>5} blocks, "
            f"error {it.observed_error:>8.1f} vs threshold "
            f"{it.threshold:>8.1f} [{verdict}]"
        )
    rate = result.tuples_sampled / values.size
    print(
        f"  -> {result.pages_sampled:,} of {heapfile.num_pages:,} pages "
        f"({rate:.1%} of rows), achieved error {achieved:.3f} "
        f"(target {F}), exhausted={result.exhausted}"
    )


def main() -> None:
    dataset = make_dataset("zipf2", N, rng=SEED)
    print(f"column: {dataset.describe()}")
    print(
        f"CVB target: k={K} buckets, max error f={F}, "
        f"{BLOCKING_FACTOR} tuples/page"
    )
    for layout in ("random", "partial", "sorted"):
        run_layout(dataset.values, layout)

    print(
        "\ntakeaway: the same algorithm, fed the same tuples in a different "
        "physical order, automatically samples more pages when pages carry "
        "less information — without ever being told the layout."
    )


if __name__ == "__main__":
    main()
