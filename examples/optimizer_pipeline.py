#!/usr/bin/env python
"""An optimizer's day: cardinality estimation over a two-table schema.

The downstream payoff of the paper's statistics: a toy cost-based decision.
We build an `orders`/`customers` schema, ANALYZE both join columns with
adaptive sampling, and then do what an optimizer does all day:

- estimate range selectivities (histogram, Theorem 3's territory),
- estimate an equi-join size two ways — classical System R containment
  (which needs the Section 6 distinct-count estimate) and histogram
  alignment — against the exact answer,
- pick a join order from the estimates,
- keep statistics fresh: after enough rows change, the auto-refresh policy
  re-runs the sampled ANALYZE.

Run:  python examples/optimizer_pipeline.py
"""

import numpy as np

from repro.engine import (
    AutoStatistics,
    RefreshPolicy,
    Table,
    histogram_join_size,
    system_r_join_size,
    true_join_size,
)

SEED = 41
N_CUSTOMERS = 20_000
N_ORDERS = 120_000


def build_schema(rng):
    customer_ids = np.arange(N_CUSTOMERS)
    # Order volume is skewed: a few customers generate most orders.
    weights = 1.0 / (1.0 + np.arange(N_CUSTOMERS, dtype=np.float64)) ** 1.2
    weights /= weights.sum()
    order_customers = rng.choice(customer_ids, size=N_ORDERS, p=weights)
    order_amounts = np.round(rng.lognormal(4.0, 1.0, size=N_ORDERS)).astype(
        np.int64
    )
    customers = Table("customers", {"id": customer_ids})
    orders = Table(
        "orders", {"customer_id": order_customers, "amount": order_amounts}
    )
    return customers, orders


def main() -> None:
    rng = np.random.default_rng(SEED)
    customers, orders = build_schema(rng)

    auto = AutoStatistics(policy=RefreshPolicy(fraction=0.2))
    cust_stats = auto.analyze(customers, "id", k=100, f=0.2, rng=SEED + 1)
    join_stats = auto.analyze(orders, "customer_id", k=100, f=0.2, rng=SEED + 2)
    amount_stats = auto.analyze(orders, "amount", k=100, f=0.2, rng=SEED + 3)
    for stats in (cust_stats, join_stats, amount_stats):
        print(stats.summary())

    # -- range predicate on orders.amount --------------------------------
    lo, hi = 50, 150
    amounts = orders.column("amount").sorted_values()
    truth = int(((amounts >= lo) & (amounts <= hi)).sum())
    estimate = amount_stats.estimate_range(lo, hi)
    print(
        f"\npredicate amount in [{lo}, {hi}]: estimated {estimate:,.0f}, "
        f"true {truth:,} "
        f"(selectivity {estimate / N_ORDERS:.1%} vs {truth / N_ORDERS:.1%})"
    )

    # -- join size: System R vs histogram alignment vs truth -------------
    exact = true_join_size(
        customers.column("id").values, orders.column("customer_id").values
    )
    sr = system_r_join_size(cust_stats, join_stats)
    hist = histogram_join_size(cust_stats, join_stats)
    print(f"\njoin customers.id = orders.customer_id:")
    print(f"  exact               {exact:>12,}")
    print(f"  System R containment{sr:>12,.0f}")
    print(f"  histogram-aligned   {hist:>12,.0f}")

    # -- a toy plan choice ------------------------------------------------
    filtered_orders = estimate * exact / N_ORDERS
    plan_a = estimate + filtered_orders  # filter first, then join
    plan_b = sr + sr * truth / N_ORDERS  # join first, then filter
    choice = "filter-then-join" if plan_a < plan_b else "join-then-filter"
    print(
        f"\nplan cost proxies: filter-first {plan_a:,.0f} rows touched vs "
        f"join-first {plan_b:,.0f} -> optimizer picks {choice}"
    )

    # -- staleness / auto refresh ----------------------------------------
    print("\nsimulating churn on orders.amount ...")
    auto.record_modifications("orders", "amount", int(0.25 * N_ORDERS))
    print(f"  stale now? {auto.is_stale('orders', 'amount')}")
    refreshed = auto.ensure_fresh(orders, "amount", rng=SEED + 4)
    print(
        f"  auto-refresh ran (refresh_count={auto.refresh_count}); "
        f"new build sampled {refreshed.sampling_rate:.1%} of rows"
    )


if __name__ == "__main__":
    main()
