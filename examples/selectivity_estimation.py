#!/usr/bin/env python
"""Selectivity estimation: the error metric's consequences, live.

Section 2 of the paper argues that bounding a histogram's *max* error
(Definition 1) is what actually protects range-query estimates, while
average/variance bounds permit silent disasters.  This example makes that
concrete:

- builds three histograms over the same skewed column — a perfect one, a
  well-sampled one (small max error), and an under-sampled one,
- runs the same 500-query range workload through each,
- reports the Theorem 3 envelope next to the measured errors, and
- compares equi-height against equi-width and compressed histograms on a
  hot-value probe.

Run:  python examples/selectivity_estimation.py
"""

import numpy as np

from repro import EquiHeightHistogram, make_dataset
from repro.core import CompressedHistogram, EquiWidthHistogram, bounds
from repro.core.error_metrics import max_error_fraction
from repro.engine.selectivity import RangeSelectivityEstimator, evaluate_workload
from repro.sampling.record_sampler import sample_with_replacement
from repro.workloads import random_range_queries

SEED = 11
N = 200_000
K = 100


def build_histograms(values):
    rng = np.random.default_rng(SEED)
    rich_sample = np.sort(sample_with_replacement(values, 40_000, rng))
    poor_sample = np.sort(sample_with_replacement(values, 500, rng))
    return {
        "perfect (full scan)": EquiHeightHistogram.from_sorted_values(values, K),
        "sampled r=40k": EquiHeightHistogram.from_sorted_values(rich_sample, K),
        "sampled r=500": EquiHeightHistogram.from_sorted_values(poor_sample, K),
    }


def main() -> None:
    dataset = make_dataset("zipf1", N, rng=SEED)
    values = dataset.values
    queries = random_range_queries(values, 500, rng=SEED + 1)

    print(f"workload: 500 random range queries over {dataset.describe()}\n")
    header = (
        f"{'histogram':<22} {'max err f':>10} {'thm3 envelope':>14} "
        f"{'measured max abs':>17} {'mean abs':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, hist in build_histograms(values).items():
        f = max_error_fraction(hist.recount(values).counts)
        envelope = bounds.theorem3_absolute_error(N, K, min(f, 1.0))
        estimator = RangeSelectivityEstimator(hist, table_rows=N)
        accuracy = evaluate_workload(estimator, values, queries)
        print(
            f"{name:<22} {f:>10.3f} {envelope:>14.0f} "
            f"{accuracy.max_absolute_error:>17.0f} "
            f"{accuracy.mean_absolute_error:>10.0f}"
        )

    # -- structure comparison on a hot value -----------------------------
    print("\nhot-value probe (equality on the most frequent value):")
    distinct, counts = np.unique(values, return_counts=True)
    hot = float(distinct[counts.argmax()])
    hot_count = int(counts.max())

    equi_height = EquiHeightHistogram.from_sorted_values(values, K)
    equi_width = EquiWidthHistogram.from_values(values, K)
    compressed = CompressedHistogram.from_values(values, K)
    for name, est in [
        ("equi-height", equi_height.estimate_range(hot, hot)),
        ("equi-width", equi_width.estimate_range(hot, hot)),
        ("compressed", compressed.estimate_range(hot, hot)),
    ]:
        print(f"  {name:<12} estimate {est:>12,.0f}   (true {hot_count:,})")

    print(
        "\ntakeaway: the measured worst-case error tracks the max error "
        "metric f, exactly as Theorem 3 promises; and compressed histograms "
        "(Section 5) nail hot values that plain buckets smear."
    )


if __name__ == "__main__":
    main()
