#!/usr/bin/env python
"""Sample-size planner: Corollary 1 as a DBA-facing tool.

The paper stresses that its trade-off is "multi-functional" (Example 3):
one formula answers three operational questions.  This example is that
tool — give it what you know, it solves for what you don't:

  - How much must I sample for k buckets at error f?
  - How many buckets can my sampling budget support?
  - What error should I expect from the sample I can afford?

It also prints the comparison against the prior GMP bound (Example 4) and
what the budget means in disk blocks for several record sizes.

Run:  python examples/sample_size_planner.py
"""

from repro.core import bounds
from repro.exceptions import InfeasibleBoundError
from repro.storage import RecordSpec

GAMMA = 0.01


def plan_sample_size(n: int, k: int, f: float) -> None:
    r = bounds.corollary1_sample_size(n, k, f, GAMMA)
    print(
        f"n={n:>13,}  k={k:>4}  f={f:>5.2f}  ->  sample r = {r:>12,} "
        f"({r / n:7.2%} of rows)"
    )


def main() -> None:
    print("How much sampling for a target histogram? (Corollary 1)")
    for n in (10**6, 10**7, 10**9):
        plan_sample_size(n, k=500, f=0.2)
    plan_sample_size(10**7, k=100, f=0.1)
    plan_sample_size(10**7, k=600, f=0.1)

    print("\nHow many buckets can a 1M-row sample support? (f = 0.25)")
    for n in (10**7, 10**8, 10**9):
        k = bounds.corollary1_max_buckets(n, 2**20, 0.25, GAMMA)
        print(f"  n={n:>13,} -> k <= {k}")

    print("\nWhat error does an 800K sample buy at k = 200?")
    for n in (10**7, 10**8, 10**9):
        f = bounds.corollary1_error_fraction(n, 200, 800_000, GAMMA)
        print(f"  n={n:>13,} -> f <= {f:.1%}")

    print("\nThe same budget in disk blocks (block sampling, Section 4):")
    r = bounds.corollary1_sample_size(10**7, 200, 0.1, GAMMA)
    for record_size in (16, 32, 64, 128):
        spec = RecordSpec(record_size=record_size)
        blocks = -(-r // spec.blocking_factor)  # ceil
        print(
            f"  {record_size:>3}-byte records ({spec.blocking_factor:>3} "
            f"tuples/page): g0 = {blocks:,} pages"
        )

    print("\nAnd the prior art (GMP, Theorem 6) for contrast:")
    for f in (0.43, 0.35, 0.2):
        try:
            c = bounds.gmp_required_c(500, f)
            gmp = bounds.gmp_theorem6(500, c, n=10**9)
            status = "valid" if gmp.feasible else (
                f"needs n >= {gmp.n_min:.0e} to be valid"
            )
            print(f"  f={f}: c={c:.0f}, r={gmp.r:,} ({status})")
        except InfeasibleBoundError as exc:
            print(f"  f={f}: {exc}")


if __name__ == "__main__":
    main()
