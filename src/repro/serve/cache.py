"""LRU statistics cache for the serving path.

The catalog (:class:`~repro.engine.catalog.Catalog`) is the source of
truth; the cache in front of it holds the *serving* artifacts — the
:class:`~repro.core.histogram.EquiHeightHistogram` bundle plus the
O(log k) :class:`~repro.serve.bucket_index.BucketIndex` built from it —
for the hottest ``capacity`` columns.

Staleness is not re-invented here: every lookup delegates to
:meth:`~repro.engine.maintenance.AutoStatistics.ensure_fresh`, which
applies the modification-counter policy and rebuilds (single-flight per
column) when needed.  The cache then revalidates its entry against the
catalog's per-key version counter: an entry built from version ``v`` is a
*hit* while the catalog still holds ``v`` and a *refresh* once a rebuild
bumped it.

Event counters (``hits``/``misses``/``refreshes``/``evictions``) are plain
integers — deterministic under a deterministic request schedule — and are
mirrored to the ``repro_serve_cache_events_total`` metric when obs is on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from .._rng import RngLike
from ..engine.maintenance import AutoStatistics
from ..engine.statistics import ColumnStatistics
from ..engine.table import Table
from ..exceptions import ParameterError
from ..obs.metrics import inc
from .bucket_index import BucketIndex

__all__ = ["CacheEntry", "StatsCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached serving bundle: statistics + index at a catalog version."""

    statistics: ColumnStatistics
    index: BucketIndex
    version: int


class StatsCache:
    """Version-validated LRU cache of serving bundles.

    Thread-safe: the server handles requests from a thread pool (and the
    loadgen drives it from many client threads), so map mutations are
    guarded by a lock.  ANALYZE builds themselves happen *outside* this
    lock — they go through ``AutoStatistics`` (single-flight) or the
    admission controller — so a slow build never blocks unrelated hits.
    """

    def __init__(self, auto: AutoStatistics | None = None, capacity: int = 128):
        """Cache serving bundles for up to *capacity* columns (LRU beyond)."""
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.auto = auto or AutoStatistics()
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.evictions = 0
        #: Optional observation hook ``listener(kind)`` — the server wires
        #: live telemetry in here (``kind="cache_hit"|"cache_miss"``).
        #: Must never raise; it is called with the cache lock held.
        self.listener = None

    # ------------------------------------------------------------------
    # Lookup path
    # ------------------------------------------------------------------

    def lookup(
        self, table: Table, column_name: str, rng: RngLike = None
    ) -> CacheEntry:
        """The current serving bundle for ``table.column_name``.

        Delegates freshness to ``AutoStatistics.ensure_fresh`` (which may
        rebuild), then revalidates the cached entry against the catalog
        version.  Raises
        :class:`~repro.exceptions.StatisticsNotFoundError` when the column
        was never analyzed — cold builds are the server's (admission
        -controlled) job, via :meth:`install`.
        """
        stats = self.auto.ensure_fresh(table, column_name, rng=rng)
        return self._admit(stats)

    def install(self, statistics: ColumnStatistics) -> CacheEntry:
        """Cache the bundle for freshly built *statistics* and return it.

        Used by the server after a cold ANALYZE (the build already went
        through admission control); also handy in tests.
        """
        return self._admit(statistics)

    def _admit(self, stats: ColumnStatistics) -> CacheEntry:
        """Revalidate/refresh the entry for *stats* and apply LRU accounting."""
        key = (stats.table_name, stats.column_name)
        version = self.auto.manager.catalog.version(*key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.version == version:
                self._entries.move_to_end(key)
                self.hits += 1
                inc("repro_serve_cache_events_total", event="hit")
                if self.listener is not None:
                    self.listener("cache_hit")
                return entry
            if entry is None:
                self.misses += 1
                inc("repro_serve_cache_events_total", event="miss")
                if self.listener is not None:
                    self.listener("cache_miss")
            else:
                self.refreshes += 1
                inc("repro_serve_cache_events_total", event="refresh")
            entry = CacheEntry(
                statistics=stats, index=BucketIndex(stats.histogram),
                version=version,
            )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                inc("repro_serve_cache_events_total", event="evict")
            return entry

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------

    def peek(self, table_name: str, column_name: str) -> CacheEntry | None:
        """The cached entry, if any, without freshness checks or LRU bumps.

        This is the degraded-serving read: when admission control sheds a
        build, the server answers from the last-known-good bundle here.
        """
        with self._lock:
            return self._entries.get((table_name, column_name))

    def invalidate(self, table_name: str, column_name: str) -> None:
        """Drop the entry (e.g. after ``DROP STATISTICS``); no-op if absent."""
        with self._lock:
            self._entries.pop((table_name, column_name), None)

    def __len__(self) -> int:
        """Number of cached columns."""
        with self._lock:
            return len(self._entries)

    def counters(self) -> dict[str, int]:
        """Deterministic event counters (hit/miss/refresh/evict totals)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "refreshes": self.refreshes,
                "evictions": self.evictions,
            }
