"""Terminal monitor for a running statistics server: ``repro top``.

The monitor is a thin client over the ``stats`` / ``health`` endpoints
(:mod:`repro.serve.protocol`): it polls a running server over the same
JSON-lines TCP transport the load generator uses, renders one text frame
per poll, and (optionally) writes the **logical** half of the last
``stats`` response to a file.  That file is byte-stable for a fixed
logical request history — the CI ``telemetry-smoke`` job diffs two of
them taken after identical workloads driven with different client
counts.

Rendering is split determinism-first, like everything else in the serve
layer:

- :func:`render_logical_text` — pure function of the ``logical`` section
  (sorted keys, no timestamps); safe for golden files and byte-diffs.
- :func:`render_frame` — the human frame; mixes in the ``wall`` section
  (latency quantiles, windows) and is never byte-compared.

See docs/TELEMETRY.md for the endpoint payloads being rendered.
"""

from __future__ import annotations

import json
import sys
import time

from ..exceptions import ReproError
from .loadgen import _TcpClient

__all__ = [
    "fetch",
    "render_logical_text",
    "render_frame",
    "run_top",
]


def fetch(client) -> tuple[dict, dict]:
    """One monitor poll: the ``stats`` and ``health`` result objects.

    *client* is anything with a ``request(payload) -> response`` method
    (the loadgen's TCP client, or an in-process shim in tests).  Raises
    :class:`~repro.exceptions.ReproError` on an ``ok: false`` response.
    """
    stats = _result(client.request({"op": "stats"}))
    health = _result(client.request({"op": "health"}))
    return stats, health


def _result(response: dict) -> dict:
    """Unwrap one response, raising on protocol-level failure."""
    if not response.get("ok"):
        raise ReproError(
            f"monitor request failed: {response.get('error')!r} "
            f"({response.get('code')})"
        )
    return response["result"]


def render_logical_text(stats: dict) -> str:
    """Byte-stable JSON of the logical half of one ``stats`` result.

    This is the artifact the CI smoke job byte-diffs across client
    counts: sorted keys, two-space indent, trailing newline, nothing
    from the ``wall`` section.
    """
    return json.dumps(stats["logical"], indent=2, sort_keys=True) + "\n"


def _fmt_ms(seconds: float | None) -> str:
    """Milliseconds with fixed precision, or a dash when absent."""
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.3f}ms"


def _slo_lines(verdicts: list[dict]) -> list[str]:
    """One aligned line per SLO verdict (logical + wall merged)."""
    lines = []
    for verdict in verdicts:
        if not verdict.get("evaluated"):
            state = "no-data"
        elif verdict.get("burning"):
            state = "BURNING"
        elif verdict.get("ok"):
            state = "ok"
        else:
            state = "violating"
        observed = verdict.get("observed")
        shown = "-" if observed is None else f"{observed:.6g}"
        lines.append(
            f"  {verdict['name']:<16} {verdict['kind']:<10} "
            f"threshold={verdict['threshold']:<10g} observed={shown:<12} "
            f"burn={verdict.get('burn', 0)} [{state}]"
        )
    return lines


def render_frame(stats: dict, health: dict) -> str:
    """One human-readable monitor frame from ``stats`` + ``health``.

    Pure function of its inputs (no clock reads), but the inputs' wall
    section varies run to run — frames are for eyes, not for diffing.
    """
    logical = stats["logical"]
    wall = stats.get("wall") or {}
    telemetry = logical.get("telemetry") or {}
    lines = [
        f"repro serve — health: {health['status']}"
        + (f"  burning: {', '.join(health['burning'])}"
           if health.get("burning") else ""),
        f"uptime_requests={logical['uptime_requests']}  "
        f"degraded_served={logical['degraded_served']}  "
        f"queue_depth={logical['queue_depth']}  "
        f"catalog_columns={logical['catalog_columns']}",
        "requests by endpoint: " + (
            "  ".join(
                f"{op}={n}" for op, n in sorted(logical["requests"].items())
            ) or "(none)"
        ),
        f"cache: {logical['cache']}  admission: {logical['admission']}",
    ]
    if not telemetry.get("enabled"):
        lines.append("telemetry: disabled (start the server with --telemetry)")
        return "\n".join(lines) + "\n"

    latency = wall.get("latency") or {}
    lines.append(
        f"telemetry: clock={telemetry['clock']}  "
        f"latency n={latency.get('count', 0)}  "
        f"p50={_fmt_ms(latency.get('p50'))}  "
        f"p90={_fmt_ms(latency.get('p90'))}  "
        f"p99={_fmt_ms(latency.get('p99'))}"
    )
    totals = telemetry.get("series_totals", {})
    lines.append(
        "series totals: " + "  ".join(
            f"{name}={total:g}" for name, total in sorted(totals.items())
        )
    )
    verdicts = list(telemetry.get("slo", [])) + list(wall.get("slo", []))
    if verdicts:
        lines.append("slo:")
        lines.extend(_slo_lines(sorted(verdicts, key=lambda v: v["name"])))
    shift = wall.get("shift") or {}
    if shift.get("reference_frozen"):
        if shift.get("evaluated"):
            lines.append(
                f"shift: tv_distance={shift['tv_distance']:.6g} "
                f"epsilon={shift['epsilon']:g} "
                f"{'SHIFTED' if shift['shifted'] else 'stable'}"
            )
        else:
            lines.append("shift: reference frozen, not enough data yet")
    else:
        lines.append("shift: reference not frozen yet")
    return "\n".join(lines) + "\n"


def run_top(
    host: str,
    port: int,
    *,
    once: bool = False,
    interval: float = 1.0,
    frames: int | None = None,
    out: str | None = None,
    stream=None,
) -> int:
    """Poll ``host:port`` and print monitor frames; returns an exit code.

    ``once`` prints a single frame; otherwise frames repeat every
    ``interval`` seconds (bounded by ``frames`` when given, for tests).
    ``out`` writes the byte-stable logical snapshot of the *last* frame
    (:func:`render_logical_text`) — the artifact CI byte-diffs.
    """
    if interval <= 0:
        raise ReproError(f"interval must be positive, got {interval}")
    stream = stream if stream is not None else sys.stdout
    remaining = 1 if once else frames
    client = _TcpClient(host, port)
    last_stats: dict | None = None
    try:
        while True:
            stats, health = fetch(client)
            last_stats = stats
            stream.write(render_frame(stats, health))
            stream.write("\n")
            if hasattr(stream, "flush"):
                stream.flush()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    if out and last_stats is not None:
        from ..durability import atomic_write_text

        atomic_write_text(out, render_logical_text(last_stats))
    return 0
