"""Statistics-as-a-service: the `repro serve` server, cache, and loadgen.

The engine layer (:mod:`repro.engine`) is a library: one caller, one
catalog, synchronous ANALYZE.  This package promotes it into a long-lived,
multi-tenant statistics server:

- :mod:`repro.serve.bucket_index` — a tree-like bucket index giving
  O(log k) range/quantile lookups over large histograms, bit-identical to
  the linear :class:`~repro.core.histogram.EquiHeightHistogram` scan.
- :mod:`repro.serve.cache` — an LRU statistics cache whose staleness
  policy is delegated to :class:`~repro.engine.maintenance.AutoStatistics`.
- :mod:`repro.serve.admission` — bounded in-flight ANALYZE builds with a
  wait queue and load shedding into degraded-mode serving.
- :mod:`repro.serve.protocol` — the JSON request/response surface.
- :mod:`repro.serve.server` — the server core (synchronous ``handle``)
  plus an asyncio JSON-lines-over-TCP front end.
- :mod:`repro.serve.loadgen` — a deterministic closed-loop load generator
  whose logical summary is bit-identical across runs and client counts.
- :mod:`repro.serve.telemetry` — optional live runtime telemetry
  (streaming latency sketch, windowed event series, SLO burn tracking)
  behind the ``stats`` / ``health`` / ``watch`` endpoints.
- :mod:`repro.serve.monitor` — the ``repro top`` terminal monitor over
  those endpoints.

Everything here follows the repo determinism contract: logical outputs are
pure functions of (seed, parameters); wall-clock numbers live only in
explicitly timing-labelled fields.  ``docs/SERVING.md`` documents the
surface and is kept in sync by ``tests/serve/test_docs.py``.
"""

from __future__ import annotations

from .admission import AdmissionController, AdmissionDecision
from .bucket_index import BucketIndex
from .cache import StatsCache
from .loadgen import LoadGenerator, LoadProfile
from .protocol import ENDPOINTS, ProtocolError, validate_request
from .server import StatsServer, serve_forever
from .telemetry import ServerTelemetry

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BucketIndex",
    "StatsCache",
    "LoadGenerator",
    "LoadProfile",
    "ENDPOINTS",
    "ProtocolError",
    "validate_request",
    "StatsServer",
    "serve_forever",
    "ServerTelemetry",
]
