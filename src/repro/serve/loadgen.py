"""Deterministic closed-loop load generator for the statistics server.

Simulates the paper's motivating deployment — a query optimizer hammering
the statistics catalog millions of times a day — while staying inside the
repo determinism contract: the **logical summary** of a run (request mix,
answer checksums, build/cache/admission counters) is a pure function of
``(profile, server seed)``, bit-identical across repeated runs *and across
client counts*.  Only the ``wall`` section (p50/p99 latency) varies with
the machine.

How client-count independence is achieved:

1. The entire request schedule is generated **globally** from the profile
   seed, then dealt round-robin (client ``i`` takes ``schedule[i::C]``), so
   the executed request multiset never depends on ``C``.
2. Builds happen only in the **sequential phases** (warmup ANALYZE per
   column, then optional churn + a touch that triggers the refresh), so
   every concurrent-phase answer is served from the same frozen bundles.
3. Checksums aggregate with :func:`math.fsum`, which is exactly rounded —
   a pure function of the answer multiset, immune to thread interleaving.

The generator drives either an in-process :class:`StatsServer` (``handle``
called directly — this is what the bench scenarios do) or a remote one
over the JSON-lines TCP transport (``address=(host, port)``).
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError, ReproError
from ..obs import trace as _trace
from ..obs.metrics import observe
from .server import StatsServer

__all__ = ["LoadProfile", "LoadGenerator", "percentile"]

#: Default request mix over the estimate endpoints (weights, normalised).
DEFAULT_MIX: dict[str, float] = {
    "estimate_range": 0.70,
    "estimate_equality": 0.15,
    "estimate_quantile": 0.10,
    "estimate_distinct": 0.05,
}


@dataclass(frozen=True)
class LoadProfile:
    """Parameters of one load run (hashable, printable, reproducible)."""

    requests: int = 200
    clients: int = 4
    seed: int = 0
    churn_rows: int = 0
    mix: tuple[tuple[str, float], ...] = tuple(sorted(DEFAULT_MIX.items()))
    analyze_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self):
        """Validate counts and the endpoint mix."""
        if self.requests < 0:
            raise ParameterError(
                f"requests must be non-negative, got {self.requests}"
            )
        if self.clients < 1:
            raise ParameterError(f"clients must be >= 1, got {self.clients}")
        if self.churn_rows < 0:
            raise ParameterError(
                f"churn_rows must be non-negative, got {self.churn_rows}"
            )
        if not self.mix or any(w < 0 for _, w in self.mix):
            raise ParameterError("mix must be non-empty with weights >= 0")
        unknown = sorted(set(dict(self.mix)) - set(DEFAULT_MIX))
        if unknown:
            raise ParameterError(f"mix names unknown endpoints: {unknown}")


def percentile(values: list[float], p: float) -> float:
    """The p-th percentile (0..1) of *values*, nearest-rank convention."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(1, math.ceil(p * len(xs)))
    return xs[rank - 1]


class _InProcessClient:
    """Client that calls ``StatsServer.handle`` directly (no transport)."""

    def __init__(self, server: StatsServer):
        """Bind to *server*."""
        self._server = server

    def request(self, payload: dict) -> dict:
        """One request/response round trip."""
        return self._server.handle(payload)

    def close(self) -> None:
        """Nothing to release for in-process calls."""


class _TcpClient:
    """Client speaking the JSON-lines protocol over one TCP connection."""

    def __init__(self, host: str, port: int):
        """Connect to ``host:port``."""
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """One request/response round trip over the connection."""
        self._file.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode()
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection mid-request")
        return json.loads(line)

    def close(self) -> None:
        """Close the connection."""
        self._file.close()
        self._sock.close()


class LoadGenerator:
    """Closed-loop driver: warmup, optional churn, concurrent query phase.

    Parameters
    ----------
    server:
        In-process :class:`StatsServer` to drive, or ``None`` when using
        *address*.
    address:
        ``(host, port)`` of a remote server (each client thread opens its
        own connection).
    profile:
        The :class:`LoadProfile` describing the run.
    """

    def __init__(
        self,
        server: StatsServer | None = None,
        address: tuple[str, int] | None = None,
        profile: LoadProfile | None = None,
    ):
        """Pick the transport and freeze the profile."""
        if (server is None) == (address is None):
            raise ParameterError(
                "pass exactly one of server= or address="
            )
        self._server = server
        self._address = address
        self.profile = profile or LoadProfile()

    def _client(self):
        """A fresh client for one worker thread."""
        if self._server is not None:
            return _InProcessClient(self._server)
        host, port = self._address
        return _TcpClient(host, port)

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------

    @staticmethod
    def _discover_columns(client) -> list[tuple[str, str]]:
        """Sorted (table, column) pairs served, via the status endpoint."""
        status = _checked(client.request({"op": "status"}))["result"]
        pairs = [
            (table, column)
            for table, columns in sorted(status["columns"].items())
            for column in columns
        ]
        if not pairs:
            raise ParameterError("server has no tables to load against")
        return pairs

    def schedule(self, n_columns: int) -> list[tuple[str, int, float, float]]:
        """The full abstract request schedule, a pure function of the seed.

        Each entry is ``(endpoint, column_index, u1, u2)`` with the ``u``
        draws in ``[0, 1)``; they are mapped onto the column's served
        domain at send time.  Dealing ``schedule[i::clients]`` to client
        ``i`` keeps the multiset independent of the client count.
        """
        rng = np.random.default_rng([self.profile.seed, n_columns])
        names = [name for name, _ in self.profile.mix]
        weights = np.array([w for _, w in self.profile.mix], dtype=float)
        weights = weights / weights.sum()
        cumulative = np.cumsum(weights)
        entries = []
        for _ in range(self.profile.requests):
            pick = float(rng.random())
            endpoint = names[int(np.searchsorted(cumulative, pick, side="right"))]
            column = int(rng.integers(n_columns))
            u1, u2 = float(rng.random()), float(rng.random())
            entries.append((endpoint, column, u1, u2))
        return entries

    @staticmethod
    def _concrete(
        entry: tuple[str, int, float, float],
        columns: list[tuple[str, str]],
        domains: dict[tuple[str, str], tuple[float, float]],
    ) -> dict:
        """Map one abstract schedule entry onto a protocol request."""
        endpoint, column_idx, u1, u2 = entry
        table, column = columns[column_idx % len(columns)]
        lo_d, hi_d = domains[(table, column)]
        width = hi_d - lo_d
        request = {"op": endpoint, "table": table, "column": column}
        if endpoint == "estimate_range":
            a, b = lo_d + min(u1, u2) * width, lo_d + max(u1, u2) * width
            request.update(lo=a, hi=b)
        elif endpoint == "estimate_equality":
            request.update(value=lo_d + u1 * width)
        elif endpoint == "estimate_quantile":
            request.update(q=u1)
        return request

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def run(self) -> dict:
        """Execute the three phases; return the summary document.

        ``summary["logical"]`` is bit-identical across runs and client
        counts; ``summary["wall"]`` carries this run's latency
        distribution (p50/p99 et al.).
        """
        profile = self.profile
        with _trace.span(
            "serve.loadgen",
            requests=profile.requests, clients=profile.clients,
            seed=profile.seed,
        ):
            return self._run_phases()

    def _run_phases(self) -> dict:
        """The actual three-phase body of :meth:`run`."""
        profile = self.profile
        client = self._client()
        counts: dict[str, int] = {}
        checks: dict[str, list[float]] = {
            "rows": [], "values": [], "distinct": [],
        }
        errors = 0
        build_pages = 0

        # Phase 1 — sequential warmup: ANALYZE every column, then probe
        # the served domain (quantiles 0 and 1) for range generation.
        columns = self._discover_columns(client)
        counts["status"] = 1
        domains: dict[tuple[str, str], tuple[float, float]] = {}
        for table, column in columns:
            response = _checked(client.request({
                "op": "analyze", "table": table, "column": column,
                "params": dict(profile.analyze_params),
            }))
            build_pages += int(response["result"]["pages_read"])
            lo = _checked(client.request({
                "op": "estimate_quantile", "table": table,
                "column": column, "q": 0.0,
            }))["result"]["value"]
            hi = _checked(client.request({
                "op": "estimate_quantile", "table": table,
                "column": column, "q": 1.0,
            }))["result"]["value"]
            domains[(table, column)] = (float(lo), float(hi))
            counts["analyze"] = counts.get("analyze", 0) + 1
            counts["estimate_quantile"] = (
                counts.get("estimate_quantile", 0) + 2
            )

        # Phase 2 — sequential churn: report modifications, then touch
        # each column once so the (single-flight) refresh happens *here*,
        # at a deterministic point, not during the concurrent phase.
        if profile.churn_rows:
            for table, column in columns:
                _checked(client.request({
                    "op": "modify", "table": table, "column": column,
                    "rows": profile.churn_rows,
                }))
                touch = _checked(client.request({
                    "op": "estimate_distinct", "table": table,
                    "column": column,
                }))
                checks["distinct"].append(float(touch["result"]["distinct"]))
                counts["modify"] = counts.get("modify", 0) + 1
                counts["estimate_distinct"] = (
                    counts.get("estimate_distinct", 0) + 1
                )

        # Phase 3 — concurrent query phase over the dealt schedule.
        schedule = self.schedule(len(columns))
        latencies: list[list[float]] = [[] for _ in range(profile.clients)]
        results: list[dict] = [
            {"counts": {}, "rows": [], "values": [], "distinct": [],
             "errors": 0}
            for _ in range(profile.clients)
        ]

        def _drive(worker: int) -> None:
            """One client thread: execute its dealt slice in order."""
            worker_client = (
                client if worker == 0 and profile.clients == 1
                else self._client()
            )
            bucket = results[worker]
            try:
                for entry in schedule[worker::profile.clients]:
                    request = self._concrete(entry, columns, domains)
                    start = time.perf_counter()  # repro: noqa[DET002]
                    response = worker_client.request(request)
                    elapsed = time.perf_counter() - start  # repro: noqa[DET002]
                    latencies[worker].append(elapsed)
                    observe("repro_serve_request_seconds", elapsed)
                    op = entry[0]
                    bucket["counts"][op] = bucket["counts"].get(op, 0) + 1
                    if not response.get("ok"):
                        bucket["errors"] += 1
                        continue
                    payload = response["result"]
                    if "rows" in payload:
                        bucket["rows"].append(float(payload["rows"]))
                    if "value" in payload:
                        bucket["values"].append(float(payload["value"]))
                    if "distinct" in payload:
                        bucket["distinct"].append(float(payload["distinct"]))
            finally:
                if worker_client is not client:
                    worker_client.close()

        threads = [
            threading.Thread(target=_drive, args=(w,), name=f"loadgen-{w}")
            for w in range(self.profile.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Merge worker results.  fsum over the concatenated multiset is
        # order-independent, so the dealing never leaks into the checksum.
        for bucket in results:
            for op, n in sorted(bucket["counts"].items()):
                counts[op] = counts.get(op, 0) + n
            checks["rows"].extend(bucket["rows"])
            checks["values"].extend(bucket["values"])
            checks["distinct"].extend(bucket["distinct"])
            errors += bucket["errors"]

        status = _checked(client.request({"op": "status"}))["result"]
        counts["status"] += 1
        client.close()

        all_latencies = [x for bucket in latencies for x in bucket]
        return {
            "logical": {
                "profile": {
                    "requests": profile.requests,
                    "seed": profile.seed,
                    "churn_rows": profile.churn_rows,
                    "mix": [list(pair) for pair in profile.mix],
                },
                "columns": len(columns),
                "requests": {op: counts[op] for op in sorted(counts)},
                "errors": errors,
                "checksums": {
                    "rows_fsum": math.fsum(checks["rows"]),
                    "values_fsum": math.fsum(checks["values"]),
                    "distinct_fsum": math.fsum(checks["distinct"]),
                    "answers": (
                        len(checks["rows"]) + len(checks["values"])
                        + len(checks["distinct"])
                    ),
                },
                "builds": {
                    "warmup_pages_read": build_pages,
                    "refreshes": status["cache"]["refreshes"],
                    "degraded_served": status["degraded_served"],
                },
                "server": {
                    "cache": status["cache"],
                    "admission": status["admission"],
                    "catalog_columns": status["catalog_columns"],
                },
            },
            "wall": {
                "requests_timed": len(all_latencies),
                "p50_s": percentile(all_latencies, 0.50),
                "p99_s": percentile(all_latencies, 0.99),
                "max_s": max(all_latencies) if all_latencies else 0.0,
                "mean_s": (
                    math.fsum(all_latencies) / len(all_latencies)
                    if all_latencies else 0.0
                ),
            },
        }


def _checked(response: dict) -> dict:
    """Raise on an ``ok: false`` response during the sequential phases."""
    if not response.get("ok"):
        raise ReproError(
            f"loadgen setup request failed: {response.get('error')!r} "
            f"({response.get('code')})"
        )
    return response
