"""Tree-like bucket index: O(log k) histogram lookups, bit-identical.

:class:`~repro.core.histogram.EquiHeightHistogram` answers ``estimate_leq``
with a linear prefix sum over the bucket counts and ``estimate_quantile``
with a linear bucket walk — fine for the paper's k <= a few hundred, but a
serving path fielding millions of lookups over large-k histograms wants the
tree-like bucket index of *Enhancing Histograms by Tree-Like Bucket
Indices* (PAPERS.md): precomputed subtree (here: prefix) sums probed by
binary search.

:class:`BucketIndex` is that index.  The contract is **bit-identical
results**: every estimator replays the histogram's own float expressions —
same operands, same order — and only replaces the O(k) scans with O(log k)
searches over precomputed exact integer prefix sums.  ``tests/serve/
test_bucket_index.py`` enforces equivalence by hypothesis and probe counts.

Why the prefix sums preserve bit-identity: bucket counts are int64 and the
summarised totals stay far below 2**53, so ``float(counts[:j].sum())``
(the histogram's expression) and ``float(prefix[j])`` (ours) round the same
integer and are equal, while the sequential float accumulation in
``estimate_quantile`` adds exactly-representable integers and therefore
also equals ``float(prefix[j])`` at every step.
"""

from __future__ import annotations

import numpy as np

from ..core.histogram import EquiHeightHistogram
from ..exceptions import ParameterError
from ..obs.metrics import observe

__all__ = ["BucketIndex"]


class BucketIndex:
    """O(log k) range/quantile index over one equi-height histogram.

    Duck-types the histogram's estimator surface (``estimate_leq``,
    ``estimate_lt``, ``estimate_range``, ``estimate_quantile``,
    ``bucket_index``, ``total``), so it drops into
    :class:`~repro.engine.selectivity.RangeSelectivityEstimator` unchanged.
    Instances are immutable snapshots of the histogram they were built
    from; rebuild the index when the histogram changes.
    """

    def __init__(self, histogram: EquiHeightHistogram):
        """Precompute bounds and exact integer prefix sums from *histogram*."""
        self._k = histogram.k
        self._separators = np.asarray(histogram.separators, dtype=float)
        self._counts = np.asarray(histogram.counts, dtype=np.int64)
        self._eq_counts = np.asarray(histogram.eq_counts, dtype=np.int64)
        self._min = float(histogram.min_value)
        self._max = float(histogram.max_value)
        self._bounds = np.concatenate(
            ([self._min], self._separators, [self._max])
        )
        # prefix[j] = counts[:j].sum() exactly (int64); prefix[k] = total.
        self._prefix = np.concatenate(
            ([0], np.cumsum(self._counts, dtype=np.int64))
        )
        self._total = int(self._prefix[-1])
        self._probes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of buckets."""
        return self._k

    @property
    def total(self) -> int:
        """Total summarised count (``histogram.total``)."""
        return self._total

    @property
    def probes(self) -> int:
        """Separator/prefix comparisons made since construction.

        The O(log k) contract is observable: tests assert this grows
        logarithmically in ``k`` per lookup.
        """
        return self._probes

    # ------------------------------------------------------------------
    # Binary searches (each comparison counts as one probe)
    # ------------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """First bucket ``i`` with ``separators[i] >= value`` (else ``k-1``).

        Replicates ``np.searchsorted(separators, value, side="left")``
        with an instrumented binary search.
        """
        index, probes = self._search_separators(value)
        self._probes += probes
        return index

    def _search_separators(self, value: float) -> tuple[int, int]:
        """Binary-search the separators; return ``(index, probe count)``.

        Probes are counted locally (not via the shared ``_probes`` field)
        so concurrent lookups on a cached index record exact per-call
        counts — the shared counter is only bumped once per search.
        """
        seps = self._separators
        lo, hi = 0, int(seps.size)
        probes = 0
        while lo < hi:
            mid = (lo + hi) // 2
            probes += 1
            if float(seps[mid]) < value:
                lo = mid + 1
            else:
                hi = mid
        return lo, probes

    def _search_prefix(self, target: float) -> tuple[int, int]:
        """Smallest ``j`` with ``float(prefix[j+1]) >= target``, plus probes.

        ``j`` is clamped to ``k - 1``.  This is the bucket the histogram's
        linear quantile walk stops at: its running float ``cumulative``
        equals ``float(prefix[j])`` exactly (see module docstring), so the
        stopping condition ``cumulative + count >= target`` is
        ``float(prefix[j+1]) >= target``.
        """
        prefix = self._prefix
        lo, hi = 0, self._k - 1
        probes = 0
        while lo < hi:
            mid = (lo + hi) // 2
            probes += 1
            if float(prefix[mid + 1]) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo, probes

    # ------------------------------------------------------------------
    # Estimators — float expressions copied verbatim from the histogram
    # ------------------------------------------------------------------

    def estimate_leq(self, value: float) -> float:
        """Estimated count of values ``<= value`` (bit-identical)."""
        if value >= self._max:
            self._record_probes(0)
            return float(self._total)
        if value < self._min:
            self._record_probes(0)
            return 0.0
        j, probes = self._search_separators(value)
        self._probes += probes
        below = float(self._prefix[j])
        lo, hi = float(self._bounds[j]), float(self._bounds[j + 1])
        bucket_count = float(self._counts[j])
        eq_at_hi = float(self._eq_counts[j]) if j < self._k - 1 else 0.0
        if value >= hi:
            inside = bucket_count
        elif hi > lo:
            range_mass = max(0.0, bucket_count - eq_at_hi)
            inside = range_mass * (value - lo) / (hi - lo)
        else:
            inside = 0.0
        self._record_probes(probes)
        return below + inside

    def estimate_lt(self, value: float) -> float:
        """Estimated count of values strictly ``< value`` (bit-identical)."""
        if value > self._max:
            self._record_probes(0)
            return float(self._total)
        if value <= self._min:
            self._record_probes(0)
            return 0.0
        j, probes = self._search_separators(value)
        self._probes += probes
        below = float(self._prefix[j])
        lo, hi = float(self._bounds[j]), float(self._bounds[j + 1])
        bucket_count = float(self._counts[j])
        eq_at_hi = float(self._eq_counts[j]) if j < self._k - 1 else 0.0
        range_mass = max(0.0, bucket_count - eq_at_hi)
        if value >= hi:
            inside = range_mass
        elif hi > lo:
            inside = range_mass * (value - lo) / (hi - lo)
        else:
            inside = 0.0
        self._record_probes(probes)
        return below + inside

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count in the closed range ``[lo, hi]`` (bit-identical)."""
        if lo > hi:
            raise ParameterError(f"need lo <= hi, got [{lo}, {hi}]")
        return max(0.0, self.estimate_leq(hi) - self.estimate_lt(lo))

    def estimate_quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (bit-identical).

        Replaces the histogram's linear bucket walk with a binary search
        over the prefix sums, then applies the identical in-bucket
        interpolation expression.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"q must be in [0, 1], got {q}")
        target = q * float(self._total)
        j, probes = self._search_prefix(target)
        self._probes += probes
        count = float(self._counts[j])
        cumulative = float(self._prefix[j])
        lo, hi = float(self._bounds[j]), float(self._bounds[j + 1])
        self._record_probes(probes)
        if count <= 0 or hi <= lo:
            return hi
        eq_at_hi = float(self._eq_counts[j]) if j < self._k - 1 else 0.0
        range_mass = max(0.0, count - eq_at_hi)
        into_bucket = target - cumulative
        if into_bucket >= range_mass:
            return hi
        if range_mass <= 0:
            return hi
        return lo + (hi - lo) * into_bucket / range_mass

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    @staticmethod
    def _record_probes(count: int) -> None:
        """Publish one lookup's probe count (no-op when obs is off)."""
        observe("repro_serve_index_probes", float(count))
