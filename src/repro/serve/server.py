"""The statistics server: synchronous core + asyncio JSON-lines front end.

:class:`StatsServer` is the transport-free core — ``handle(request)``
takes one protocol request (a dict) and returns one response (a dict).
In-process callers (the load generator, the bench scenarios, tests) call
it directly from any number of threads; the asyncio front end
(:func:`serve_forever`) wraps it in a JSON-lines-over-TCP loop, running
handlers in worker threads so a slow ANALYZE never stalls the event loop.

Determinism: every ANALYZE executed by the server draws its RNG from
``(server seed, table name, column name, build number)`` — *not* from
request arrival order — so the statistics that end up in the catalog are a
pure function of the request multiset.  That is what makes the load
generator's logical summaries bit-identical across client counts.

Degraded-mode serving: when admission control sheds a build, the server
answers from the last-known-good bundle (cache or catalog) flagged
``degraded``, mirroring :func:`repro.engine.resilience.build_or_fallback`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import zlib

import numpy as np

from ..durability import CatalogStore
from ..engine.maintenance import AutoStatistics, RefreshPolicy
from ..engine.statistics import ColumnStatistics, StatisticsManager
from ..engine.table import Table
from ..exceptions import ReproError, StatisticsNotFoundError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .admission import AdmissionController, AdmissionDecision
from .cache import CacheEntry, StatsCache
from .protocol import SHUTDOWN_OP, ProtocolError, validate_request
from .telemetry import ServerTelemetry

__all__ = ["ServerOverloadError", "StatsServer", "serve_forever"]

#: Build parameters used for cold builds triggered by estimate endpoints
#: (an explicit ``analyze`` request can override any of them via `params`).
DEFAULT_BUILD_PARAMS: dict = {"k": 64, "f": 0.1, "gamma": 0.05}


class ServerOverloadError(ReproError):
    """Build shed by admission control with no last-known-good to serve."""


class StatsServer:
    """Multi-tenant statistics server over a set of in-memory tables.

    Parameters
    ----------
    tables:
        Mapping of table name to :class:`~repro.engine.table.Table`; more
        can be registered later with :meth:`add_table`.
    seed:
        Root seed for every server-side ANALYZE (see module docstring).
    cache_capacity:
        LRU capacity (columns) of the serving cache.
    policy:
        Staleness policy forwarded to :class:`AutoStatistics`.
    admission:
        Admission controller for ANALYZE builds (default: 2 in-flight,
        queue of 8).
    store:
        Optional :class:`~repro.durability.CatalogStore` (or a directory
        path for one).  Statistics are then journaled crash-safely and the
        server **warm-starts**: bundles recovered from the store serve
        immediately, no rebuild needed.
    build_params:
        Default ANALYZE parameters for cold builds (merged under
        :data:`DEFAULT_BUILD_PARAMS`).
    telemetry:
        Live telemetry (docs/TELEMETRY.md), **off by default**.  Pass
        ``True`` for a default-configured
        :class:`~repro.serve.telemetry.ServerTelemetry`, or a
        pre-configured instance.  When off, the request path pays one
        attribute check and the ``stats``/``watch`` endpoints answer
        ``enabled: false``.
    """

    def __init__(
        self,
        tables: dict[str, Table] | None = None,
        *,
        seed: int = 0,
        cache_capacity: int = 128,
        policy: RefreshPolicy | None = None,
        admission: AdmissionController | None = None,
        store: CatalogStore | str | None = None,
        build_params: dict | None = None,
        telemetry: ServerTelemetry | bool | None = None,
    ):
        """Wire the engine stack (catalog → manager → autostats → cache)."""
        self.seed = int(seed)
        self.store = None
        if store is not None:
            self.store = (
                store if isinstance(store, CatalogStore)
                else CatalogStore(store)
            )
        manager = StatisticsManager(
            catalog=self.store.catalog if self.store is not None else None
        )
        self.auto = AutoStatistics(manager, policy)
        self.cache = StatsCache(self.auto, capacity=cache_capacity)
        self.admission = admission or AdmissionController()
        self.tables: dict[str, Table] = dict(tables or {})
        self.build_params = dict(DEFAULT_BUILD_PARAMS)
        self.build_params.update(build_params or {})
        self.request_counts: dict[str, int] = {}
        self.degraded_served = 0
        self.uptime_requests = 0
        self._counts_lock = threading.Lock()
        if telemetry is True:
            telemetry = ServerTelemetry()
        self.telemetry: ServerTelemetry | None = telemetry or None
        if self.telemetry is not None:
            # Observation-only listeners: cache and admission events feed
            # the windowed series without the server polling counters.
            self.cache.listener = self.telemetry.record_event
            self.admission.listener = self.telemetry.record_event

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_table(self, table: Table) -> None:
        """Register *table* for serving (replaces any same-named table)."""
        self.tables[table.name] = table

    def _table(self, name: str) -> Table:
        """Resolve a table name or raise the protocol's not-found error."""
        table = self.tables.get(name)
        if table is None:
            raise StatisticsNotFoundError(
                f"unknown table {name!r}; serving: {sorted(self.tables)}"
            )
        return table

    # ------------------------------------------------------------------
    # Deterministic build RNG
    # ------------------------------------------------------------------

    def _build_rng(self, table_name: str, column_name: str) -> np.random.Generator:
        """RNG for the *next* build of one column.

        Seeded by ``(seed, crc32(table), crc32(column), build#)`` where
        ``build#`` is the catalog version the build will create — a pure
        function of how many builds preceded it on this column, never of
        which client or thread triggered it.
        """
        version = self.auto.manager.catalog.version(table_name, column_name)
        return np.random.default_rng(
            [
                self.seed,
                zlib.crc32(table_name.encode()),
                zlib.crc32(column_name.encode()),
                version + 1,
            ]
        )

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def handle(self, request: object) -> dict:
        """Answer one protocol request; never raises on bad input.

        Thread-safe: the TCP front end and the load generator call this
        from many threads concurrently.
        """
        try:
            op, fields = validate_request(request)
        except ProtocolError as exc:
            return {
                "ok": False, "op": None,
                "error": str(exc), "code": "ProtocolError",
            }
        telemetry = self.telemetry
        if telemetry is not None:
            tick = telemetry.begin_request()
            started = time.perf_counter()  # repro: noqa[DET002] telemetry-only timing
        self._count(op)
        with _trace.span("serve.request", op=op) as span:
            try:
                result = self._dispatch(op, fields)
            except ReproError as exc:
                span.set(outcome="error")
                if telemetry is not None:
                    telemetry.end_request(
                        tick,
                        time.perf_counter() - started,  # repro: noqa[DET002] telemetry-only timing
                        error=True,
                    )
                return {
                    "ok": False, "op": op,
                    "error": str(exc), "code": type(exc).__name__,
                }
            span.set(outcome="ok")
            if telemetry is not None:
                telemetry.end_request(
                    tick,
                    time.perf_counter() - started,  # repro: noqa[DET002] telemetry-only timing
                )
            return {"ok": True, "op": op, "result": result}

    def _count(self, op: str) -> None:
        """Bump the per-endpoint request counters (plain + metric)."""
        with self._counts_lock:
            self.request_counts[op] = self.request_counts.get(op, 0) + 1
            uptime = self.uptime_requests = self.uptime_requests + 1
        _metrics.inc("repro_serve_requests_total", endpoint=op)
        _metrics.set_gauge("repro_serve_uptime_requests", float(uptime))

    def _dispatch(self, op: str, fields: dict) -> dict:
        """Route a validated request to its endpoint implementation."""
        if op == "ping":
            return {"pong": True}
        if op == "status":
            return self.status()
        if op == "modify":
            self.auto.record_modifications(
                fields["table"], fields["column"], fields["rows"]
            )
            return {"recorded": fields["rows"]}
        if op == "analyze":
            return self._handle_analyze(fields)
        if op == "stats":
            return self._handle_stats()
        if op == "health":
            return self._handle_health()
        if op == "watch":
            return self._handle_watch(fields.get("cursor", 0))
        return self._handle_estimate(op, fields)

    # -- ANALYZE -------------------------------------------------------

    def _handle_analyze(self, fields: dict) -> dict:
        """Admission-controlled explicit ANALYZE."""
        table = self._table(fields["table"])
        column = fields["column"]
        params = dict(self.build_params)
        params.update(fields.get("params") or {})
        with self.admission.slot() as decision:
            if decision == AdmissionDecision.SHED:
                return self._degraded_answer(table.name, column)
            stats = self._build(table, column, params)
        entry = self.cache.install(stats)
        return {
            "summary": stats.summary(),
            "n": stats.n,
            "k": stats.histogram.k,
            "pages_read": stats.pages_read,
            "version": entry.version,
            "degraded": stats.degraded,
            "admission": decision,
        }

    def _build(self, table: Table, column: str, params: dict) -> ColumnStatistics:
        """Run one ANALYZE while holding an admission slot."""
        with _trace.span("serve.build", table=table.name, column=column):
            return self.auto.analyze(
                table, column, rng=self._build_rng(table.name, column),
                **params,
            )

    def _degraded_answer(self, table_name: str, column: str) -> dict:
        """Shed path: last-known-good bundle or an overload error."""
        entry = self.cache.peek(table_name, column)
        stats = entry.statistics if entry is not None else None
        if stats is None:
            try:
                stats = self.auto.manager.statistics(table_name, column)
            except StatisticsNotFoundError:
                raise ServerOverloadError(
                    f"build of {table_name}.{column} shed by admission "
                    "control and no previous statistics exist"
                ) from None
        with self._counts_lock:
            self.degraded_served += 1
        _metrics.inc("repro_serve_degraded_total")
        if self.telemetry is not None:
            self.telemetry.record_event("degraded")
        return {
            "summary": stats.summary(),
            "n": stats.n,
            "k": stats.histogram.k,
            "pages_read": 0,
            "version": self.auto.manager.catalog.version(table_name, column),
            "degraded": True,
            "admission": AdmissionDecision.SHED,
        }

    # -- Estimates -----------------------------------------------------

    def _serving_entry(self, table: Table, column: str) -> CacheEntry:
        """The serving bundle, cold-building (through admission) if needed."""
        rng = self._build_rng(table.name, column)
        try:
            return self.cache.lookup(table, column, rng=rng)
        except StatisticsNotFoundError:
            pass
        with self.admission.slot() as decision:
            if decision == AdmissionDecision.SHED:
                # No previous build can exist (lookup just failed), so the
                # degraded path reduces to the overload error.
                raise ServerOverloadError(
                    f"cold build of {table.name}.{column} shed by "
                    "admission control"
                )
            try:
                stats = self.auto.manager.statistics(table.name, column)
            except StatisticsNotFoundError:
                stats = self._build(table, column, dict(self.build_params))
        return self.cache.install(stats)

    def _handle_estimate(self, op: str, fields: dict) -> dict:
        """Answer one estimate endpoint from the serving bundle."""
        table = self._table(fields["table"])
        column = fields["column"]
        entry = self._serving_entry(table, column)
        stats = entry.statistics
        if stats.degraded:
            with self._counts_lock:
                self.degraded_served += 1
            _metrics.inc("repro_serve_degraded_total")
            if self.telemetry is not None:
                self.telemetry.record_event("degraded")
        if op == "estimate_range":
            lo, hi = float(fields["lo"]), float(fields["hi"])
            rows = entry.index.estimate_range(lo, hi)
            scale = (
                table.num_rows / entry.index.total
                if entry.index.total else 0.0
            )
            scaled = rows * scale
            return self._estimate_result(stats, entry, rows=scaled)
        if op == "estimate_equality":
            return self._estimate_result(
                stats, entry, rows=stats.estimate_equality(float(fields["value"]))
            )
        if op == "estimate_quantile":
            return self._estimate_result(
                stats, entry, value=entry.index.estimate_quantile(float(fields["q"]))
            )
        if op == "estimate_distinct":
            return self._estimate_result(
                stats, entry, distinct=float(stats.distinct_estimate)
            )
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    @staticmethod
    def _estimate_result(
        stats: ColumnStatistics, entry: CacheEntry, **payload
    ) -> dict:
        """Common envelope for estimate responses."""
        payload.update(
            {
                "method": stats.method,
                "version": entry.version,
                "degraded": stats.degraded,
            }
        )
        return payload

    # -- Telemetry endpoints -------------------------------------------

    def _handle_stats(self) -> dict:
        """The ``stats`` endpoint: logical/wall-split telemetry snapshot.

        The ``logical`` half is interleaving-invariant — byte-identical
        across client counts for the same request multiset (the CI
        ``telemetry-smoke`` job diffs it, mirroring the loadgen summary
        contract); the ``wall`` half holds latency quantiles, per-window
        values, latency SLOs, and the shift verdict.
        """
        with self._counts_lock:
            requests = dict(sorted(self.request_counts.items()))
            degraded = self.degraded_served
            uptime = self.uptime_requests
        _metrics.set_gauge(
            "repro_serve_queue_depth", float(self.admission.queue_depth)
        )
        logical = {
            "uptime_requests": uptime,
            "requests": requests,
            "degraded_served": degraded,
            "cache": self.cache.counters(),
            "admission": self.admission.counters(),
            "queue_depth": self.admission.queue_depth,
            "catalog_columns": len(self.auto.manager.catalog),
            "telemetry": (
                self.telemetry.logical_summary()
                if self.telemetry is not None
                else {"enabled": False}
            ),
        }
        wall = (
            self.telemetry.wall_summary()
            if self.telemetry is not None
            else {}
        )
        return {"logical": logical, "wall": wall}

    def _handle_health(self) -> dict:
        """The ``health`` endpoint: ok until a declared SLO is burning."""
        burning = (
            self.telemetry.burning() if self.telemetry is not None else []
        )
        with self._counts_lock:
            uptime = self.uptime_requests
        return {
            "status": "degraded" if burning else "ok",
            "burning": burning,
            "uptime_requests": uptime,
            "tables": len(self.tables),
            "telemetry_enabled": self.telemetry is not None,
        }

    def _handle_watch(self, cursor: int = 0) -> dict:
        """The ``watch`` endpoint: windows since *cursor* + next cursor."""
        if cursor < 0:
            raise ProtocolError(f"cursor must be >= 0, got {cursor}")
        if self.telemetry is None:
            return {
                "enabled": False, "clock": 0, "cursor": 0,
                "totals": {}, "windows": {},
            }
        return self.telemetry.watch_delta(cursor)

    # -- Status --------------------------------------------------------

    def status(self) -> dict:
        """Deterministic server snapshot (no clocks, no memory addresses)."""
        with self._counts_lock:
            requests = dict(sorted(self.request_counts.items()))
            degraded = self.degraded_served
            uptime = self.uptime_requests
        return {
            "uptime_requests": uptime,
            "telemetry_enabled": self.telemetry is not None,
            "tables": sorted(self.tables),
            "columns": {
                name: sorted(table.column_names)
                for name, table in sorted(self.tables.items())
            },
            "catalog_columns": len(self.auto.manager.catalog),
            "cached_columns": len(self.cache),
            "cache": self.cache.counters(),
            "admission": self.admission.counters(),
            "requests": requests,
            "degraded_served": degraded,
            "seed": self.seed,
            "durable": self.store is not None,
        }

    def checkpoint(self) -> None:
        """Flush the durable store (no-op for in-memory catalogs)."""
        if self.store is not None:
            self.store.checkpoint()


# ----------------------------------------------------------------------
# asyncio front end
# ----------------------------------------------------------------------


async def _client_loop(
    server: StatsServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stop: asyncio.Event,
) -> None:
    """Serve one TCP client: JSON request per line, JSON response per line."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except ValueError:
                response: dict = {
                    "ok": False, "op": None,
                    "error": "request is not valid JSON",
                    "code": "ProtocolError",
                }
            else:
                if (
                    isinstance(request, dict)
                    and request.get("op") == SHUTDOWN_OP
                ):
                    writer.write(_encode({"ok": True, "op": SHUTDOWN_OP,
                                          "result": {"stopping": True}}))
                    await writer.drain()
                    stop.set()
                    break
                response = await asyncio.to_thread(server.handle, request)
            writer.write(_encode(response))
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # client vanished mid-close
            pass


def _encode(response: dict) -> bytes:
    """One byte-stable JSON line (sorted keys, no whitespace variance)."""
    return (
        json.dumps(response, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


async def _serve_async(
    server: StatsServer, host: str, port: int, ready_path: str | None
) -> None:
    """Accept loop: runs until a shutdown op arrives."""
    stop = asyncio.Event()

    async def _on_connect(reader, writer):
        """Spawn the per-client loop for one accepted connection."""
        await _client_loop(server, reader, writer, stop)

    tcp = await asyncio.start_server(_on_connect, host=host, port=port)
    bound = tcp.sockets[0].getsockname()
    announce = f"SERVE_READY {bound[0]} {bound[1]}"
    print(announce, flush=True)
    if ready_path is not None:
        from ..durability import atomic_write_text

        # fsync + rename off the event loop: a slow disk must not stall
        # the accept loop while clients are already connecting.
        await asyncio.to_thread(atomic_write_text, ready_path, announce + "\n")
    async with tcp:
        await stop.wait()
    await asyncio.to_thread(server.checkpoint)


def serve_forever(
    server: StatsServer,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_path: str | None = None,
) -> None:
    """Run the TCP front end until a client sends the shutdown op.

    ``port=0`` binds an ephemeral port; the bound address is printed as
    ``SERVE_READY <host> <port>`` (and written to *ready_path*, atomically,
    when given) so scripts can discover it.
    """
    asyncio.run(_serve_async(server, host, port, ready_path))
