"""The served request/response surface: declared endpoints + validation.

Requests and responses are JSON objects (one per line over the TCP
transport).  A request names its endpoint in ``op`` plus the endpoint's
declared fields; a response is::

    {"ok": true,  "op": <endpoint>, "result": <endpoint-specific object>}
    {"ok": false, "op": <endpoint>, "error": <message>, "code": <type>}

The endpoint table below is the single source of truth: the server
dispatches from it, the ``repro_serve_requests_total{endpoint=...}``
metric label set mirrors it, and ``docs/SERVING.md`` is diffed against it
by ``tests/serve/test_docs.py`` — an endpoint cannot be added, renamed or
re-typed without the doc (and this docstring's schema) moving in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError

__all__ = [
    "ProtocolError",
    "EndpointSpec",
    "ENDPOINTS",
    "SHUTDOWN_OP",
    "validate_request",
]


class ProtocolError(ReproError):
    """A malformed request: unknown op, missing field, or wrong type."""


@dataclass(frozen=True)
class EndpointSpec:
    """Declaration of one endpoint: name, required fields, and meaning.

    ``fields`` maps field name to the accepted Python types; every listed
    field is required (the ``params`` field of ``analyze`` is the one
    optional field, declared separately).
    """

    name: str
    fields: dict
    help: str


#: Optional-field declarations, keyed by endpoint name.
OPTIONAL_FIELDS: dict[str, dict] = {
    "analyze": {"params": dict},
    "watch": {"cursor": int},
}

_NUMERIC = (int, float)

#: Every request endpoint the server answers, keyed by op name.
ENDPOINTS: dict[str, EndpointSpec] = {
    spec.name: spec
    for spec in [
        EndpointSpec(
            "ping", {},
            "Liveness probe; returns \"pong\".",
        ),
        EndpointSpec(
            "status", {},
            "Server snapshot: tables served, cache and admission counters, "
            "request totals.",
        ),
        EndpointSpec(
            "analyze", {"table": str, "column": str},
            "Build (or rebuild) statistics for one column via the "
            "admission-controlled ANALYZE path; optional `params` forwards "
            "build parameters (k, f, gamma, method, ...).",
        ),
        EndpointSpec(
            "estimate_range", {"table": str, "column": str,
                               "lo": _NUMERIC, "hi": _NUMERIC},
            "Estimated row count in the closed range [lo, hi].",
        ),
        EndpointSpec(
            "estimate_equality", {"table": str, "column": str,
                                  "value": _NUMERIC},
            "Estimated row count equal to `value` (self-join density "
            "estimator).",
        ),
        EndpointSpec(
            "estimate_quantile", {"table": str, "column": str,
                                  "q": _NUMERIC},
            "Estimated column value at quantile q in [0, 1].",
        ),
        EndpointSpec(
            "estimate_distinct", {"table": str, "column": str},
            "Estimated number of distinct values (GEE, as built).",
        ),
        EndpointSpec(
            "modify", {"table": str, "column": str, "rows": int},
            "Report `rows` modified rows, feeding the staleness policy.",
        ),
        EndpointSpec(
            "stats", {},
            "Telemetry snapshot, split into a `logical` section "
            "(interleaving-invariant counters, series totals, error-rate "
            "SLOs) and a `wall` section (latency sketch quantiles, "
            "windows, latency SLOs, shift verdict).",
        ),
        EndpointSpec(
            "health", {},
            "Liveness + objective verdict: `ok` until a declared SLO "
            "has burned for `burn_windows` consecutive evaluations, "
            "then `degraded`.",
        ),
        EndpointSpec(
            "watch", {},
            "Incremental stats delta: telemetry windows with index >= "
            "the optional `cursor`, plus the next cursor to poll from "
            "(long-poll-free tailing over the same JSON-lines "
            "transport).",
        ),
    ]
}

#: Transport-level op: asks the TCP server to stop accepting and exit its
#: serve loop.  Not a statistics request — it bypasses the endpoint table
#: and the request metrics (documented in docs/SERVING.md).
SHUTDOWN_OP = "shutdown"


def validate_request(request: object) -> tuple[str, dict]:
    """Check *request* against the endpoint table; return ``(op, fields)``.

    ``fields`` holds exactly the declared (required + present optional)
    fields, so handlers can unpack without re-validating.  Raises
    :class:`ProtocolError` on any malformed input — the server maps that
    to an ``ok: false`` response rather than a dropped connection.
    """
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing the string field 'op'")
    spec = ENDPOINTS.get(op)
    if spec is None:
        known = ", ".join(sorted(ENDPOINTS))
        raise ProtocolError(f"unknown op {op!r}; expected one of: {known}")
    fields: dict = {}
    for field, types in spec.fields.items():
        if field not in request:
            raise ProtocolError(f"op {op!r} requires field {field!r}")
        value = request[field]
        if not isinstance(value, types) or isinstance(value, bool):
            raise ProtocolError(
                f"field {field!r} of op {op!r} has the wrong type "
                f"({type(value).__name__})"
            )
        fields[field] = value
    for field, types in OPTIONAL_FIELDS.get(op, {}).items():
        if field in request:
            value = request[field]
            if not isinstance(value, types) or isinstance(value, bool):
                raise ProtocolError(
                    f"field {field!r} of op {op!r} has the wrong type "
                    f"({type(value).__name__})"
                )
            fields[field] = value
    unknown = sorted(
        set(request) - {"op"} - set(spec.fields)
        - set(OPTIONAL_FIELDS.get(op, {}))
    )
    if unknown:
        raise ProtocolError(
            f"op {op!r} got unexpected fields: {', '.join(unknown)}"
        )
    return op, fields
