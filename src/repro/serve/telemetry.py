"""Per-server live telemetry: latency sketch, windowed series, SLOs.

:class:`ServerTelemetry` is the optional (off-by-default) aggregate a
:class:`~repro.serve.server.StatsServer` instruments its request path
with: one :class:`~repro.obs.live.StreamingQuantileSketch` over request
latencies, one :class:`~repro.obs.live.WindowedTimeseries` per declared
event series, and one :class:`~repro.obs.live.SloTracker`, all keyed by
the server's **logical request clock** (each handled request is one
tick).

The exported state is split along the same line as the load generator's
summary (docs/SERVING.md): :meth:`logical_summary` carries only
interleaving-invariant facts (clock, lifetime totals, error-rate SLO
state, objective declarations), so it is byte-identical across client
counts; :meth:`wall_summary` carries everything timing- or
interleaving-dependent (latency quantiles, per-window values, latency
SLO state, the shift verdict).  The CI ``telemetry-smoke`` job byte-diffs
only the logical side, mirroring the PR 8 serve-smoke contract.

Telemetry never consumes randomness and never changes an answer
(RNG-inert, proved by ``tests/serve/test_telemetry.py`` and re-proved by
the ``telemetry_overhead`` bench scenario); when disabled the request
path pays a single attribute check.
"""

from __future__ import annotations

import threading

from ..obs.live import (
    SloObjective,
    SloTracker,
    StreamingQuantileSketch,
    WindowedTimeseries,
    distribution_shift,
)

__all__ = ["DEFAULT_OBJECTIVES", "EVENT_SERIES", "ServerTelemetry"]

#: The declared objective set a server tracks unless told otherwise.
DEFAULT_OBJECTIVES: tuple[SloObjective, ...] = (
    SloObjective("latency_p50", "latency", threshold=0.05, quantile=0.50),
    SloObjective("latency_p99", "latency", threshold=0.25, quantile=0.99),
    SloObjective("error_rate", "error_rate", threshold=0.01),
)

#: Map from instrumentation event kind to its declared series name.
EVENT_SERIES: dict[str, str] = {
    "request": "serve_requests",
    "error": "serve_errors",
    "cache_hit": "serve_cache_hits",
    "cache_miss": "serve_cache_misses",
    "shed": "serve_sheds",
    "degraded": "serve_degraded",
}


class ServerTelemetry:
    """Live telemetry state for one server (thread-safe, logical-clocked).

    Parameters mirror the underlying primitives: the sketch grid
    (``bucket_budget`` log buckets over ``[min_domain, max_domain]``
    seconds), the ring geometry (``window_ticks`` requests per window,
    ``num_windows`` retained), the declared ``objectives`` with their
    ``burn_windows`` streak threshold, and the shift detector's
    ``shift_epsilon`` / ``shift_min_count`` guards.  The reference sketch
    for shift detection is frozen automatically the first time the live
    sketch reaches ``shift_min_count`` observations.
    """

    def __init__(
        self,
        *,
        bucket_budget: int = 64,
        min_domain: float = 1e-6,
        max_domain: float = 60.0,
        window_ticks: int = 64,
        num_windows: int = 8,
        objectives: tuple[SloObjective, ...] | None = None,
        burn_windows: int = 3,
        shift_epsilon: float = 0.25,
        shift_min_count: int = 64,
    ):
        self._lock = threading.Lock()
        self._clock = 0
        self.latency = StreamingQuantileSketch(
            "serve_request_latency",
            bucket_budget=bucket_budget,
            min_domain=min_domain,
            max_domain=max_domain,
        )
        self.reference: StreamingQuantileSketch | None = None
        self.series = {
            name: WindowedTimeseries(
                name, window_ticks=window_ticks, num_windows=num_windows
            )
            for name in sorted(set(EVENT_SERIES.values()))
        }
        self.slo = SloTracker(
            objectives if objectives is not None else DEFAULT_OBJECTIVES,
            burn_windows=burn_windows,
        )
        self._window_ticks = int(window_ticks)
        self._num_windows = int(num_windows)
        self._shift_epsilon = float(shift_epsilon)
        self._shift_min_count = int(shift_min_count)

    # ------------------------------------------------------------------
    # Instrumentation hooks (called from the server's request path)
    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        """The logical request clock (requests started so far)."""
        with self._lock:
            return self._clock

    @property
    def window_index(self) -> int:
        """Index of the window containing the current clock."""
        with self._lock:
            return self._clock // self._window_ticks

    def begin_request(self) -> int:
        """Tick the logical clock for one arriving request; return it."""
        with self._lock:
            self._clock += 1
            return self._clock

    def end_request(
        self, tick: int, latency_s: float, *, error: bool = False
    ) -> None:
        """Fold one finished request in at its arrival *tick*."""
        with self._lock:
            self.series["serve_requests"].record(1.0, tick=tick)
            if error:
                self.series["serve_errors"].record(1.0, tick=tick)
            else:
                self.series["serve_errors"].advance(tick)
            self.latency.observe(max(0.0, float(latency_s)))
            if (
                self.reference is None
                and self.latency.count >= self._shift_min_count
            ):
                self.reference = self.latency.copy(
                    name="serve_reference_latency"
                )

    def record_event(self, kind: str) -> None:
        """Record one *kind* event (see :data:`EVENT_SERIES`) at the clock.

        Unknown kinds are ignored rather than raised: the hook is called
        from cache/admission listeners that must never take the serving
        path down.
        """
        name = EVENT_SERIES.get(kind)
        if name is None:
            return
        with self._lock:
            self.series[name].record(1.0, tick=self._clock)

    # ------------------------------------------------------------------
    # Exports — the stats/watch payload halves
    # ------------------------------------------------------------------

    def config(self) -> dict:
        """The declared telemetry configuration (logical, byte-stable)."""
        return {
            "sketch": self.latency.config(),
            "window_ticks": self._window_ticks,
            "num_windows": self._num_windows,
            "burn_windows": self.slo.burn_windows,
            "shift_epsilon": self._shift_epsilon,
            "shift_min_count": self._shift_min_count,
            "objectives": [
                objective.to_dict()
                for objective in sorted(
                    self.slo.objectives, key=lambda o: o.name
                )
            ],
        }

    def logical_summary(self) -> dict:
        """Interleaving-invariant telemetry: safe to byte-diff across runs.

        Evaluating here also advances the error-rate burn streaks — one
        evaluation per ``stats`` request, itself a logical event.
        """
        with self._lock:
            requests = self.series["serve_requests"].total
            errors = self.series["serve_errors"].total
            verdicts = self.slo.evaluate(
                latency_sketch=None, requests=requests, errors=errors
            )
            return {
                "enabled": True,
                "clock": self._clock,
                "config": self.config(),
                "series_totals": {
                    name: series.total
                    for name, series in sorted(self.series.items())
                },
                "latency_count": self.latency.count,
                "slo": [v for v in verdicts if v["kind"] == "error_rate"],
            }

    def wall_summary(self) -> dict:
        """Timing/interleaving-dependent telemetry (never byte-diffed)."""
        with self._lock:
            latency: dict = {"count": self.latency.count}
            if self.latency.count:
                latency.update(self.latency.percentiles())
                latency["min"] = self.latency.min
                latency["max"] = self.latency.max
            verdicts = self.slo.evaluate(
                latency_sketch=self.latency if self.latency.count else None
            )
            shift: dict = {"evaluated": False, "reference_frozen": False}
            if self.reference is not None:
                shift = {
                    **distribution_shift(
                        self.latency,
                        self.reference,
                        epsilon=self._shift_epsilon,
                        min_count=self._shift_min_count,
                    ),
                    "reference_frozen": True,
                }
            return {
                "latency": latency,
                "windows": {
                    name: series.windows()
                    for name, series in sorted(self.series.items())
                },
                "slo": [v for v in verdicts if v["kind"] == "latency"],
                "shift": shift,
            }

    def watch_delta(self, cursor: int = 0) -> dict:
        """Windows with index >= *cursor*, plus the next cursor to poll.

        The cursor is a window index over the logical clock, so two
        clients polling the same request stream see the same cursor
        progression; the per-window *values* are interleaving-dependent
        and sit beside the invariant ``totals``.
        """
        with self._lock:
            window_index = self._clock // self._window_ticks
            return {
                "enabled": True,
                "clock": self._clock,
                "window_ticks": self._window_ticks,
                "cursor": window_index + 1,
                "totals": {
                    name: series.total
                    for name, series in sorted(self.series.items())
                },
                "windows": {
                    name: series.windows_since(cursor)
                    for name, series in sorted(self.series.items())
                },
            }

    def burning(self) -> list[str]:
        """Objective names currently burning (drives ``health``)."""
        with self._lock:
            return self.slo.burning()
