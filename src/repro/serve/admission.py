"""Admission control for ANALYZE builds: bounded in-flight work + queue.

A statistics server must not let a burst of cold columns or a modification
wave fan out into unbounded concurrent table scans.  The controller here
implements the classic three-state policy:

- **admitted** — an in-flight slot was free; the build runs now.
- **queued** — all slots busy but the wait queue has room; the caller
  blocks (bounded by ``timeout``) until a slot frees up, then runs.
- **shed** — slots and queue both full (or the queue wait timed out); the
  build is refused and the server falls back to degraded-mode serving
  (last-known-good statistics via :meth:`repro.serve.cache.StatsCache.peek`
  and :func:`repro.engine.resilience.mark_degraded` semantics).

The controller is plain ``threading`` — the asyncio front end runs builds
in worker threads (``asyncio.to_thread``), so one implementation serves
both the TCP server and in-process load generators.  Decision counters are
plain integers; under a sequential workload they are fully deterministic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from ..exceptions import ParameterError
from ..obs.metrics import inc, set_gauge

__all__ = ["AdmissionDecision", "AdmissionController"]


class AdmissionDecision:
    """The three admission outcomes (string constants)."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    SHED = "shed"


class AdmissionController:
    """Bounded in-flight builds with a bounded wait queue.

    Parameters
    ----------
    max_inflight:
        Builds allowed to execute concurrently.
    max_queue:
        Callers allowed to wait for a slot; arrivals beyond this are shed.
    timeout:
        Seconds a queued caller waits before giving up (shed).  ``None``
        waits indefinitely.
    """

    def __init__(
        self,
        max_inflight: int = 2,
        max_queue: int = 8,
        timeout: float | None = 30.0,
    ):
        """Validate limits and initialise the condition variable."""
        if max_inflight < 1:
            raise ParameterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ParameterError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout = timeout
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        #: Optional observation hook ``listener(kind)`` — the server wires
        #: live telemetry in here (``kind="shed"`` on every shed decision).
        #: Must never raise; it is called with the controller lock held.
        self.listener = None

    # ------------------------------------------------------------------
    # Slot protocol
    # ------------------------------------------------------------------

    def try_acquire(self) -> str:
        """Request a build slot; returns the admission decision.

        On ``admitted``/``queued`` the caller holds a slot and **must**
        call :meth:`release` when the build finishes; on ``shed`` it holds
        nothing.  Prefer the :meth:`slot` context manager.
        """
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self.admitted += 1
                self._publish()
                inc("repro_serve_admission_total", decision="admitted")
                return AdmissionDecision.ADMITTED
            if self._queued >= self.max_queue:
                self.shed += 1
                inc("repro_serve_admission_total", decision="shed")
                self._notify_shed()
                return AdmissionDecision.SHED
            self._queued += 1
            self._publish()
            try:
                got = self._cond.wait_for(
                    lambda: self._inflight < self.max_inflight,
                    timeout=self.timeout,
                )
            finally:
                self._queued -= 1
                self._publish()
            if not got:
                self.shed += 1
                inc("repro_serve_admission_total", decision="shed")
                self._notify_shed()
                return AdmissionDecision.SHED
            self._inflight += 1
            self.queued += 1
            self._publish()
            inc("repro_serve_admission_total", decision="queued")
            return AdmissionDecision.QUEUED

    def release(self) -> None:
        """Return a held slot and wake one queued waiter."""
        with self._cond:
            if self._inflight <= 0:
                raise ParameterError("release() without a held slot")
            self._inflight -= 1
            self._publish()
            self._cond.notify()

    @contextmanager
    def slot(self) -> Iterator[str]:
        """Context manager over :meth:`try_acquire`/:meth:`release`.

        Yields the decision; releases the slot on exit unless shed::

            with controller.slot() as decision:
                if decision == AdmissionDecision.SHED:
                    ...  # degrade
                else:
                    ...  # run the build
        """
        decision = self.try_acquire()
        try:
            yield decision
        finally:
            if decision != AdmissionDecision.SHED:
                self.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _publish(self) -> None:
        """Mirror in-flight/queue levels to gauges (no-op when obs is off)."""
        set_gauge("repro_serve_inflight_builds", float(self._inflight))
        set_gauge("repro_serve_queue_depth", float(self._queued))

    def _notify_shed(self) -> None:
        """Tell the telemetry listener (if any) about one shed decision."""
        if self.listener is not None:
            self.listener("shed")

    @property
    def inflight(self) -> int:
        """Builds currently holding a slot."""
        with self._cond:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        """Callers currently waiting in the admission queue."""
        with self._cond:
            return self._queued

    def counters(self) -> dict[str, int]:
        """Decision totals (admitted/queued/shed) since construction."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "queued": self.queued,
                "shed": self.shed,
            }
