"""Non-Zipfian value-set generators used in experiments and tests.

All generators return a numpy array of ``n`` integer (or float) attribute
values — the multiset ``V`` of the paper.  Order within the returned array is
domain order; physical placement is decided later by the storage layout.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError

__all__ = [
    "all_distinct",
    "uniform_with_duplicates",
    "uniform_random",
    "normal_values",
    "bimodal_values",
    "self_similar_counts",
    "self_similar_value_set",
    "multiset_from_counts",
]


def all_distinct(n: int, start: int = 1, spacing: int = 1) -> np.ndarray:
    """``n`` fully distinct integer values ``start, start+spacing, ...``.

    This is the duplicate-free setting assumed throughout Sections 2-4 of the
    paper: a perfect equi-height histogram always exists (up to rounding).
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if spacing <= 0:
        raise ParameterError(f"spacing must be positive, got {spacing}")
    return start + spacing * np.arange(n, dtype=np.int64)


def uniform_with_duplicates(n: int, duplicates_per_value: int) -> np.ndarray:
    """The paper's *Unif/Dup* distribution: every value occurs exactly
    *duplicates_per_value* times.

    Section 7.2 uses 100,000 distinct values each occurring 100 times
    (n = 10M).  ``n`` must be divisible by *duplicates_per_value*.
    """
    if duplicates_per_value <= 0:
        raise ParameterError(
            f"duplicates_per_value must be positive, got {duplicates_per_value}"
        )
    if n % duplicates_per_value != 0:
        raise ParameterError(
            f"n={n} is not divisible by duplicates_per_value={duplicates_per_value}"
        )
    num_distinct = n // duplicates_per_value
    domain = np.arange(1, num_distinct + 1, dtype=np.int64)
    return np.repeat(domain, duplicates_per_value)


def uniform_random(
    n: int, low: int = 0, high: int = 2**31, rng: RngLike = None
) -> np.ndarray:
    """``n`` integers drawn uniformly at random from ``[low, high)``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if high <= low:
        raise ParameterError(f"need high > low, got [{low}, {high})")
    generator = ensure_rng(rng)
    return generator.integers(low, high, size=n, dtype=np.int64)


def normal_values(
    n: int, mean: float = 0.0, std: float = 1.0, rng: RngLike = None
) -> np.ndarray:
    """``n`` floats from a normal distribution — a smooth unimodal test case."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if std <= 0:
        raise ParameterError(f"std must be positive, got {std}")
    generator = ensure_rng(rng)
    return generator.normal(mean, std, size=n)


def bimodal_values(
    n: int,
    centers: tuple[float, float] = (0.0, 100.0),
    stds: tuple[float, float] = (1.0, 1.0),
    weight: float = 0.5,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` floats from a two-component Gaussian mixture.

    A classic stress case for histograms: the empty valley between modes is
    where equi-width buckets waste resolution and where intra-bucket
    uniformity assumptions break.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 <= weight <= 1.0:
        raise ParameterError(f"weight must be in [0, 1], got {weight}")
    if stds[0] <= 0 or stds[1] <= 0:
        raise ParameterError(f"stds must be positive, got {stds}")
    generator = ensure_rng(rng)
    from_first = generator.random(n) < weight
    out = np.where(
        from_first,
        generator.normal(centers[0], stds[0], size=n),
        generator.normal(centers[1], stds[1], size=n),
    )
    return out


def self_similar_counts(n: int, num_distinct: int, h: float = 0.2) -> np.ndarray:
    """Frequency vector of the 80-20-style self-similar distribution.

    The first fraction *h* of the values receives fraction ``1-h`` of the
    tuples, recursively.  ``h=0.2`` is the classic 80-20 rule; ``h=0.5`` is
    uniform.  Counts are produced by recursive largest-half splitting and sum
    to exactly *n*.
    """
    if not 0 < h <= 0.5:
        raise ParameterError(f"h must be in (0, 0.5], got {h}")
    if num_distinct <= 0:
        raise ParameterError(f"num_distinct must be positive, got {num_distinct}")
    counts = np.zeros(num_distinct, dtype=np.int64)

    def split(lo: int, hi: int, tuples: int) -> None:
        width = hi - lo
        if tuples <= 0:
            return
        if width == 1:
            counts[lo] += tuples
            return
        head_width = max(1, int(round(width * h)))
        if head_width >= width:
            head_width = width - 1
        head_tuples = int(round(tuples * (1.0 - h)))
        split(lo, lo + head_width, head_tuples)
        split(lo + head_width, hi, tuples - head_tuples)

    split(0, num_distinct, n)
    return counts


def self_similar_value_set(
    n: int, num_distinct: int, h: float = 0.2, rng: RngLike = None
) -> np.ndarray:
    """Materialise a self-similar multiset; see :func:`self_similar_counts`."""
    counts = self_similar_counts(n, num_distinct, h)
    domain = np.arange(1, num_distinct + 1, dtype=np.int64)
    if rng is not None:
        generator = ensure_rng(rng)
        counts = counts[generator.permutation(num_distinct)]
    return np.repeat(domain, counts)


def multiset_from_counts(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand parallel ``(values, counts)`` arrays into a flat multiset."""
    values = np.asarray(values)
    counts = np.asarray(counts)
    if values.shape != counts.shape:
        raise ParameterError(
            f"values and counts must align, got {values.shape} vs {counts.shape}"
        )
    if (counts < 0).any():
        raise ParameterError("counts must be non-negative")
    return np.repeat(values, counts)
