"""Workload generation: experiment datasets and query workloads.

The paper's evaluation (Section 7) uses Zipf data with varying skew, the
Unif/Dup distribution, varying table sizes and record sizes, and range-query
probes.  Everything here is deterministic given a seed.
"""

from .datasets import DATASET_NAMES, Dataset, make_dataset
from .distributions import (
    all_distinct,
    bimodal_values,
    multiset_from_counts,
    normal_values,
    self_similar_counts,
    self_similar_value_set,
    uniform_random,
    uniform_with_duplicates,
)
from .queries import (
    RangeQuery,
    fixed_selectivity_queries,
    random_range_queries,
    true_range_count,
)
from .zipf import sample_zipf, zipf_counts, zipf_value_set, zipf_weights

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "make_dataset",
    "all_distinct",
    "bimodal_values",
    "multiset_from_counts",
    "normal_values",
    "self_similar_counts",
    "self_similar_value_set",
    "uniform_random",
    "uniform_with_duplicates",
    "RangeQuery",
    "fixed_selectivity_queries",
    "random_range_queries",
    "true_range_count",
    "sample_zipf",
    "zipf_counts",
    "zipf_value_set",
    "zipf_weights",
]
