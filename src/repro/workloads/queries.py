"""Range-query workload generation.

Section 2 of the paper measures histogram quality through the lens of range
queries ``X in [lo, hi]``.  This module provides the query object, the exact
(ground truth) evaluator, and generators for random and fixed-output-size
query workloads (the latter matching the paper's ``s = t*n/k`` analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import EmptyDataError, ParameterError

__all__ = [
    "RangeQuery",
    "true_range_count",
    "random_range_queries",
    "fixed_selectivity_queries",
]


@dataclass(frozen=True)
class RangeQuery:
    """A closed-interval range predicate ``lo <= X <= hi``."""

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ParameterError(f"need lo <= hi, got [{self.lo}, {self.hi}]")

    def selects(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of the values matched by this predicate."""
        values = np.asarray(values)
        return (values >= self.lo) & (values <= self.hi)


def true_range_count(sorted_values: np.ndarray, query: RangeQuery) -> int:
    """Exact output size of *query* against a **sorted** value array.

    Runs in O(log n) via binary search; this is the ground truth that
    histogram-based estimates are compared against.
    """
    sorted_values = np.asarray(sorted_values)
    lo_idx = int(np.searchsorted(sorted_values, query.lo, side="left"))
    hi_idx = int(np.searchsorted(sorted_values, query.hi, side="right"))
    return hi_idx - lo_idx


def random_range_queries(
    sorted_values: np.ndarray, count: int, rng: RngLike = None
) -> list[RangeQuery]:
    """*count* queries with endpoints drawn uniformly from the value domain.

    Endpoints are drawn from the observed min/max range, then ordered.  This
    exercises buckets of all widths, including empty ranges.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    sorted_values = np.asarray(sorted_values)
    if sorted_values.size == 0:
        raise EmptyDataError("cannot generate queries over an empty value set")
    generator = ensure_rng(rng)
    lo, hi = float(sorted_values[0]), float(sorted_values[-1])
    endpoints = generator.uniform(lo, hi, size=(count, 2))
    endpoints.sort(axis=1)
    return [RangeQuery(float(a), float(b)) for a, b in endpoints]


def fixed_selectivity_queries(
    sorted_values: np.ndarray,
    output_size: int,
    count: int,
    rng: RngLike = None,
) -> list[RangeQuery]:
    """*count* queries each returning exactly *output_size* tuples.

    Mirrors the paper's analysis of queries with output size ``s = t*n/k``:
    a random start offset is chosen and the query spans the values at
    positions ``[start, start + output_size)`` in sorted order.  Endpoints are
    placed on the boundary values themselves, so the true count can exceed
    *output_size* only when duplicates straddle the boundary.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    sorted_values = np.asarray(sorted_values)
    n = sorted_values.size
    if n == 0:
        raise EmptyDataError("cannot generate queries over an empty value set")
    if not 1 <= output_size <= n:
        raise ParameterError(
            f"output_size must be in [1, {n}], got {output_size}"
        )
    generator = ensure_rng(rng)
    starts = generator.integers(0, n - output_size + 1, size=count)
    queries = []
    for start in starts:
        lo = float(sorted_values[start])
        hi = float(sorted_values[start + output_size - 1])
        queries.append(RangeQuery(lo, hi))
    return queries
