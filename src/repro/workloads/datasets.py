"""Named dataset factory for the paper's experiments.

Section 7 of the paper evaluates on Zipf distributions with Z in {0, 2, 4} and
on the *Unif/Dup* distribution (every value occurring a fixed number of
times).  :func:`make_dataset` produces those by name so benchmarks, tests and
examples share one definition of each workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import RngLike
from ..exceptions import ParameterError
from . import distributions, zipf

__all__ = ["Dataset", "make_dataset", "DATASET_NAMES"]

#: Default universe size for Zipf datasets, as a fraction of n.  At n = 10^7
#: and Z = 2 the paper's realised distinct count was 6,101; a universe of
#: n/100 with largest-remainder rounding lands in the same regime (the far
#: tail rounds to zero for skewed Z).
_ZIPF_UNIVERSE_FRACTION = 0.01

DATASET_NAMES = (
    "zipf0",
    "zipf1",
    "zipf2",
    "zipf3",
    "zipf4",
    "unif_dup",
    "all_distinct",
    "self_similar",
    "normal",
    "bimodal",
)


@dataclass(frozen=True)
class Dataset:
    """A generated value set plus its provenance.

    Attributes
    ----------
    name:
        The factory name this dataset was built from.
    values:
        The multiset ``V`` in domain order (sorted ascending).
    params:
        The resolved generation parameters, for reporting.
    """

    name: str
    values: np.ndarray
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of tuples."""
        return int(self.values.size)

    @property
    def num_distinct(self) -> int:
        """Realised number of distinct values."""
        return int(np.unique(self.values).size)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: n={self.n:,}, distinct={self.num_distinct:,}, "
            f"params={self.params}"
        )


def make_dataset(
    name: str,
    n: int,
    rng: RngLike = None,
    **overrides,
) -> Dataset:
    """Build one of the named experiment datasets with *n* tuples.

    Supported names (see :data:`DATASET_NAMES`):

    - ``zipf0`` .. ``zipf4`` — Zipf with Z equal to the trailing digit.
      Override ``num_distinct`` to change the universe (default ``n/100``).
    - ``unif_dup`` — every value occurs ``duplicates_per_value`` times
      (default 100), the paper's Unif/Dup distribution.
    - ``all_distinct`` — fully duplicate-free integers.
    - ``self_similar`` — 80-20 self-similar distribution (override ``h``).
    - ``normal`` — rounded normal values (override ``mean``, ``std``).
    - ``bimodal`` — two-mode Gaussian mixture (override ``separation``,
      ``weight``, ``scale``) — a stress case for bucket placement.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ParameterError(
            f"unknown dataset {name!r}; choose one of {DATASET_NAMES}"
        )
    values, params = builder(n, rng, overrides)
    if overrides:
        raise ParameterError(
            f"unsupported overrides for dataset {name!r}: {sorted(overrides)}"
        )
    values = np.sort(values)
    return Dataset(name=name, values=values, params=params)


def _default_zipf_universe(n: int) -> int:
    return max(16, int(n * _ZIPF_UNIVERSE_FRACTION))


def _build_zipf(z: float):
    def build(n: int, rng: RngLike, overrides: dict):
        num_distinct = int(overrides.pop("num_distinct", _default_zipf_universe(n)))
        permute = bool(overrides.pop("permute_values", True))
        values = zipf.zipf_value_set(
            n, num_distinct, z, rng=rng, permute_values=permute
        )
        return values, {"z": z, "num_distinct": num_distinct}

    return build


def _build_unif_dup(n: int, rng: RngLike, overrides: dict):
    duplicates = int(overrides.pop("duplicates_per_value", 100))
    values = distributions.uniform_with_duplicates(n, duplicates)
    return values, {"duplicates_per_value": duplicates}


def _build_all_distinct(n: int, rng: RngLike, overrides: dict):
    spacing = int(overrides.pop("spacing", 1))
    values = distributions.all_distinct(n, spacing=spacing)
    return values, {"spacing": spacing}


def _build_self_similar(n: int, rng: RngLike, overrides: dict):
    h = float(overrides.pop("h", 0.2))
    num_distinct = int(overrides.pop("num_distinct", _default_zipf_universe(n)))
    values = distributions.self_similar_value_set(n, num_distinct, h, rng=rng)
    return values, {"h": h, "num_distinct": num_distinct}


def _build_bimodal(n: int, rng: RngLike, overrides: dict):
    separation = float(overrides.pop("separation", 100.0))
    weight = float(overrides.pop("weight", 0.5))
    scale = float(overrides.pop("scale", 100.0))
    raw = distributions.bimodal_values(
        n, centers=(0.0, separation), weight=weight, rng=rng
    )
    values = np.round(raw * scale).astype(np.int64)
    return values, {"separation": separation, "weight": weight, "scale": scale}


def _build_normal(n: int, rng: RngLike, overrides: dict):
    mean = float(overrides.pop("mean", 0.0))
    std = float(overrides.pop("std", 1.0))
    scale = float(overrides.pop("scale", 10_000.0))
    raw = distributions.normal_values(n, mean, std, rng=rng)
    values = np.round(raw * scale).astype(np.int64)
    return values, {"mean": mean, "std": std, "scale": scale}


_BUILDERS = {
    "zipf0": _build_zipf(0.0),
    "zipf1": _build_zipf(1.0),
    "zipf2": _build_zipf(2.0),
    "zipf3": _build_zipf(3.0),
    "zipf4": _build_zipf(4.0),
    "unif_dup": _build_unif_dup,
    "all_distinct": _build_all_distinct,
    "self_similar": _build_self_similar,
    "normal": _build_normal,
    "bimodal": _build_bimodal,
}
