"""Zipfian data generation.

The paper's experiments (Section 7.1) generate attribute values from Zipf
distributions with skew parameter ``Z`` between 0 (uniform) and 4 (highly
skewed).  A Zipf distribution over a universe of ``D`` distinct values assigns
the value of rank ``t`` a probability proportional to ``1 / t**Z``.

Two generation modes are provided:

``zipf_counts``
    The deterministic frequency vector: exactly ``n`` tuples split across the
    universe by largest-remainder rounding of the ideal Zipf probabilities.
    This is how the experiment datasets are built, so dataset shape does not
    vary run-to-run (only layout and sampling are randomised).

``sample_zipf``
    ``n`` i.i.d. draws from the Zipf probability vector, for tests and
    workloads that want sampling noise in the data itself.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError

__all__ = [
    "zipf_weights",
    "zipf_counts",
    "zipf_value_set",
    "sample_zipf",
]


def zipf_weights(num_distinct: int, z: float) -> np.ndarray:
    """Return the normalised Zipf probability vector of length *num_distinct*.

    Entry ``t`` (0-based) has probability proportional to ``1 / (t+1)**z``.
    ``z = 0`` degenerates to the uniform distribution.
    """
    if num_distinct <= 0:
        raise ParameterError(f"num_distinct must be positive, got {num_distinct}")
    if z < 0:
        raise ParameterError(f"Zipf parameter z must be non-negative, got {z}")
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    weights = ranks ** (-float(z))
    return weights / weights.sum()


def zipf_counts(n: int, num_distinct: int, z: float) -> np.ndarray:
    """Split *n* tuples across *num_distinct* values by ideal Zipf frequency.

    Uses largest-remainder rounding so the counts sum to exactly *n*.  Counts
    of zero are possible for the far tail of a highly skewed distribution;
    callers that need the realised number of distinct values should count the
    non-zero entries.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    weights = zipf_weights(num_distinct, z)
    ideal = weights * n
    counts = np.floor(ideal).astype(np.int64)
    shortfall = n - int(counts.sum())
    if shortfall > 0:
        remainders = ideal - counts
        # Stable: ties broken by rank, favouring more frequent values.
        top_up = np.argsort(-remainders, kind="stable")[:shortfall]
        counts[top_up] += 1
    return counts


def zipf_value_set(
    n: int,
    num_distinct: int,
    z: float,
    rng: RngLike = None,
    permute_values: bool = True,
    domain_spacing: int = 1,
) -> np.ndarray:
    """Materialise a multiset of *n* attribute values with Zipfian frequencies.

    The universe is ``{1, 1 + spacing, ..., }`` of size *num_distinct*.  When
    *permute_values* is true (the default) frequencies are assigned to domain
    points in random order, so value magnitude and frequency are independent —
    matching the paper's setup where skew lives in frequencies, not positions.
    The returned array is in domain order (sorted by value); physical layout
    on disk is a separate concern handled by :mod:`repro.storage.layout`.
    """
    if domain_spacing <= 0:
        raise ParameterError(f"domain_spacing must be positive, got {domain_spacing}")
    counts = zipf_counts(n, num_distinct, z)
    domain = 1 + domain_spacing * np.arange(num_distinct, dtype=np.int64)
    if permute_values:
        generator = ensure_rng(rng)
        counts = counts[generator.permutation(num_distinct)]
    values = np.repeat(domain, counts)
    return values


def sample_zipf(
    n: int,
    num_distinct: int,
    z: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw *n* i.i.d. values from a Zipf distribution over ``1..num_distinct``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    generator = ensure_rng(rng)
    weights = zipf_weights(num_distinct, z)
    return generator.choice(
        np.arange(1, num_distinct + 1, dtype=np.int64), size=n, p=weights
    )
