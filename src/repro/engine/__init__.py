"""Engine layer: tables, ANALYZE-style statistics, and selectivity
estimation — the catalog surface a query optimizer consumes."""

from .catalog import Catalog
from .joins import histogram_join_size, system_r_join_size, true_join_size
from .maintenance import AutoStatistics, ModificationCounter, RefreshPolicy
from .resilience import build_or_fallback, mark_degraded
from .density import (
    column_density,
    density_from_counts,
    density_from_estimate,
    selfjoin_density,
    selfjoin_density_from_sample,
)
from .serialization import (
    dump_catalog,
    load_catalog,
    statistics_from_dict,
    statistics_from_json,
    statistics_to_dict,
    statistics_to_json,
)
from .selectivity import (
    RangeEstimate,
    RangeSelectivityEstimator,
    WorkloadAccuracy,
    evaluate_workload,
)
from .statistics import BUILD_METHODS, ColumnStatistics, StatisticsManager
from .table import Column, Table

__all__ = [
    "Catalog",
    "histogram_join_size",
    "system_r_join_size",
    "true_join_size",
    "AutoStatistics",
    "ModificationCounter",
    "RefreshPolicy",
    "build_or_fallback",
    "mark_degraded",
    "column_density",
    "density_from_counts",
    "density_from_estimate",
    "selfjoin_density",
    "selfjoin_density_from_sample",
    "dump_catalog",
    "load_catalog",
    "statistics_from_dict",
    "statistics_from_json",
    "statistics_to_dict",
    "statistics_to_json",
    "RangeEstimate",
    "RangeSelectivityEstimator",
    "WorkloadAccuracy",
    "evaluate_workload",
    "BUILD_METHODS",
    "ColumnStatistics",
    "StatisticsManager",
    "Column",
    "Table",
]
