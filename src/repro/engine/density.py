"""Column density — the SQL Server duplication statistic.

Section 7.1 of the paper: "Density 0.0 implies that all values in the column
are distinct, while density 1.0 implies that all values in the column are
identical."  We normalise the average duplication count ``n/d`` onto that
[0, 1] scale:

    ``density = (n/d - 1) / (n - 1)``

which is 0 when ``d = n`` (all distinct) and 1 when ``d = 1`` (all equal).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDataError, ParameterError

__all__ = [
    "density_from_counts",
    "column_density",
    "density_from_estimate",
    "selfjoin_density",
    "selfjoin_density_from_sample",
]


def density_from_counts(n: int, distinct: int) -> float:
    """Density of a column with *n* rows and *distinct* distinct values."""
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if not 1 <= distinct <= n:
        raise ParameterError(
            f"distinct must be in [1, {n}], got {distinct}"
        )
    if n == 1:
        return 0.0
    return (n / distinct - 1.0) / (n - 1.0)


def column_density(values: np.ndarray) -> float:
    """Exact density of a value multiset."""
    values = np.asarray(values)
    if values.size == 0:
        raise EmptyDataError("cannot compute the density of an empty column")
    distinct = int(np.unique(values).size)
    return density_from_counts(values.size, distinct)


def density_from_estimate(n: int, distinct_estimate: float) -> float:
    """Density computed from an estimated distinct count (clamped to valid)."""
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    clamped = min(max(distinct_estimate, 1.0), float(n))
    if n == 1:
        return 0.0
    return (n / clamped - 1.0) / (n - 1.0)


def selfjoin_density(values: np.ndarray) -> float:
    """The self-join density ``sum_v (count_v / n)^2``.

    This is the statistic SQL Server actually keeps under the name
    "density": the probability that two random tuples share a value, i.e.
    the selectivity of a self-equi-join, and the frequency-weighted average
    multiplicity divided by n.  It is 1/n for an all-distinct column and
    1 for a constant column.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise EmptyDataError("cannot compute the density of an empty column")
    _, counts = np.unique(values, return_counts=True)
    n = values.size
    return float(((counts / n) ** 2).sum())


def selfjoin_density_from_sample(sample: np.ndarray, n: int | None = None) -> float:
    """Collision estimator of the self-join density.

    The fraction of ordered pairs of *distinct* sample tuples that collide
    in value, ``sum_v c_v*(c_v - 1) / (r*(r - 1))``, unbiasedly estimates
    the probability that two distinct table tuples share a value.  A second
    moment concentrates fast — unlike the distinct *count* (Theorem 8) —
    which is why the paper could report density estimation as "extremely
    accurate whenever the CVB algorithm converges" (Section 7.1).

    When the table size *n* is supplied, the finite-population identity
    ``sum p^2 = (P[distinct pair collides]*(n-1) + 1) / n`` converts the
    estimate to ``sum_v p_v^2`` exactly; without it the raw pair-collision
    probability is returned (the two differ only at the 1/n floor).
    """
    sample = np.asarray(sample)
    if sample.size == 0:
        raise EmptyDataError("cannot estimate density from an empty sample")
    r = sample.size
    if r == 1:
        pair_collision = 1.0
    else:
        _, counts = np.unique(sample, return_counts=True)
        collisions = float((counts * (counts - 1)).sum())
        pair_collision = collisions / (r * (r - 1.0))
    if n is None:
        return pair_collision
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    return (pair_collision * (n - 1.0) + 1.0) / n
