"""Statistics catalog: the registry ANALYZE writes and the optimizer reads."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..exceptions import StatisticsNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .statistics import ColumnStatistics

__all__ = ["Catalog"]


class Catalog:
    """In-memory map of ``(table, column) -> ColumnStatistics``.

    Re-analyzing a column replaces the prior entry; the catalog keeps a
    monotonically increasing version per key so callers can detect refreshes.
    """

    def __init__(self):
        self._entries: dict[tuple[str, str], "ColumnStatistics"] = {}
        self._versions: dict[tuple[str, str], int] = {}

    def put(self, statistics: "ColumnStatistics") -> int:
        """Store (or replace) statistics; returns the new version number."""
        key = (statistics.table_name, statistics.column_name)
        self._entries[key] = statistics
        self._versions[key] = self._versions.get(key, 0) + 1
        return self._versions[key]

    def get(self, table_name: str, column_name: str) -> "ColumnStatistics":
        """Fetch statistics for ``table.column`` (raises when missing)."""
        key = (table_name, column_name)
        if key not in self._entries:
            raise StatisticsNotFoundError(
                f"no statistics for {table_name}.{column_name}; run analyze first"
            )
        return self._entries[key]

    def version(self, table_name: str, column_name: str) -> int:
        """How many times this column has been analyzed (0 = never)."""
        return self._versions.get((table_name, column_name), 0)

    def restore(self, statistics: "ColumnStatistics", version: int) -> None:
        """Install an entry at an explicit version (recovery path).

        Used by :class:`repro.durability.catalog_store.CatalogStore` when
        rebuilding from a snapshot or replaying journal records: unlike
        :meth:`put`, the version is *set*, not incremented, so a replayed
        record lands at exactly the version it was journaled with.
        Records at or below the current version are ignored, which makes
        replay idempotent when a crash left the journal un-truncated
        after a snapshot.
        """
        key = (statistics.table_name, statistics.column_name)
        if version <= self._versions.get(key, 0):
            return
        self._entries[key] = statistics
        self._versions[key] = version

    def drop(self, table_name: str, column_name: str) -> None:
        """Remove statistics for one column (idempotent)."""
        key = (table_name, column_name)
        self._entries.pop(key, None)

    def keys(self) -> list[tuple[str, str]]:
        """All (table, column) pairs with statistics, sorted."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries
