"""Degraded-but-bounded statistics serving.

A statistics refresh that dies halfway must not take the optimizer down
with it: a self-tuning system degrades to its last-known-good answer and
keeps serving (the stance of the self-tuning-histogram line of work), while
making the degradation *explicit* so nobody mistakes a stale histogram for
a fresh one.

This module is the policy glue between the storage-level fault machinery
(:mod:`repro.storage.faults`) and the catalog:

- :func:`mark_degraded` — a copy of a bundle flagged ``degraded=True``.
- :func:`build_or_fallback` — run ANALYZE; on
  :class:`~repro.exceptions.BuildAbortedError` fall back to the last-known
  -good bundle (flagged degraded) instead of raising.

:class:`~repro.engine.maintenance.AutoStatistics` routes every auto-refresh
through :func:`build_or_fallback`, which is what makes ``ensure_fresh``
never raise: it either refreshes or returns a degraded last-known-good
histogram.
"""

from __future__ import annotations

import dataclasses

from .._rng import RngLike
from ..exceptions import BuildAbortedError
from .statistics import ColumnStatistics, StatisticsManager
from .table import Table

__all__ = ["mark_degraded", "build_or_fallback"]


def mark_degraded(statistics: ColumnStatistics) -> ColumnStatistics:
    """A shallow copy of *statistics* flagged ``degraded=True``.

    The original bundle is left untouched (callers may hold references to
    it); the copy shares the histogram/sample objects, which are treated as
    immutable throughout the library.
    """
    return dataclasses.replace(statistics, degraded=True)


def build_or_fallback(
    manager: StatisticsManager,
    table: Table,
    column_name: str,
    fallback: ColumnStatistics | None = None,
    rng: RngLike = None,
    **params,
) -> tuple[ColumnStatistics, bool]:
    """ANALYZE with graceful degradation.

    Runs ``manager.analyze(table, column_name, **params)``.  When the build
    aborts (read budget exhausted, too many bad pages) and a *fallback*
    bundle is available, the fallback is marked degraded, written back to
    the catalog (so direct catalog reads also see the flag), and returned.

    Returns ``(statistics, refreshed)``: *refreshed* is False exactly when
    the degraded fallback was served.  Without a fallback the abort
    propagates — there is nothing bounded to degrade to.
    """
    try:
        return manager.analyze(table, column_name, rng=rng, **params), True
    except BuildAbortedError:
        if fallback is None:
            raise
        degraded = mark_degraded(fallback)
        manager.catalog.put(degraded)
        return degraded, False
