"""System R-style join-size estimation from column statistics.

Section 6 motivates distinct-value estimation through its use "in
estimating relative error in join-selectivity estimation formulas used in
System R [28]".  This module closes that loop: given per-column statistics
(distinct counts, histograms), estimate equi-join output sizes two ways:

- :func:`system_r_join_size` — the classical containment assumption:
  ``|R join S| = |R| * |S| / max(d_R, d_S)``;
- :func:`histogram_join_size` — bucket-wise estimation by aligning the two
  columns' histograms over the intersected domain (strictly more accurate
  when the value ranges only partially overlap).

Both consume :class:`~repro.engine.statistics.ColumnStatistics`, so the
quality of the join estimate inherits directly from the quality of the
sampled statistics — the end-to-end consequence of the paper's bounds.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .statistics import ColumnStatistics

__all__ = [
    "system_r_join_size",
    "histogram_join_size",
    "true_join_size",
]


def system_r_join_size(
    left: ColumnStatistics, right: ColumnStatistics
) -> float:
    """Classical System R estimate: ``n_L * n_R / max(d_L, d_R)``.

    Uses each side's (sampled) distinct-count estimate; with perfect
    statistics and containment-of-value-sets this is exact for key/foreign
    -key joins.
    """
    d_left = max(1.0, left.distinct_estimate)
    d_right = max(1.0, right.distinct_estimate)
    return left.n * right.n / max(d_left, d_right)


def histogram_join_size(
    left: ColumnStatistics,
    right: ColumnStatistics,
    resolution: int | None = None,
) -> float:
    """Histogram-aligned equi-join estimate.

    The shared domain is cut into sub-intervals (by default, at every
    separator of either histogram); within each sub-interval both sides are
    assumed uniform over their estimated local distinct values, giving the
    standard per-interval estimate ``n_L(i) * n_R(i) / max(d_L(i), d_R(i))``.
    Local distinct counts are apportioned from the global estimates by
    *domain width* — distinct values spread across the value domain, unlike
    tuple mass, which piles onto hot values; mass-proportional apportionment
    would wildly overstate the distinct count inside hot intervals and
    underestimate skewed joins.
    """
    lo = max(left.histogram.min_value, right.histogram.min_value)
    hi = min(left.histogram.max_value, right.histogram.max_value)
    if lo > hi:
        return 0.0

    cuts = np.concatenate(
        (
            [lo, hi],
            left.histogram.separators,
            right.histogram.separators,
        )
    )
    cuts = np.unique(cuts[(cuts >= lo) & (cuts <= hi)])
    if resolution is not None:
        if resolution < 2:
            raise ParameterError(
                f"resolution must be at least 2, got {resolution}"
            )
        cuts = np.linspace(lo, hi, resolution)
    if cuts.size < 2:
        cuts = np.array([lo, hi], dtype=np.float64)

    left_width = max(
        left.histogram.max_value - left.histogram.min_value, 1e-12
    )
    right_width = max(
        right.histogram.max_value - right.histogram.min_value, 1e-12
    )

    total = 0.0
    for a, b in zip(cuts[:-1], cuts[1:]):
        if b <= a:
            continue
        n_l = left.histogram.estimate_leq(b) - left.histogram.estimate_lt(a)
        n_r = right.histogram.estimate_leq(b) - right.histogram.estimate_lt(a)
        n_l *= left.n / left.histogram.total
        n_r *= right.n / right.histogram.total
        if n_l <= 0 or n_r <= 0:
            continue
        width = b - a
        d_l = min(
            n_l, max(1.0, left.distinct_estimate * width / left_width)
        )
        d_r = min(
            n_r, max(1.0, right.distinct_estimate * width / right_width)
        )
        total += n_l * n_r / max(d_l, d_r)
    return total


def true_join_size(
    left_values: np.ndarray, right_values: np.ndarray
) -> int:
    """Exact equi-join output size, for evaluating the estimators."""
    left_values = np.asarray(left_values)
    right_values = np.asarray(right_values)
    lv, lc = np.unique(left_values, return_counts=True)
    rv, rc = np.unique(right_values, return_counts=True)
    common, l_idx, r_idx = np.intersect1d(
        lv, rv, assume_unique=True, return_indices=True
    )
    return int((lc[l_idx] * rc[r_idx]).sum())
