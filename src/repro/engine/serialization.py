"""Catalog persistence: (de)serialising ColumnStatistics bundles.

Statistics are only useful if the optimizer can read them later (and on
another node): this module round-trips the full
:class:`~repro.engine.statistics.ColumnStatistics` bundle — histogram
(via :mod:`repro.core.serialization`), densities, distinct estimate, build
provenance — through JSON-safe dicts.  The raw sample and CVB trace are
deliberately *not* persisted: real catalogs store the derived statistics,
not the sample (SQL Server's stats blob works the same way).
"""

from __future__ import annotations

import dataclasses
import json

from ..core.serialization import histogram_from_dict, histogram_to_dict
from ..exceptions import ParameterError
from .catalog import Catalog
from .statistics import ColumnStatistics

__all__ = [
    "statistics_to_dict",
    "statistics_from_dict",
    "statistics_to_json",
    "statistics_from_json",
    "dump_catalog",
    "load_catalog",
]

_FORMAT_VERSION = 1


def _jsonable_params(params: dict) -> dict:
    """Build params with policy dataclasses flattened to plain dicts.

    Resilience builds carry :class:`~repro.storage.faults.FaultPolicy` /
    ``RetryPolicy`` / ``ReadBudget`` instances in ``build_params``; persisted
    provenance keeps their fields but not the types (a stats blob stores
    derived statistics, not live configuration objects).
    """
    return {
        key: dataclasses.asdict(value) if dataclasses.is_dataclass(value) else value
        for key, value in params.items()
    }


def statistics_to_dict(statistics: ColumnStatistics) -> dict:
    """JSON-safe dict form of a statistics bundle (sample/trace dropped)."""
    return {
        "format_version": _FORMAT_VERSION,
        "table_name": statistics.table_name,
        "column_name": statistics.column_name,
        "n": statistics.n,
        "histogram": histogram_to_dict(statistics.histogram),
        "density": statistics.density,
        "selfjoin_density": statistics.selfjoin_density,
        "distinct_estimate": statistics.distinct_estimate,
        "method": statistics.method,
        "sample_size": statistics.sample_size,
        "pages_read": statistics.pages_read,
        "converged": statistics.converged,
        "degraded": statistics.degraded,
        "io": dict(statistics.io),
        "build_params": _jsonable_params(statistics.build_params),
    }


def statistics_from_dict(payload: dict) -> ColumnStatistics:
    """Rebuild a bundle serialised by :func:`statistics_to_dict`."""
    if not isinstance(payload, dict):
        raise ParameterError("payload is not a serialised statistics bundle")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ParameterError(
            f"unsupported statistics format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    try:
        return ColumnStatistics(
            table_name=payload["table_name"],
            column_name=payload["column_name"],
            n=int(payload["n"]),
            histogram=histogram_from_dict(payload["histogram"]),
            density=float(payload["density"]),
            selfjoin_density=float(payload["selfjoin_density"]),
            distinct_estimate=float(payload["distinct_estimate"]),
            method=payload["method"],
            sample_size=int(payload["sample_size"]),
            pages_read=int(payload["pages_read"]),
            converged=bool(payload["converged"]),
            degraded=bool(payload.get("degraded", False)),
            io=dict(payload.get("io", {})),
            build_params=dict(payload.get("build_params", {})),
        )
    except KeyError as exc:
        raise ParameterError(f"statistics payload missing field {exc}") from exc


def statistics_to_json(statistics: ColumnStatistics) -> str:
    """Serialise a statistics bundle to a JSON string."""
    return json.dumps(statistics_to_dict(statistics))


def statistics_from_json(text: str) -> ColumnStatistics:
    """Reconstruct a statistics bundle from :func:`statistics_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid statistics JSON: {exc}") from exc
    return statistics_from_dict(payload)


def dump_catalog(catalog: Catalog) -> str:
    """Serialise every bundle in *catalog* to one JSON document."""
    entries = [
        statistics_to_dict(catalog.get(table, column))
        for table, column in catalog.keys()
    ]
    return json.dumps({"format_version": _FORMAT_VERSION, "entries": entries})


def load_catalog(text: str) -> Catalog:
    """Rebuild a catalog serialised by :func:`dump_catalog`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid catalog JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ParameterError("payload is not a serialised catalog")
    catalog = Catalog()
    for entry in payload["entries"]:
        catalog.put(statistics_from_dict(entry))
    return catalog
