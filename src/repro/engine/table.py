"""Minimal table/column abstractions.

The engine layer plays the role of the SQL Server catalog surrounding the
paper's prototype: a :class:`Table` owns named :class:`Column` value arrays
and can materialise any column as a simulated on-disk heap file with a
chosen physical layout.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike
from ..exceptions import CatalogError, ParameterError
from ..storage.heapfile import HeapFile
from ..storage.record import RecordSpec

__all__ = ["Column", "Table"]


class Column:
    """A named attribute with its value multiset."""

    def __init__(self, name: str, values: np.ndarray):
        if not name:
            raise ParameterError("column name must be non-empty")
        values = np.asarray(values)
        if values.ndim != 1:
            raise ParameterError(
                f"column values must be one-dimensional, got shape {values.shape}"
            )
        self.name = name
        self._values = values

    @property
    def values(self) -> np.ndarray:
        """The column's values as a numpy array."""
        return self._values

    @property
    def num_rows(self) -> int:
        """Number of rows in the column."""
        return int(self._values.size)

    def sorted_values(self) -> np.ndarray:
        """Values in domain order (ground truth for experiments)."""
        return np.sort(self._values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, rows={self.num_rows})"


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: dict[str, np.ndarray] | None = None):
        if not name:
            raise ParameterError("table name must be non-empty")
        self.name = name
        self._columns: dict[str, Column] = {}
        if columns:
            for col_name, values in columns.items():
                self.add_column(col_name, values)

    def add_column(self, name: str, values: np.ndarray) -> Column:
        """Add a column; all columns must have the same row count."""
        if name in self._columns:
            raise CatalogError(
                f"table {self.name!r} already has a column {name!r}"
            )
        column = Column(name, values)
        if self._columns:
            existing = next(iter(self._columns.values()))
            if column.num_rows != existing.num_rows:
                raise ParameterError(
                    f"column {name!r} has {column.num_rows} rows; table "
                    f"{self.name!r} has {existing.num_rows}"
                )
        self._columns[name] = column
        return column

    def column(self, name: str) -> Column:
        """Fetch a column by name (raises when missing)."""
        if name not in self._columns:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            )
        return self._columns[name]

    @property
    def column_names(self) -> list[str]:
        """Column names, in declaration order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self._columns:
            return 0
        return next(iter(self._columns.values())).num_rows

    def to_heapfile(
        self,
        column_name: str,
        layout: str = "random",
        rng: RngLike = None,
        spec: RecordSpec | None = None,
        blocking_factor: int | None = None,
        cluster_fraction: float = 0.2,
    ) -> HeapFile:
        """Materialise *column_name* as a simulated on-disk heap file."""
        column = self.column(column_name)
        return HeapFile.from_values(
            column.values,
            layout=layout,
            rng=rng,
            spec=spec,
            blocking_factor=blocking_factor,
            cluster_fraction=cluster_fraction,
        )

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={self.column_names})"
        )
