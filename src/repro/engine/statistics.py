"""ANALYZE: building column statistics the way the paper's prototype does.

:class:`StatisticsManager` is the top of the public API: point it at a
:class:`~repro.engine.table.Table`, ask it to ``analyze`` a column, and it
runs the CVB adaptive sampling algorithm against the simulated heap file,
then derives the three statistics SQL Server keeps (Section 7.1):

- the equi-height **histogram** (step values = separators),
- the **density** (average duplication, 0 = all distinct .. 1 = all equal),
- the estimated number of **distinct values** (via GEE by default).

Alternative build methods are available for experiments: pure record-level
sampling at a fixed size (Section 3), and a full scan (the perfect
histogram).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import RngLike, ensure_rng
from ..core import bounds
from ..core.adaptive import CVBConfig, CVBResult, CVBSampler
from ..core.compressed import CompressedHistogram
from ..core.histogram import EquiHeightHistogram
from ..exceptions import ParameterError
from ..distinct.estimators import DistinctValueEstimator, GEEEstimator
from ..distinct.frequency import FrequencyProfile
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sampling.record_sampler import sample_records_from_file
from ..sampling.schedule import StepSchedule
from ..storage.faults import (
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
    resilient_scan,
)
from ..storage.heapfile import HeapFile
from ..workloads.queries import RangeQuery
from .catalog import Catalog
from .density import density_from_estimate, selfjoin_density_from_sample
from .selectivity import RangeSelectivityEstimator
from .table import Table

__all__ = ["ColumnStatistics", "StatisticsManager", "BUILD_METHODS"]

BUILD_METHODS = ("cvb", "record", "fullscan")


@dataclass
class ColumnStatistics:
    """The statistics bundle ANALYZE produces for one column."""

    table_name: str
    column_name: str
    n: int
    histogram: EquiHeightHistogram
    density: float
    selfjoin_density: float
    distinct_estimate: float
    method: str
    sample_size: int
    pages_read: int
    converged: bool
    build_params: dict = field(default_factory=dict)
    cvb_result: CVBResult | None = None
    #: The accumulated (sorted) sample the statistics were derived from.
    sample: np.ndarray | None = None
    #: True when this bundle is a stale last-known-good served because a
    #: refresh was aborted (see :mod:`repro.engine.resilience`).
    degraded: bool = False
    #: I/O accounting snapshot of the build (page reads, retries, skips).
    io: dict = field(default_factory=dict)

    @property
    def sampling_rate(self) -> float:
        """Fraction of table rows that were sampled to build this bundle."""
        return self.sample_size / self.n

    def estimator(self) -> RangeSelectivityEstimator:
        """A range-selectivity estimator scaled to the full table."""
        return RangeSelectivityEstimator(self.histogram, self.n)

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated number of rows with ``lo <= X <= hi``."""
        return self.estimator().estimate(RangeQuery(lo, hi))

    def estimate_equality(self, value: float) -> float:
        """Estimated number of rows equal to *value*, via the self-join
        density.

        ``n * selfjoin_density`` is the frequency-weighted average
        multiplicity — the expected output of an equality predicate whose
        constant is drawn like the data, which is the standard catalog-only
        estimate (Section 6's System R motivation [28]).
        """
        return float(min(self.n * self.selfjoin_density, self.n))

    def estimate_quantile(self, q: float) -> float:
        """Estimated value at quantile *q* of the column (for range
        partitioning, percentile predicates, parallel plan splits)."""
        return self.histogram.estimate_quantile(q)

    def compressed_histogram(
        self, threshold_factor: float = 1.0
    ) -> CompressedHistogram:
        """A compressed histogram (Section 5) built from the stored sample.

        High-frequency values get exact singleton buckets; counts are scaled
        to the full relation.  Useful when the column is skewed enough that
        plain equi-height buckets degenerate.
        """
        if self.sample is None:
            raise ParameterError(
                "statistics carry no sample to build a compressed histogram from"
            )
        return CompressedHistogram.from_sample(
            self.sample, self.n, self.histogram.k, threshold_factor
        )

    def summary(self) -> str:
        """One-line human-readable summary of the bundle."""
        return (
            f"{self.table_name}.{self.column_name}: n={self.n:,} "
            f"k={self.histogram.k} method={self.method} "
            f"sampled={self.sampling_rate:.2%} ({self.pages_read} pages) "
            f"density={self.density:.4g} distinct~{self.distinct_estimate:,.0f}"
            + (" [DEGRADED: stale last-known-good]" if self.degraded else "")
        )


class StatisticsManager:
    """Builds and caches :class:`ColumnStatistics` for a set of tables.

    By default statistics land in a fresh in-memory
    :class:`~repro.engine.catalog.Catalog`; pass *catalog* to plug in an
    existing one — notably the journaling catalog of a
    :class:`repro.durability.CatalogStore`, which makes every ``analyze``
    durable without the engine knowing about persistence.
    """

    def __init__(
        self,
        distinct_estimator: DistinctValueEstimator | None = None,
        catalog: Catalog | None = None,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self._distinct_estimator = distinct_estimator or GEEEstimator()

    # ------------------------------------------------------------------
    # Building statistics
    # ------------------------------------------------------------------

    def analyze(
        self,
        table: Table,
        column_name: str,
        k: int = 200,
        f: float = 0.1,
        gamma: float = 0.01,
        method: str = "cvb",
        layout: str = "random",
        rng: RngLike = None,
        heapfile: HeapFile | None = None,
        record_sample_size: int | None = None,
        schedule: StepSchedule | None = None,
        fault_policy: FaultPolicy | None = None,
        retry: RetryPolicy | None = None,
        read_budget: ReadBudget | None = None,
        **cvb_kwargs,
    ) -> ColumnStatistics:
        """Build statistics for ``table.column_name`` and store them.

        Parameters
        ----------
        method:
            ``"cvb"`` (default) runs the adaptive block-sampling algorithm;
            ``"record"`` takes a fixed-size record-level sample (sized by
            Corollary 1 unless *record_sample_size* is given); ``"fullscan"``
            builds the perfect histogram.
        heapfile:
            Reuse an existing heap file (e.g. to control layout/blocking
            exactly); otherwise one is materialised with *layout*.
        fault_policy:
            Wrap the heap file in a
            :class:`~repro.storage.faults.FaultyHeapFile` injecting these
            faults (chaos testing).
        retry / read_budget:
            Resilience knobs forwarded to the build: transient faults are
            retried, unreadable pages are skipped and replaced, and blowing
            the budget aborts the build with
            :class:`~repro.exceptions.BuildAbortedError` (which
            :class:`~repro.engine.maintenance.AutoStatistics` turns into a
            degraded last-known-good answer).
        """
        if method not in BUILD_METHODS:
            raise ParameterError(
                f"method must be one of {BUILD_METHODS}, got {method!r}"
            )
        generator = ensure_rng(rng)
        if heapfile is None:
            heapfile = table.to_heapfile(column_name, layout=layout, rng=generator)
        if fault_policy is not None and not isinstance(heapfile, FaultyHeapFile):
            heapfile = FaultyHeapFile(heapfile, fault_policy)
        n = heapfile.num_records
        io_baseline = heapfile.iostats.snapshot()

        with _trace.span(
            "engine.analyze",
            iostats=heapfile.iostats,
            table=table.name,
            column=column_name,
            method=method,
            k=k,
            f=f,
        ) as analyze_span:
            cvb_result: CVBResult | None = None
            if method == "cvb":
                config = CVBConfig(k=k, f=f, gamma=gamma, **cvb_kwargs)
                cvb_result = CVBSampler(
                    config, schedule=schedule, retry=retry, budget=read_budget
                ).run(heapfile, rng=generator)
                histogram = cvb_result.histogram
                sample = cvb_result.sample
                pages_read = cvb_result.pages_sampled
                converged = cvb_result.converged
            elif method == "record":
                if record_sample_size is None:
                    record_sample_size = min(
                        n, bounds.corollary1_sample_size(n, k, f, gamma)
                    )
                tracker = (
                    read_budget.tracker(heapfile.num_pages)
                    if read_budget
                    else None
                )
                sample = np.sort(
                    sample_records_from_file(
                        heapfile,
                        record_sample_size,
                        generator,
                        retry=retry,
                        budget=tracker,
                    )
                )
                if sample.size == 0:
                    raise BuildAbortedError(
                        "record sample is empty: no readable records"
                    )
                histogram = EquiHeightHistogram.from_sorted_values(sample, k)
                pages_read = heapfile.iostats.page_reads
                converged = True
            else:  # fullscan
                if retry is not None or read_budget is not None:
                    tracker = (
                        read_budget.tracker(heapfile.num_pages)
                        if read_budget
                        else None
                    )
                    sample = np.sort(
                        resilient_scan(heapfile, retry=retry, budget=tracker)
                    )
                    if sample.size == 0:
                        raise BuildAbortedError(
                            "full scan found no readable pages"
                        )
                else:
                    sample = np.sort(heapfile.scan())
                histogram = EquiHeightHistogram.from_sorted_values(sample, k)
                pages_read = heapfile.iostats.page_reads
                converged = True
            _metrics.inc("repro_analyze_builds_total", method=method)
            analyze_span.set(
                pages_read=pages_read,
                sample_size=int(sample.size),
                converged=converged,
            )

        profile = FrequencyProfile.from_sample(sample)
        distinct_estimate = self._distinct_estimator.estimate(profile, n)
        density = density_from_estimate(n, distinct_estimate)
        selfjoin = selfjoin_density_from_sample(sample, n=n)

        io_after = heapfile.iostats.snapshot()
        io = {
            key: io_after[key] - io_baseline.get(key, 0)
            for key in io_after
            if key != "pages_touched"
        }
        resilience_params = {
            name: value
            for name, value in (
                ("fault_policy", fault_policy),
                ("retry", retry),
                ("read_budget", read_budget),
            )
            if value is not None
        }
        statistics = ColumnStatistics(
            table_name=table.name,
            column_name=column_name,
            n=n,
            histogram=histogram,
            density=density,
            selfjoin_density=selfjoin,
            distinct_estimate=distinct_estimate,
            method=method,
            sample_size=int(sample.size),
            pages_read=pages_read,
            converged=converged,
            build_params={
                "k": k,
                "f": f,
                "gamma": gamma,
                "layout": layout,
                **resilience_params,
                **cvb_kwargs,
            },
            cvb_result=cvb_result,
            sample=sample,
            io=io,
        )
        self.catalog.put(statistics)
        return statistics

    def analyze_all(
        self,
        table: Table,
        rng: RngLike = None,
        **params,
    ) -> dict[str, ColumnStatistics]:
        """ANALYZE every column of *table* with shared parameters.

        Each column gets an independent sampling stream (derived from *rng*)
        and its own heap file materialisation; returns ``{column: stats}``.
        """
        from .._rng import spawn_rngs

        columns = table.column_names
        rngs = spawn_rngs(rng, len(columns))
        return {
            name: self.analyze(table, name, rng=column_rng, **params)
            for name, column_rng in zip(columns, rngs)
        }

    # ------------------------------------------------------------------
    # Consuming statistics
    # ------------------------------------------------------------------

    def statistics(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Fetch previously built statistics (raises when missing)."""
        return self.catalog.get(table_name, column_name)

    def estimate_range(
        self, table_name: str, column_name: str, lo: float, hi: float
    ) -> float:
        """Optimizer entry point: estimated rows with ``lo <= X <= hi``."""
        return self.statistics(table_name, column_name).estimate_range(lo, hi)

    def estimate_distinct(self, table_name: str, column_name: str) -> float:
        """Optimizer entry point: estimated distinct count."""
        return self.statistics(table_name, column_name).distinct_estimate
