"""Range-selectivity estimation — the optimizer-facing consumer of
histograms.

This is the application Section 2 uses to motivate the max error metric: the
optimizer answers "how many tuples match ``lo <= X <= hi``" from the
histogram alone (full interior buckets plus linear interpolation at the
boundary buckets), and the estimation error it incurs is governed by the
histogram's error metric — Theorem 1 (average/variance bounds do not help)
versus Theorem 3 (max error bound gives ``(1+f)`` of the perfect
histogram's error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmptyDataError, ParameterError
from ..workloads.queries import RangeQuery, true_range_count

__all__ = [
    "RangeEstimate",
    "RangeSelectivityEstimator",
    "WorkloadAccuracy",
    "evaluate_workload",
]


@dataclass(frozen=True)
class RangeEstimate:
    """One range-query estimate with its ground truth."""

    query: RangeQuery
    estimate: float
    truth: int

    @property
    def absolute_error(self) -> float:
        """``|estimated - actual|`` in rows."""
        return abs(self.estimate - self.truth)

    def relative_error(self, floor: float = 1.0) -> float:
        """``|est - truth| / max(truth, floor)`` — the floor guards the
        meaningless-for-tiny-outputs case the paper notes."""
        return self.absolute_error / max(self.truth, floor)


class RangeSelectivityEstimator:
    """Answers range-count queries from a histogram, scaled to table size.

    Parameters
    ----------
    histogram:
        Any object with ``estimate_range(lo, hi)`` and ``total`` — the
        equi-height, compressed and equi-width histograms all qualify.
    table_rows:
        The relation size ``n``.  When the histogram summarises a sample,
        estimates are scaled by ``n / histogram.total``.
    """

    def __init__(self, histogram, table_rows: int):
        if table_rows <= 0:
            raise ParameterError(f"table_rows must be positive, got {table_rows}")
        if histogram.total <= 0:
            raise EmptyDataError("histogram summarises no tuples")
        self.histogram = histogram
        self.table_rows = int(table_rows)
        self._scale = table_rows / histogram.total

    def estimate(self, query: RangeQuery) -> float:
        """Estimated output size of *query*, in table rows."""
        return self.histogram.estimate_range(query.lo, query.hi) * self._scale

    def selectivity(self, query: RangeQuery) -> float:
        """Estimated fraction of the table matched by *query*."""
        return self.estimate(query) / self.table_rows


@dataclass(frozen=True)
class WorkloadAccuracy:
    """Aggregate accuracy of an estimator over a query workload."""

    count: int
    mean_absolute_error: float
    max_absolute_error: float
    mean_relative_error: float
    max_relative_error: float

    def summary(self) -> str:
        """One-line accuracy summary across the workload."""
        return (
            f"{self.count} queries: abs err mean={self.mean_absolute_error:.1f} "
            f"max={self.max_absolute_error:.1f}; rel err "
            f"mean={self.mean_relative_error:.3f} max={self.max_relative_error:.3f}"
        )


def evaluate_workload(
    estimator: RangeSelectivityEstimator,
    sorted_values: np.ndarray,
    queries: list[RangeQuery],
    relative_floor: float = 1.0,
) -> WorkloadAccuracy:
    """Run *queries* through the estimator and compare with exact answers.

    *sorted_values* must be the full column in sorted order (ground truth is
    computed by binary search, not through the storage layer).
    """
    if not queries:
        raise ParameterError("workload must contain at least one query")
    sorted_values = np.asarray(sorted_values)
    estimates = []
    for query in queries:
        truth = true_range_count(sorted_values, query)
        estimates.append(
            RangeEstimate(query=query, estimate=estimator.estimate(query), truth=truth)
        )
    abs_errors = np.array([e.absolute_error for e in estimates])
    rel_errors = np.array([e.relative_error(relative_floor) for e in estimates])
    return WorkloadAccuracy(
        count=len(estimates),
        mean_absolute_error=float(abs_errors.mean()),
        max_absolute_error=float(abs_errors.max()),
        mean_relative_error=float(rel_errors.mean()),
        max_relative_error=float(rel_errors.max()),
    )
