"""Statistics staleness tracking and refresh policy.

The paper's closest prior work (GMP [8]) keeps histograms fresh by paying
per-insert maintenance; the paper's own stance — and what SQL Server ships —
is cheaper: rebuild by sampling when enough of the table has changed.  This
module supplies that policy glue:

- :class:`ModificationCounter` tracks inserts/updates/deletes per column,
- :class:`RefreshPolicy` decides when statistics are stale (SQL Server's
  classic rule: a refresh after ~20% of rows changed, with a 500-row floor),
- :class:`AutoStatistics` wires both to a :class:`StatisticsManager` so that
  ``ensure_fresh`` transparently re-runs the CVB build when needed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._rng import RngLike
from ..exceptions import ParameterError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .resilience import build_or_fallback
from .statistics import ColumnStatistics, StatisticsManager
from .table import Table

__all__ = ["ModificationCounter", "RefreshPolicy", "AutoStatistics"]


class ModificationCounter:
    """Counts row modifications per (table, column) since the last refresh."""

    def __init__(self):
        self._counts: dict[tuple[str, str], int] = {}

    def record(self, table_name: str, column_name: str, rows: int = 1) -> None:
        """Register *rows* modified rows (insert, update or delete alike)."""
        if rows < 0:
            raise ParameterError(f"rows must be non-negative, got {rows}")
        key = (table_name, column_name)
        self._counts[key] = self._counts.get(key, 0) + rows

    def since_refresh(self, table_name: str, column_name: str) -> int:
        """Modifications recorded since the last ``reset``."""
        return self._counts.get((table_name, column_name), 0)

    def reset(self, table_name: str, column_name: str) -> None:
        """Zero the counter after a successful refresh."""
        self._counts.pop((table_name, column_name), None)


@dataclass(frozen=True)
class RefreshPolicy:
    """When do statistics count as stale?

    The default mirrors SQL Server's long-standing auto-update rule:
    stale once ``max(floor_rows, fraction * n)`` modifications accumulate.
    """

    fraction: float = 0.20
    floor_rows: int = 500

    def __post_init__(self):
        if not 0 < self.fraction <= 1:
            raise ParameterError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.floor_rows < 0:
            raise ParameterError(
                f"floor_rows must be non-negative, got {self.floor_rows}"
            )

    def threshold(self, n: int) -> int:
        """Modifications after which statistics over *n* rows are stale."""
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        return max(self.floor_rows, int(self.fraction * n))

    def is_stale(self, statistics: ColumnStatistics, modified: int) -> bool:
        """True when *modified* crosses the threshold for *statistics*."""
        return modified >= self.threshold(statistics.n)


class AutoStatistics:
    """Auto-refreshing statistics frontend.

    Wraps a :class:`StatisticsManager`: reads go through ``ensure_fresh``,
    which rebuilds (with the remembered ANALYZE parameters) when the
    modification counter crosses the policy threshold.
    """

    def __init__(
        self,
        manager: StatisticsManager | None = None,
        policy: RefreshPolicy | None = None,
    ):
        self.manager = manager or StatisticsManager()
        self.policy = policy or RefreshPolicy()
        self.modifications = ModificationCounter()
        self.refresh_count = 0
        #: How many refreshes aborted and served a degraded last-known-good.
        self.degraded_count = 0
        self._flight_guard = threading.Lock()
        self._flight_locks: dict[tuple[str, str], threading.Lock] = {}

    def _flight_lock(self, table_name: str, column_name: str) -> threading.Lock:
        """The single-flight lock serialising refreshes of one column."""
        key = (table_name, column_name)
        with self._flight_guard:
            lock = self._flight_locks.get(key)
            if lock is None:
                lock = self._flight_locks[key] = threading.Lock()
            return lock

    def analyze(
        self, table: Table, column_name: str, rng: RngLike = None, **params
    ) -> ColumnStatistics:
        """Initial ANALYZE; remembers *params* for later auto-refreshes."""
        stats = self.manager.analyze(table, column_name, rng=rng, **params)
        self.modifications.reset(table.name, column_name)
        return stats

    def record_modifications(
        self, table_name: str, column_name: str, rows: int
    ) -> None:
        """Report that *rows* rows of the column changed."""
        self.modifications.record(table_name, column_name, rows)

    def is_stale(self, table_name: str, column_name: str) -> bool:
        """True when the column's statistics have crossed the staleness threshold."""
        stats = self.manager.statistics(table_name, column_name)
        modified = self.modifications.since_refresh(table_name, column_name)
        return self.policy.is_stale(stats, modified)

    def ensure_fresh(
        self, table: Table, column_name: str, rng: RngLike = None
    ) -> ColumnStatistics:
        """Return current statistics, rebuilding first if they are stale.

        The rebuild re-runs ANALYZE against the table's *current* column
        contents with the parameters of the previous build.

        This method never raises :class:`~repro.exceptions.BuildAbortedError`:
        when the rebuild dies (read budget exhausted, too many bad pages) the
        last-known-good bundle is served instead, flagged ``degraded=True``.
        The modification counter is *not* reset in that case, so the very
        next read attempts the refresh again — a later successful rebuild
        replaces the degraded bundle with a fresh, undegraded one.

        Refreshes are **single-flight per column**: concurrent callers that
        observe the same stale statistics serialise on a per-column lock and
        re-check staleness after acquiring it, so exactly one of them runs
        the rebuild while the rest return the freshly built bundle.  Without
        this, the async server's first burst of queries after a modification
        wave would pile duplicate ANALYZE scans onto the same column.
        """
        with _trace.span(
            "autostats.ensure_fresh", table=table.name, column=column_name
        ) as span:
            stats = self.manager.statistics(table.name, column_name)
            if not self.is_stale(table.name, column_name):
                _metrics.inc("repro_autostats_requests_total", result="fresh")
                span.set(result="fresh")
                return stats
            with self._flight_lock(table.name, column_name):
                # Double-checked staleness: a concurrent caller may have
                # finished the rebuild while we waited on the lock.
                stats = self.manager.statistics(table.name, column_name)
                if not self.is_stale(table.name, column_name):
                    _metrics.inc(
                        "repro_autostats_requests_total", result="fresh"
                    )
                    span.set(result="fresh")
                    return stats
                return self._refresh_locked(table, column_name, stats, rng, span)

    def _refresh_locked(self, table, column_name, stats, rng, span):
        """Run the stale-statistics rebuild while holding the flight lock."""
        params = dict(stats.build_params)
        params.setdefault("k", stats.histogram.k)
        refreshed, ok = build_or_fallback(
            self.manager,
            table,
            column_name,
            fallback=stats,
            rng=rng,
            method=stats.method,
            **params,
        )
        if not ok:
            self.degraded_count += 1
            _metrics.inc("repro_autostats_requests_total", result="degraded")
            span.set(result="degraded")
            return refreshed
        self.modifications.reset(table.name, column_name)
        self.refresh_count += 1
        _metrics.inc("repro_autostats_requests_total", result="refreshed")
        span.set(result="refreshed")
        return refreshed
