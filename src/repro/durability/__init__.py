"""Crash-safe persistence for statistics and sweeps.

The paper's premise is that sampling-based statistics are cheap enough to
(re)build on demand — but a statistics *service* (ROADMAP item 1) cannot
afford to lose its catalog or a multi-million-trial sweep to one dead
process.  This package is the recovery backbone:

- :mod:`repro.durability.atomic` — the single atomic write-rename helper
  every durable artifact in the repository goes through (tmp file in the
  target directory + flush + fsync + ``os.replace``).
- :mod:`repro.durability.journal` — CRC-32-framed append-only journal
  records with torn/corrupt-tail detection and truncating recovery.
- :mod:`repro.durability.catalog_store` — :class:`CatalogStore`, the
  snapshot + journal persistence of :class:`repro.engine.catalog.Catalog`
  with last-known-good recovery on open.
- :mod:`repro.durability.runjournal` — :class:`RunCheckpoint`, chunk-level
  checkpointing for :class:`repro.experiments.parallel.TrialPool` maps so
  killed sweeps resume bit-identically.
- :mod:`repro.durability.chaos` — the crash matrix and SIGKILL harness
  exercising every injected crash point end-to-end.

Crash injection is deterministic: durable writes consult
:class:`repro.storage.faults.WriteFaultPolicy`, which tears or corrupts
the payload at a seeded operation index and raises
:class:`repro.exceptions.SimulatedCrashError` exactly where a real
process death would interrupt the protocol.
"""

from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .catalog_store import CatalogStore
from .chaos import CrashOutcome, catalog_crash_matrix, kill_and_resume
from .journal import append_record, read_records
from .runjournal import RunCheckpoint

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "append_record",
    "read_records",
    "CatalogStore",
    "RunCheckpoint",
    "CrashOutcome",
    "catalog_crash_matrix",
    "kill_and_resume",
]
