"""The one true durable-write helper: tmp file + fsync + rename.

A crash halfway through ``open(path, "w").write(...)`` leaves a truncated
artifact — a poisoned bench baseline, a half-written metrics dump, a torn
catalog snapshot.  Every durable artifact in this repository is therefore
written through :func:`atomic_write_bytes` (or its text/JSON wrappers):

1. the payload is written to ``<name>.tmp`` *in the target directory*
   (same filesystem, so the rename is atomic),
2. the file is flushed and ``fsync``'d so the bytes are on disk,
3. ``os.replace`` swaps it in — readers see either the old artifact or
   the new one, never a prefix.

The lint rule EXC002 (:mod:`repro.lint.rules`) flags ``open(path, "w")``
in state-persisting modules precisely so writes cannot drift away from
this helper.  Crash injection for recovery tests threads a
:class:`repro.storage.faults.WriteFaultInjector` through *injector*: the
torn payload genuinely reaches the tmp file, then
:class:`repro.exceptions.SimulatedCrashError` fires *before* the rename,
which is exactly the window a real crash would hit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..obs import metrics as _metrics

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds (or exotic filesystems)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike,
    payload: bytes,
    *,
    kind: str = "artifact",
    injector=None,
) -> Path:
    """Durably replace *path* with *payload*; returns the final path.

    *kind* labels the checkpoint metrics
    (``repro_checkpoint_writes_total`` / ``repro_checkpoint_bytes_total``).
    *injector* is a :class:`repro.storage.faults.WriteFaultInjector`; when
    its policy designates this operation, only the torn payload reaches
    the tmp file and a
    :class:`~repro.exceptions.SimulatedCrashError` is raised before the
    rename — the previous artifact survives untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    crash = False
    if injector is not None:
        payload, crash = injector.apply(payload)
    # The sanctioned non-atomic write: this *is* the atomic helper's tmp
    # file, promoted below by os.replace.
    with open(tmp, "wb") as handle:  # repro: noqa[EXC002]
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    if crash:
        injector.crash(f"atomic write of {path.name}")
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    _metrics.inc("repro_checkpoint_writes_total", kind=kind)
    _metrics.inc("repro_checkpoint_bytes_total", len(payload), kind=kind)
    return path


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    kind: str = "artifact",
    injector=None,
) -> Path:
    """UTF-8 text wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, text.encode("utf-8"), kind=kind, injector=injector
    )


def atomic_write_json(
    path: str | os.PathLike,
    obj: Any,
    *,
    kind: str = "artifact",
    injector=None,
    indent: int | None = 2,
) -> Path:
    """Canonical-JSON wrapper over :func:`atomic_write_bytes`.

    Keys are sorted so equal payloads yield equal bytes — byte-stable
    artifacts diff cleanly across runs.
    """
    text = json.dumps(obj, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text, kind=kind, injector=injector)
