"""Process-kill chaos for the durability layer.

Two harnesses close the crash-safety loop end-to-end:

:func:`catalog_crash_matrix`
    Sweeps *every* durable write operation of a scripted catalog workload
    (puts, drops, checkpoints) as a crash point, in both ``torn`` (payload
    cut short) and ``corrupt`` (CRC-breaking bit flip) flavors, via
    :class:`repro.storage.faults.WriteFaultPolicy`.  After each simulated
    death the store is reopened and the recovered state is compared
    against the **prefix state** — the catalog contents after the last
    script step that fully completed.  That is the last-known-good
    contract: a crash may lose the in-flight mutation, never a committed
    one, and reopening never raises.

:func:`kill_and_resume`
    The real thing: spawns ``python -m repro <argv> --checkpoint DIR`` as
    a subprocess, SIGKILLs it once the run journal shows progress, then
    re-runs with ``--resume`` to completion.  Callers diff the resumed
    output against an uninterrupted reference run (the CI crash-resume
    smoke job does exactly this).

Both harnesses are deterministic: crash points are enumerated (not
sampled), and the corrupting bit flip is seeded per op through the
counter-based fault stream.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from ..engine.serialization import statistics_to_dict
from ..exceptions import SimulatedCrashError
from ..storage.faults import WriteFaultPolicy
from . import journal as _journal
from .catalog_store import CatalogStore

__all__ = [
    "CrashOutcome",
    "catalog_crash_matrix",
    "kill_and_resume",
]


@dataclass(frozen=True)
class CrashOutcome:
    """Verdict of one (crash point, flavor) cell of the matrix."""

    #: Durable write operation the simulated death landed on.
    op_index: int
    #: ``"torn"`` (short write) or ``"corrupt"`` (CRC-breaking bit flip).
    flavor: str
    #: Whether the workload actually died at this op (late crash points
    #: fall beyond the workload's op count and complete normally).
    crashed: bool
    #: Script steps that fully completed before the death.
    completed_steps: int
    #: Recovery kinds the reopen reported (``CatalogStore.recoveries``).
    recoveries: dict
    #: True when the reopened state equals the completed-prefix state.
    consistent: bool


def _state_fingerprint(catalog) -> dict:
    """Deterministic (version, payload) fingerprint of a catalog's state."""
    return {
        f"{table}.{column}": (
            catalog.version(table, column),
            json.dumps(
                statistics_to_dict(catalog.get(table, column)),
                sort_keys=True,
            ),
        )
        for table, column in catalog.keys()
    }


def _script_steps(bundles) -> list:
    """The scripted workload the matrix sweeps: puts, checkpoints, a drop.

    Covers every durable-operation shape the store has: journal appends
    for put and drop, the snapshot write, the snapshot-to-truncation
    window, and a second checkpoint over a journal that saw post-snapshot
    mutations.
    """
    steps = [(lambda store, s=stats: store.put(s)) for stats in bundles]
    steps.append(lambda store: store.checkpoint())
    first = bundles[0]
    steps.append(
        lambda store: store.drop(first.table_name, first.column_name)
    )
    steps.extend(
        (lambda store, s=stats: store.put(s)) for stats in bundles[:2]
    )
    steps.append(lambda store: store.checkpoint())
    return steps


def catalog_crash_matrix(
    bundles,
    root: str | os.PathLike,
    flavors: tuple[str, ...] = ("torn", "corrupt"),
) -> list[CrashOutcome]:
    """Crash the scripted workload at every durable op; verify recovery.

    *bundles* are :class:`~repro.engine.statistics.ColumnStatistics` with
    distinct ``(table, column)`` identities (two or more); *root* is a
    scratch directory receiving one subdirectory per matrix cell.  Every
    reopen is performed fault-free — recovery itself must never raise —
    and every outcome's ``consistent`` flag asserts the last-known-good
    contract.  Callers (tests, docs) check ``all(o.consistent for o in
    outcomes)``.
    """
    root = Path(root)
    baseline = CatalogStore(root / "baseline", write_faults=WriteFaultPolicy())
    steps = _script_steps(bundles)
    prefixes = [_state_fingerprint(baseline.catalog)]
    for step in steps:
        step(baseline)
        prefixes.append(_state_fingerprint(baseline.catalog))
    total_ops = baseline._injector.ops

    outcomes = []
    for flavor in flavors:
        for op_index in range(total_ops):
            policy = WriteFaultPolicy(
                crash_at_op=op_index,
                torn_fraction=0.5 if flavor == "torn" else 1.0,
                corrupt_tail=flavor == "corrupt",
                seed=op_index,
            )
            directory = root / f"{flavor}-{op_index:03d}"
            store = CatalogStore(directory, write_faults=policy)
            completed = 0
            crashed = False
            try:
                for step in steps:
                    step(store)
                    completed += 1
            except SimulatedCrashError:
                crashed = True
            reopened = CatalogStore(directory)
            outcomes.append(
                CrashOutcome(
                    op_index=op_index,
                    flavor=flavor,
                    crashed=crashed,
                    completed_steps=completed,
                    recoveries=dict(reopened.recoveries),
                    consistent=(
                        _state_fingerprint(reopened.catalog)
                        == prefixes[completed]
                    ),
                )
            )
    return outcomes


def _journal_records(path: Path) -> int:
    """Complete records currently in a run journal (0 when absent)."""
    records, _, _ = _journal.read_records(path)
    return len(records)


def kill_and_resume(
    argv: list[str],
    checkpoint_dir: str | os.PathLike,
    *,
    min_records: int = 2,
    poll_s: float = 0.05,
    max_polls: int = 2400,
    env: dict | None = None,
) -> tuple[int, subprocess.CompletedProcess]:
    """SIGKILL a checkpointed CLI run mid-flight, then resume it.

    Spawns ``python -m repro <argv> --checkpoint <dir>`` and polls the run
    journal until at least *min_records* complete records exist (proving
    the kill lands mid-run, not before the first chunk); then delivers
    ``SIGKILL`` — no cleanup handlers run, exactly like a crash or OOM
    kill.  A second invocation with ``--resume`` runs to completion and is
    returned for the caller to diff against an uninterrupted reference.

    Returns ``(first_run_returncode, resumed_completed_process)``; the
    first return code is ``-SIGKILL`` when the kill landed, or the
    process's own exit code when it finished before reaching
    *min_records* (tiny workloads).
    """
    checkpoint_dir = Path(checkpoint_dir)
    journal_path = checkpoint_dir / "run.journal"
    command = [
        sys.executable,
        "-m",
        "repro",
        *argv,
        "--checkpoint",
        str(checkpoint_dir),
    ]
    victim = subprocess.Popen(
        command,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        for _ in range(max_polls):
            if victim.poll() is not None:
                break
            if _journal_records(journal_path) >= min_records:
                victim.send_signal(signal.SIGKILL)
                break
            time.sleep(poll_s)
        else:
            victim.send_signal(signal.SIGKILL)
    finally:
        first_code = victim.wait()
    resumed = subprocess.run(
        command + ["--resume"],
        capture_output=True,
        text=True,
        env=env,
    )
    return first_code, resumed
