"""Run journal: chunk-level checkpointing for TrialPool sweeps.

A figure sweep is a deterministic sequence of :meth:`TrialPool.map`
calls, each over seeds spawned up front (:func:`repro._rng.spawn_seeds`).
That structure makes resume trivial to get *bit-identical*: key every
map by its position in the call sequence plus a digest of its seeds,
journal each completed chunk's results, and on resume splice journaled
chunks back while re-running only the missing ones.  Because chunk
results are pure functions of ``(fn, seeds)``, the spliced output equals
an uninterrupted run element-for-element.

On disk a checkpoint directory holds one ``run.journal``
(:mod:`repro.durability.journal` CRC framing — a SIGKILL mid-append is
truncated away on resume).  Records:

- ``{"op": "map", "map": i, "key": digest, "chunk_size": c, "chunks": n}``
  — written when map *i* first plans its chunking; on resume the
  journaled ``chunk_size`` wins over the current worker count's default
  so chunk boundaries (and therefore chunk keys) line up.
- ``{"op": "chunk", "map": i, "chunk": j, "data": base64-pickle}``
  — the timed results of chunk *j*, appended the moment it completes.
- ``{"op": "quarantine", "map": i, "chunk": j, "error": msg}``
  — a poison chunk that exhausted its re-dispatch budget.

Resuming with different sweep parameters would splice foreign results,
so a key mismatch raises :class:`~repro.exceptions.CheckpointError`.
"""

from __future__ import annotations

import base64
import hashlib
import os
import pickle
from pathlib import Path

from ..exceptions import CheckpointError
from ..obs import metrics as _metrics
from . import journal as _journal

__all__ = ["RunCheckpoint", "MapPlan"]


def seeds_key(seeds) -> str:
    """Stable digest identifying one map's seed sequence."""
    return hashlib.sha256(repr(list(seeds)).encode("utf-8")).hexdigest()[:16]


class MapPlan:
    """One map call's slice of the run journal.

    Produced by :meth:`RunCheckpoint.begin_map`; exposes the (possibly
    journaled) ``chunk_size``, the chunks already ``completed`` on a
    previous run, and :meth:`record` / :meth:`quarantine` appenders.
    """

    def __init__(
        self,
        checkpoint: "RunCheckpoint",
        map_index: int,
        chunk_size: int,
        completed: dict[int, list],
    ):
        self._checkpoint = checkpoint
        self.map_index = map_index
        self.chunk_size = chunk_size
        self.completed = completed

    def record(self, chunk_index: int, timed: list) -> None:
        """Durably journal one completed chunk's timed results."""
        data = base64.b64encode(pickle.dumps(timed)).decode("ascii")
        self._checkpoint._append(
            {
                "op": "chunk",
                "map": self.map_index,
                "chunk": chunk_index,
                "data": data,
            }
        )

    def quarantine(self, chunk_index: int, error: str) -> None:
        """Journal a poison chunk so post-mortems know what was dropped."""
        self._checkpoint._append(
            {
                "op": "quarantine",
                "map": self.map_index,
                "chunk": chunk_index,
                "error": error,
            }
        )


class RunCheckpoint:
    """Durable chunk cache for a deterministic sequence of pool maps.

    Parameters
    ----------
    directory:
        Checkpoint directory (created if missing) holding ``run.journal``.
    resume:
        When true, previously journaled chunks are loaded and served; the
        journal's damaged tail (if the process died mid-append) is
        truncated first.  When false, any existing journal is discarded
        and the run starts clean.

    One instance spans one CLI invocation; pass it to
    :class:`repro.experiments.parallel.TrialPool` (or through the figure
    and chaos drivers' ``checkpoint`` parameter).
    """

    JOURNAL_NAME = "run.journal"

    def __init__(self, directory: str | os.PathLike, resume: bool = False):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._path = self._dir / self.JOURNAL_NAME
        self._map_counter = 0
        self._metas: dict[int, dict] = {}
        self._chunks: dict[int, dict[int, list]] = {}
        self.resumed = bool(resume)
        if resume:
            self._load()
        elif self._path.exists():
            _journal.truncate_to(self._path, 0)

    def _load(self) -> None:
        records, clean_bytes, tail = _journal.read_records(self._path)
        if tail is not None:
            # The kill landed mid-append; the torn frame never completed,
            # so it is not a completed chunk. Drop it and re-run that chunk.
            _journal.truncate_to(self._path, clean_bytes)
        for record in records:
            op = record.get("op")
            if op == "map":
                self._metas[int(record["map"])] = record
            elif op == "chunk":
                timed = pickle.loads(base64.b64decode(record["data"]))
                self._chunks.setdefault(int(record["map"]), {})[
                    int(record["chunk"])
                ] = timed

    def _append(self, record: dict) -> None:
        _journal.append_record(self._path, record, kind="run_journal")

    def begin_map(self, key: str, chunk_size: int, num_chunks: int) -> MapPlan:
        """Open the journal slice for the next map in call order.

        *key* is :func:`seeds_key` of the map's seeds; *chunk_size* and
        *num_chunks* describe the chunking the caller would use from
        scratch.  On resume, a journaled plan for this position must
        match the key (else :class:`~repro.exceptions.CheckpointError`)
        and its chunking wins, so completed chunks line up even if the
        worker count changed.
        """
        map_index = self._map_counter
        self._map_counter += 1
        meta = self._metas.get(map_index)
        if meta is not None:
            if meta.get("key") != key:
                raise CheckpointError(
                    f"checkpoint mismatch at map {map_index}: journal has "
                    f"key {meta.get('key')!r}, this run derived {key!r} — "
                    "the checkpoint belongs to a different sweep "
                    "(different seeds, scale or trial counts)"
                )
            completed = dict(self._chunks.get(map_index, {}))
            if completed:
                _metrics.inc(
                    "repro_pool_chunks_resumed_total", len(completed)
                )
            return MapPlan(self, map_index, int(meta["chunk_size"]), completed)
        self._append(
            {
                "op": "map",
                "map": map_index,
                "key": key,
                "chunk_size": chunk_size,
                "chunks": num_chunks,
            }
        )
        return MapPlan(self, map_index, chunk_size, {})
