"""CRC-framed append-only journal records with truncating recovery.

On-disk format (documented in docs/DURABILITY.md): one record per line,

    ``J1 <crc32:08x> <len> <compact-json>\\n``

where ``len`` is the byte length of the JSON body and the CRC-32 covers
exactly those bytes.  A crash can only damage the *tail* of an
append-only file, so recovery scans records from the start and stops at
the first frame that is incomplete (torn) or fails its CRC (scribbled);
:func:`read_records` reports the clean prefix length so callers can
truncate back to the last good record — the journal twin of
last-known-good.

Appends are the second sanctioned durable-write form next to
:mod:`repro.durability.atomic`: ``open(path, "ab")`` + flush + fsync is
crash-safe *by construction of this frame format*, because any torn
suffix is detected and discarded on the next open.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from ..exceptions import ParameterError
from ..obs import metrics as _metrics

__all__ = ["append_record", "read_records", "truncate_to"]

_MAGIC = "J1"


def encode_record(obj: Any) -> bytes:
    """The framed bytes of one journal record holding *obj* (JSON-able)."""
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    if "\n" in body:
        raise ParameterError("journal record bodies must be single-line JSON")
    raw = body.encode("utf-8")
    return f"{_MAGIC} {zlib.crc32(raw):08x} {len(raw)} {body}\n".encode("utf-8")


def append_record(
    path: str | os.PathLike,
    obj: Any,
    *,
    kind: str = "journal",
    injector=None,
) -> int:
    """Durably append one record for *obj*; returns bytes written.

    The append is flushed and fsync'd before returning.  With a crashing
    *injector* (:class:`repro.storage.faults.WriteFaultInjector`) the torn
    frame genuinely lands on disk and
    :class:`~repro.exceptions.SimulatedCrashError` is raised afterwards —
    the next :func:`read_records` must recover by discarding it.
    """
    data = encode_record(obj)
    crash = False
    if injector is not None:
        data, crash = injector.apply(data)
    # Append-only journal write: crash-safe via the CRC frame, not via
    # rename (see module docstring).
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if crash:
        injector.crash(f"journal append to {Path(path).name}")
    _metrics.inc("repro_checkpoint_writes_total", kind=kind)
    _metrics.inc("repro_checkpoint_bytes_total", len(data), kind=kind)
    return len(data)


def _parse_line(line: bytes) -> Any | None:
    """The decoded body of one framed line, or ``None`` if invalid."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    parts = text.split(" ", 3)
    if len(parts) != 4 or parts[0] != _MAGIC:
        return None
    magic, crc_hex, length, body = parts
    raw = body.encode("utf-8")
    try:
        if len(raw) != int(length) or zlib.crc32(raw) != int(crc_hex, 16):
            return None
        return json.loads(body)
    except ValueError:
        return None


def read_records(
    path: str | os.PathLike,
) -> tuple[list[Any], int, str | None]:
    """Scan a journal, stopping at the first damaged frame.

    Returns ``(records, clean_bytes, tail)``: the decoded clean-prefix
    records, the byte offset where the clean prefix ends, and the tail
    state — ``None`` when the whole file parsed, ``"torn"`` when the last
    frame has no newline (the write was cut short), ``"corrupt"`` when a
    complete line fails the frame check (bad magic, length or CRC).
    A missing file reads as empty and clean.
    """
    path = Path(path)
    if not path.exists():
        return [], 0, None
    data = path.read_bytes()
    records: list[Any] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            return records, offset, "torn"
        record = _parse_line(data[offset : newline + 1].rstrip(b"\n"))
        if record is None:
            return records, offset, "corrupt"
        records.append(record)
        offset = newline + 1
    return records, offset, None


def truncate_to(path: str | os.PathLike, clean_bytes: int) -> None:
    """Cut a journal back to its clean prefix (recovery step)."""
    os.truncate(path, clean_bytes)
