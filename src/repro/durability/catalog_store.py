"""Durable catalog: atomic snapshot + CRC-checked journal, LKG recovery.

:class:`CatalogStore` persists a :class:`repro.engine.catalog.Catalog` in
a directory holding two files:

- ``catalog.snapshot.json`` — the full catalog (entries *and* per-key
  versions, which :func:`repro.engine.serialization.dump_catalog` alone
  does not carry), written atomically via
  :func:`repro.durability.atomic.atomic_write_json`.
- ``catalog.journal`` — CRC-framed put/drop records
  (:mod:`repro.durability.journal`) appended on every mutation.

Every journal record carries a monotonically increasing sequence number,
and the snapshot records the last sequence it incorporates
(``last_seq``).  :meth:`CatalogStore.checkpoint` writes the snapshot
*then* truncates the journal; a crash between the two leaves stale
records behind, and recovery skips any record with ``seq <= last_seq``,
so replay is idempotent at every crash point.

Opening a store recovers to last-known-good without raising, whatever
the crash left behind:

==============================  =======================================
crash artifact                  recovery
==============================  =======================================
leftover ``*.tmp`` snapshot     removed; previous snapshot authoritative
corrupt/torn snapshot           treated as absent (journal still replays)
torn journal tail (no newline)  truncated to the last complete record
corrupt journal tail (bad CRC)  truncated to the last good record
stale journal records           skipped via ``seq <= last_seq``
==============================  =======================================

Recovery counts surface as ``repro_catalog_recoveries_total{kind}`` and
``repro_journal_replays_total``; checkpoints run under the
``durability.checkpoint`` span, opens under ``durability.recover``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..engine.catalog import Catalog
from ..engine.serialization import statistics_from_dict, statistics_to_dict
from ..exceptions import ParameterError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from . import journal as _journal
from .atomic import atomic_write_json

__all__ = ["CatalogStore"]

_SNAPSHOT_VERSION = 1


class _DurableCatalog(Catalog):
    """A catalog whose mutations are journaled by its owning store.

    Handed to :class:`repro.engine.statistics.StatisticsManager` (and
    through it :class:`repro.engine.maintenance.AutoStatistics`) so every
    ``analyze`` lands in the journal without the engine knowing about
    durability at all.
    """

    def __init__(self, store: "CatalogStore"):
        super().__init__()
        self._store = store

    def put(self, statistics) -> int:
        """Store and journal (or replace) statistics; returns the version."""
        return self._store.put(statistics)

    def drop(self, table_name: str, column_name: str) -> None:
        """Remove and journal the removal (idempotent)."""
        self._store.drop(table_name, column_name)


class CatalogStore:
    """Snapshot+journal persistence for the statistics catalog.

    Parameters
    ----------
    directory:
        Where ``catalog.snapshot.json`` and ``catalog.journal`` live;
        created if missing.  Opening the store recovers whatever state
        the directory holds (see module docstring) — it never raises on
        crash damage.
    write_faults:
        Optional :class:`repro.storage.faults.WriteFaultPolicy`; its
        injector sees every durable operation (snapshot write, journal
        append, journal truncation) so tests can die at seeded points.
    """

    SNAPSHOT_NAME = "catalog.snapshot.json"
    JOURNAL_NAME = "catalog.journal"

    def __init__(self, directory: str | os.PathLike, write_faults=None):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._snapshot_path = self._dir / self.SNAPSHOT_NAME
        self._journal_path = self._dir / self.JOURNAL_NAME
        self._injector = (
            write_faults.injector() if write_faults is not None else None
        )
        self.catalog = _DurableCatalog(self)
        self._seq = 0
        self.recoveries: dict[str, int] = {}
        self.replayed = 0
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _note_recovery(self, kind: str) -> None:
        self.recoveries[kind] = self.recoveries.get(kind, 0) + 1
        _metrics.inc("repro_catalog_recoveries_total", kind=kind)

    def _load_snapshot(self) -> int:
        """Install the snapshot if readable; returns its ``last_seq``."""
        tmp = self._snapshot_path.with_name(self._snapshot_path.name + ".tmp")
        if tmp.exists():
            # A crash died between writing the tmp file and the rename;
            # the rename never happened, so the tmp bytes are garbage.
            tmp.unlink()
            self._note_recovery("torn_snapshot")
        if not self._snapshot_path.exists():
            return 0
        try:
            payload = json.loads(self._snapshot_path.read_text())
            if payload.get("snapshot_version") != _SNAPSHOT_VERSION:
                raise ParameterError("unknown snapshot version")
            entries = payload["entries"]
            last_seq = int(payload["last_seq"])
            for entry in entries:
                # Unbound Catalog method: restores must not re-journal.
                Catalog.restore(
                    self.catalog,
                    statistics_from_dict(entry["statistics"]),
                    int(entry["version"]),
                )
            return last_seq
        except (OSError, ValueError, KeyError, TypeError, ParameterError):
            # Atomic writes should make this unreachable, but a scribbled
            # disk is exactly what last-known-good must survive: treat
            # the snapshot as absent and fall back to the journal.
            self._note_recovery("corrupt_snapshot")
            return 0

    def _recover(self) -> None:
        with _trace.span("durability.recover"):
            last_seq = self._load_snapshot()
            records, clean_bytes, tail = _journal.read_records(
                self._journal_path
            )
            if tail is not None:
                _journal.truncate_to(self._journal_path, clean_bytes)
                self._note_recovery(f"{tail}_journal")
            seen = last_seq
            replayed = 0
            for record in records:
                seq = int(record.get("seq", 0))
                seen = max(seen, seq)
                if seq <= last_seq:
                    continue  # already folded into the snapshot
                if record.get("op") == "put":
                    Catalog.restore(
                        self.catalog,
                        statistics_from_dict(record["statistics"]),
                        int(record["version"]),
                    )
                elif record.get("op") == "drop":
                    Catalog.drop(
                        self.catalog, record["table"], record["column"]
                    )
                replayed += 1
            self._seq = seen
            self.replayed = replayed
            if replayed:
                _metrics.inc("repro_journal_replays_total", replayed)

    # ------------------------------------------------------------------
    # Mutation (journaled)
    # ------------------------------------------------------------------

    def put(self, statistics) -> int:
        """Install statistics in the catalog and journal the mutation."""
        version = Catalog.put(self.catalog, statistics)
        self._seq += 1
        _journal.append_record(
            self._journal_path,
            {
                "seq": self._seq,
                "op": "put",
                "version": version,
                "statistics": statistics_to_dict(statistics),
            },
            injector=self._injector,
        )
        return version

    def drop(self, table_name: str, column_name: str) -> None:
        """Drop a column's statistics and journal the drop."""
        Catalog.drop(self.catalog, table_name, column_name)
        self._seq += 1
        _journal.append_record(
            self._journal_path,
            {
                "seq": self._seq,
                "op": "drop",
                "table": table_name,
                "column": column_name,
            },
            injector=self._injector,
        )

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> Path:
        """Write an atomic snapshot, then truncate the journal.

        A crash after the snapshot rename but before the truncation is
        harmless: the leftover records all have ``seq <= last_seq`` and
        are skipped on replay.
        """
        with _trace.span("durability.checkpoint", entries=len(self.catalog)):
            payload = {
                "snapshot_version": _SNAPSHOT_VERSION,
                "last_seq": self._seq,
                "entries": [
                    {
                        "version": self.catalog.version(table, column),
                        "statistics": statistics_to_dict(
                            self.catalog.get(table, column)
                        ),
                    }
                    for table, column in self.catalog.keys()
                ],
            }
            atomic_write_json(
                self._snapshot_path,
                payload,
                kind="snapshot",
                injector=self._injector,
            )
            if self._injector is not None:
                # The truncation is a durable operation too: dying here
                # models "crash between snapshot and journal truncation".
                _, crash = self._injector.apply(b"")
                if crash:
                    self._injector.crash("journal truncation")
            if self._journal_path.exists():
                _journal.truncate_to(self._journal_path, 0)
        return self._snapshot_path
