"""Shared measurement kernels for the figure experiments.

Two kinds of measurement appear in Section 7:

- *error at a fixed sampling rate* (Figures 5, 7): sample that fraction of
  disk blocks, build the histogram, and evaluate it against the full data;
- *sampling required to reach a fixed error* (Figures 3, 4, 6, 8): run the
  CVB algorithm with the target error and report what it actually sampled.

Histogram quality is measured with the duplicate-safe fractional max error
f′ (Definition 4) by default, which coincides with the plain fraction ``f``
on duplicate-free data; the count metric is available for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from .._rng import RngLike, ensure_rng, spawn_seeds
from ..core.adaptive import CVBConfig, CVBResult, CVBSampler
from ..core.error_metrics import fractional_max_error, histogram_max_error_fraction
from ..core.histogram import EquiHeightHistogram
from ..exceptions import ParameterError
from ..sampling.block_sampler import sample_blocks
from ..sampling.schedule import StepSchedule
from ..storage.heapfile import HeapFile
from .parallel import TrialPool, TrialRecord, run_trials

__all__ = [
    "build_heapfile",
    "histogram_quality",
    "error_at_rate",
    "mean_error_at_rate",
    "required_blocks_for_error",
    "CVBCost",
    "cvb_sampling_cost",
    "mean_cvb_cost",
]


def build_heapfile(
    values: np.ndarray,
    layout: str,
    blocking_factor: int,
    rng: RngLike = None,
    cluster_fraction: float = 0.2,
) -> HeapFile:
    """Materialise *values* as a heap file with an exact blocking factor."""
    return HeapFile.from_values(
        values,
        layout=layout,
        rng=rng,
        blocking_factor=blocking_factor,
        cluster_fraction=cluster_fraction,
    )


def histogram_quality(
    sample: np.ndarray,
    sorted_values: np.ndarray,
    k: int,
    metric: str = "fractional",
) -> float:
    """Error of the histogram built from *sample*, against the full data."""
    histogram = EquiHeightHistogram.from_values(sample, k)
    if metric == "fractional":
        return fractional_max_error(histogram.separators, sample, sorted_values)
    if metric == "count":
        return histogram_max_error_fraction(histogram, sorted_values)
    raise ParameterError(f"metric must be 'fractional' or 'count', got {metric!r}")


def error_at_rate(
    heapfile: HeapFile,
    sorted_values: np.ndarray,
    rate: float,
    k: int,
    rng: RngLike = None,
    metric: str = "fractional",
) -> float:
    """Sample *rate* of the file's blocks once and measure histogram error."""
    if not 0 < rate <= 1:
        raise ParameterError(f"rate must be in (0, 1], got {rate}")
    num_blocks = max(1, round(rate * heapfile.num_pages))
    sample = sample_blocks(heapfile, num_blocks, rng=rng)
    return histogram_quality(sample, sorted_values, k, metric=metric)


def _error_at_rate_trial(task: tuple, seed: int) -> TrialRecord:
    """Picklable per-trial kernel behind :func:`mean_error_at_rate`."""
    heapfile, sorted_values, rate, k, metric = task
    before = heapfile.iostats.page_reads
    err = error_at_rate(heapfile, sorted_values, rate, k, rng=seed, metric=metric)
    return TrialRecord(err, page_reads=heapfile.iostats.page_reads - before)


def mean_error_at_rate(
    heapfile: HeapFile,
    sorted_values: np.ndarray,
    rate: float,
    k: int,
    trials: int,
    rng: RngLike = None,
    metric: str = "fractional",
    statistic: str = "median",
    workers: int | None = None,
    chunk_size: int | None = None,
    pool: TrialPool | None = None,
) -> float:
    """Central :func:`error_at_rate` over *trials* independent samples.

    Defaults to the median: the fractional max error has a heavy upper tail
    (one under-sampled separator range dominates the max), and a mean over a
    handful of trials chases that tail.  Pass ``statistic="mean"`` for the
    raw average.

    Trials fan out over *workers* processes (or an existing *pool*); each
    trial's stream derives only from its own spawned seed, so any worker
    count returns bit-identical floats to the serial loop.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    if statistic not in ("median", "mean"):
        raise ParameterError(
            f"statistic must be 'median' or 'mean', got {statistic!r}"
        )
    seeds = spawn_seeds(rng, trials)
    fn = partial(
        _error_at_rate_trial, (heapfile, sorted_values, rate, k, metric)
    )
    errors = run_trials(
        fn, seeds, max_workers=workers, chunk_size=chunk_size, pool=pool
    )
    return float(np.median(errors) if statistic == "median" else np.mean(errors))


def _probe_trial(task: tuple, seed: int) -> TrialRecord:
    """Picklable per-trial kernel behind :func:`required_blocks_for_error`."""
    heapfile, sorted_values, k, metric, num_blocks = task
    before = heapfile.iostats.page_reads
    sample = sample_blocks(heapfile, num_blocks, rng=seed)
    err = histogram_quality(sample, sorted_values, k, metric=metric)
    return TrialRecord(err, page_reads=heapfile.iostats.page_reads - before)


def required_blocks_for_error(
    heapfile: HeapFile,
    sorted_values: np.ndarray,
    k: int,
    f: float,
    trials: int = 9,
    rng: RngLike = None,
    metric: str = "fractional",
    workers: int | None = None,
    chunk_size: int | None = None,
    pool: TrialPool | None = None,
) -> int:
    """Smallest number of sampled blocks whose median measured error is <= *f*.

    This is the ground-truth sampling requirement behind Figures 3, 4, 6
    and 8: binary search over the block count, evaluating the mean error of
    *trials* independent block samples at each probe.  (The CVB algorithm's
    own stopping point tracks this quantity from the data side; the
    ablation benchmark compares the two.)

    The grid scan itself stays sequential (each probe decides the next),
    but the *trials* inside every probe fan out over *workers* processes
    with bit-identical results to the serial loop.
    """
    if not 0 < f <= 1:
        raise ParameterError(f"f must be in (0, 1], got {f}")
    generator = ensure_rng(rng)

    def mean_error(num_blocks: int) -> float:
        seeds = spawn_seeds(int(generator.integers(0, 2**63)), trials)
        fn = partial(
            _probe_trial, (heapfile, sorted_values, k, metric, num_blocks)
        )
        errors = run_trials(
            fn, seeds, max_workers=workers, chunk_size=chunk_size, pool=pool
        )
        # Median: the fractional max error has a heavy upper tail near the
        # threshold (one under-sampled range dominates the max), and a mean
        # over few trials would chase that tail.
        return float(np.median(errors))

    # Geometric grid scan with confirmation: a plain binary search is
    # fragile against one optimistically noisy probe; here a candidate only
    # wins if the next grid point also clears the threshold.
    total = heapfile.num_pages
    g = 1
    grid = []
    while g < total:
        grid.append(g)
        g = max(g + 1, int(g * 1.4))
    grid.append(total)
    means = {}

    def err(g: int) -> float:
        if g not in means:
            means[g] = mean_error(g)
        return means[g]

    for i, g in enumerate(grid):
        if err(g) <= f:
            confirm = grid[i + 1 : i + 3]
            if all(err(c) <= f for c in confirm):
                return g
    return total


@dataclass(frozen=True)
class CVBCost:
    """What one CVB run spent and achieved."""

    sampling_rate: float
    blocks_sampled: int
    tuples_sampled: int
    iterations: int
    converged: bool
    achieved_error: float


def cvb_sampling_cost(
    heapfile: HeapFile,
    sorted_values: np.ndarray,
    k: int,
    f: float,
    gamma: float = 0.01,
    rng: RngLike = None,
    metric: str = "fractional",
    schedule: StepSchedule | None = None,
    **config_kwargs,
) -> CVBCost:
    """Run CVB targeting error *f* and report the sampling it needed.

    ``achieved_error`` is the final histogram's error against the *full*
    data — the check that convergence wasn't declared spuriously.

    Scheduling defaults to :class:`CVBSampler`'s own: doubling from the
    prototype's ``5*sqrt(n)``-tuple initial sample (Section 7.1).
    """
    config = CVBConfig(k=k, f=f, gamma=gamma, metric=metric, **config_kwargs)
    result: CVBResult = CVBSampler(config, schedule=schedule).run(heapfile, rng=rng)
    if metric == "fractional":
        achieved = fractional_max_error(
            result.histogram.separators, result.sample, sorted_values
        )
    else:
        achieved = histogram_max_error_fraction(result.histogram, sorted_values)
    return CVBCost(
        sampling_rate=result.tuples_sampled / heapfile.num_records,
        blocks_sampled=result.pages_sampled,
        tuples_sampled=result.tuples_sampled,
        iterations=len(result.iterations),
        converged=result.converged,
        achieved_error=float(achieved),
    )


def _cvb_trial(task: tuple, seed_pair: tuple) -> TrialRecord:
    """Picklable per-trial kernel behind :func:`mean_cvb_cost`."""
    make_heapfile, sorted_values, k, f, kwargs = task
    build_seed, run_seed = seed_pair
    heapfile = make_heapfile(np.random.default_rng(build_seed))
    cost = cvb_sampling_cost(
        heapfile, sorted_values, k, f, rng=run_seed, **kwargs
    )
    return TrialRecord(cost, page_reads=heapfile.iostats.page_reads)


def mean_cvb_cost(
    make_heapfile,
    sorted_values: np.ndarray,
    k: int,
    f: float,
    trials: int,
    rng: RngLike = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    pool: TrialPool | None = None,
    **kwargs,
) -> CVBCost:
    """Average CVB cost over *trials* runs.

    *make_heapfile* is a callable ``(rng) -> HeapFile`` so each trial gets an
    independent physical layout as well as an independent sample (matching
    how the paper repeats runs).  When it (and the extra config) pickles,
    trials fan out over *workers* processes; a closure or lambda silently
    degrades to the equivalent in-process loop, so results are identical
    either way.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    seeds = spawn_seeds(rng, 2 * trials)
    seed_pairs = [(seeds[2 * i], seeds[2 * i + 1]) for i in range(trials)]
    fn = partial(_cvb_trial, (make_heapfile, sorted_values, k, f, kwargs))
    costs = run_trials(
        fn, seed_pairs, max_workers=workers, chunk_size=chunk_size, pool=pool
    )
    return CVBCost(
        sampling_rate=float(np.mean([c.sampling_rate for c in costs])),
        blocks_sampled=int(round(np.mean([c.blocks_sampled for c in costs]))),
        tuples_sampled=int(round(np.mean([c.tuples_sampled for c in costs]))),
        iterations=int(round(np.mean([c.iterations for c in costs]))),
        converged=all(c.converged for c in costs),
        achieved_error=float(np.mean([c.achieved_error for c in costs])),
    )
