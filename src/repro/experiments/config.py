"""Experiment scaling.

The paper's testbed used tables of 5-20 million rows and 600-bucket
histograms.  The reproduction's default scale is smaller so the full
benchmark suite runs in minutes on a laptop; the paper's own central result
(Corollary 1: required sample size is essentially independent of ``n``)
is exactly why the shapes survive scaling.  Set the environment variable
``REPRO_SCALE=paper`` to run at paper scale.

Every figure benchmark reads its parameters from :func:`get_scale` so the
whole suite scales together.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Parameter bundle shared by the figure benchmarks.

    Attributes
    ----------
    n:
        Default table size (rows) for single-table figures.
    n_sweep:
        Table sizes for the "varying the number of records" figures (3, 4).
    k:
        Default histogram bucket count (paper: 600).
    bins_sweep:
        Bucket counts for Figure 6 (paper: 50..600).
    blocking_factor:
        Default records per page.
    record_sizes:
        Record sizes for Figure 8 (paper: 16..128 bytes).
    trials:
        Random repetitions averaged per measured point.
    rates:
        Sampling-rate grid for error-vs-rate figures (5, 7, 9-12).
    f_target:
        Max-error target for the "sampling required" figures (3, 4, 8).
        Chosen per scale so the cross-validation test can certify it well
        below a full scan: a reliable pass needs validation increments of
        roughly ``10*k/f^2`` tuples, so smaller tables get a coarser target
        (the paper's 0.1 at n = 10M, k = 600 sits in the same regime).
    f_bins:
        Max-error target for the bins sweep of Figure 6 (paper: 0.2).
    """

    name: str
    n: int
    n_sweep: tuple[int, ...]
    k: int
    bins_sweep: tuple[int, ...]
    blocking_factor: int
    record_sizes: tuple[int, ...]
    trials: int
    rates: tuple[float, ...]
    f_target: float
    f_bins: float


SCALES = {
    "small": ExperimentScale(
        name="small",
        n=200_000,
        n_sweep=(100_000, 200_000, 300_000, 400_000),
        k=50,
        bins_sweep=(10, 20, 40, 80),
        blocking_factor=50,
        record_sizes=(16, 32, 64, 128),
        trials=3,
        rates=(0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4),
        f_target=0.15,
        f_bins=0.25,
    ),
    "medium": ExperimentScale(
        name="medium",
        n=1_000_000,
        n_sweep=(500_000, 1_000_000, 1_500_000, 2_000_000),
        k=100,
        bins_sweep=(25, 50, 100, 200),
        blocking_factor=100,
        record_sizes=(16, 32, 64, 128),
        trials=3,
        rates=(0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2),
        f_target=0.12,
        f_bins=0.2,
    ),
    "paper": ExperimentScale(
        name="paper",
        n=10_000_000,
        n_sweep=(5_000_000, 10_000_000, 15_000_000, 20_000_000),
        k=600,
        bins_sweep=(50, 100, 200, 400, 600),
        blocking_factor=100,
        record_sizes=(16, 32, 64, 128),
        trials=3,
        rates=(0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
        f_target=0.1,
        f_bins=0.2,
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve the experiment scale: explicit name, else ``$REPRO_SCALE``,
    else ``small``."""
    resolved = name or os.environ.get("REPRO_SCALE", "small")
    if resolved not in SCALES:
        raise KeyError(
            f"unknown scale {resolved!r}; choose one of {sorted(SCALES)}"
        )
    return SCALES[resolved]
