"""Experiment harness: scaled configurations, measurement kernels, and the
series builders behind every figure of the paper's evaluation."""

from .chaos import (
    ChaosPoint,
    ChaosTrialResult,
    chaos_sweep,
    format_chaos_report,
)
from .config import SCALES, ExperimentScale, get_scale
from .parallel import (
    TrialPool,
    TrialRecord,
    TrialStats,
    resolve_workers,
    run_trials,
)
from .figures import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_10,
    figure11_12,
    figures_3_and_4,
)
from .reporting import Series, format_series, format_table, paper_note
from .runner import (
    CVBCost,
    build_heapfile,
    cvb_sampling_cost,
    error_at_rate,
    histogram_quality,
    mean_cvb_cost,
    mean_error_at_rate,
)

__all__ = [
    "ChaosPoint",
    "ChaosTrialResult",
    "chaos_sweep",
    "format_chaos_report",
    "SCALES",
    "ExperimentScale",
    "get_scale",
    "TrialPool",
    "TrialRecord",
    "TrialStats",
    "resolve_workers",
    "run_trials",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9_10",
    "figure11_12",
    "figures_3_and_4",
    "Series",
    "format_series",
    "format_table",
    "paper_note",
    "CVBCost",
    "build_heapfile",
    "cvb_sampling_cost",
    "error_at_rate",
    "histogram_quality",
    "mean_cvb_cost",
    "mean_error_at_rate",
]
