"""Chaos sweep: CVB histogram quality under storage fault injection.

The paper's guarantees (Theorem 7 and the ``f·s/k`` stopping rule) are
about what a *uniform sample* certifies; this experiment checks that the
resilient build keeps delivering on them when the storage layer misbehaves.
Each trial builds a heap file, wraps it in a
:class:`~repro.storage.faults.FaultyHeapFile` at a given transient-fault
rate (plus a fixed fraction of permanently corrupt pages), runs the
retrying CVB build, and measures the achieved duplicate-safe max error f′
(Definition 4 — what the stopping rule actually thresholds against ``f``)
over the *readable* portion of the table — the population a sample can
possibly represent once pages are permanently lost.

Trials fan out over the deterministic
:class:`~repro.experiments.parallel.TrialPool`: per-trial seeds are spawned
up front, so the sweep is bit-identical across runs and worker counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, spawn_seeds
from ..obs import trace as _trace
from ..core.adaptive import cvb_build
from ..core.error_metrics import fractional_max_error
from ..exceptions import BuildAbortedError
from ..storage.faults import FaultPolicy, FaultyHeapFile, ReadBudget, RetryPolicy
from ..storage.heapfile import HeapFile
from ..storage.iostats import IOStats
from ..workloads.datasets import make_dataset
from .parallel import TrialPool
from .reporting import Series, format_table

__all__ = ["ChaosTrialResult", "ChaosPoint", "chaos_sweep", "format_chaos_report"]


@dataclass(frozen=True)
class ChaosTrialResult:
    """One trial's outcome (picklable: crosses TrialPool workers)."""

    fault_rate: float
    error: float  # achieved f' (Def. 4) over readable data; NaN if aborted
    converged: bool
    aborted: bool
    pages_sampled: int
    pages_skipped: int
    iostats: IOStats


@dataclass(frozen=True)
class ChaosPoint:
    """Aggregated trials at one fault rate."""

    fault_rate: float
    trials: int
    aborted: int
    converged: int
    mean_error: float
    worst_error: float
    iostats: IOStats


def _chaos_trial(task: tuple) -> ChaosTrialResult:
    """Picklable trial kernel: one resilient CVB build under faults."""
    (
        seed,
        n,
        k,
        f,
        fault_rate,
        corrupt_fraction,
        blocking_factor,
        dataset_name,
        max_attempts,
        max_skipped_fraction,
    ) = task
    data_seed, layout_seed, fault_seed, retry_seed, build_seed = spawn_seeds(
        seed, 5
    )
    dataset = make_dataset(dataset_name, n, rng=data_seed)
    base = HeapFile.from_values(
        dataset.values,
        layout="random",
        rng=layout_seed,
        blocking_factor=blocking_factor,
    )
    policy = FaultPolicy(
        transient_rate=fault_rate,
        corrupt_fraction=corrupt_fraction,
        seed=fault_seed,
    )
    faulty = FaultyHeapFile(base, policy)
    retry = RetryPolicy(max_attempts=max_attempts, seed=retry_seed)
    budget = ReadBudget(max_skipped_fraction=max_skipped_fraction)
    try:
        result = cvb_build(
            faulty, k=k, f=f, rng=build_seed, retry=retry, budget=budget
        )
        truth = np.sort(faulty.readable_values_unaccounted())
        # f' of Definition 4 (duplicate-safe), evaluated against the full
        # readable data — the same quantity the stopping rule thresholds
        # against f, so the report's target columns are commensurable.
        error = fractional_max_error(
            result.histogram.separators, result.sample, truth
        )
        return ChaosTrialResult(
            fault_rate=fault_rate,
            error=float(error),
            converged=result.converged,
            aborted=False,
            pages_sampled=result.pages_sampled,
            pages_skipped=result.pages_skipped,
            iostats=faulty.iostats,
        )
    except BuildAbortedError:
        return ChaosTrialResult(
            fault_rate=fault_rate,
            error=float("nan"),
            converged=False,
            aborted=True,
            pages_sampled=faulty.iostats.page_reads,
            pages_skipped=faulty.iostats.pages_skipped,
            iostats=faulty.iostats,
        )


def chaos_sweep(
    fault_rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1),
    n: int = 100_000,
    k: int = 50,
    f: float = 0.2,
    corrupt_fraction: float = 0.01,
    blocking_factor: int = 50,
    dataset: str = "zipf2",
    trials: int = 3,
    seed: RngLike = 0,
    workers: int | None = 1,
    chunk_size: int | None = None,
    max_attempts: int = 5,
    max_skipped_fraction: float = 0.5,
    checkpoint=None,
) -> dict:
    """Sweep transient-fault rates and aggregate resilient-build quality.

    Returns a dict with per-rate :class:`ChaosPoint` aggregates, the error
    :class:`~repro.experiments.reporting.Series`, the Theorem-7-style
    targets (the stopping rule certifies ``~f``; ``2f`` is the loose side
    of the theorem's separation), and the pool's trial stats.  Results are
    bit-identical for any *workers* / *chunk_size*.
    """
    rate_seeds = spawn_seeds(seed, len(fault_rates))
    tasks = []
    for rate, rate_seed in zip(fault_rates, rate_seeds):
        for trial_seed in spawn_seeds(rate_seed, trials):
            tasks.append(
                (
                    trial_seed,
                    n,
                    k,
                    f,
                    rate,
                    corrupt_fraction,
                    blocking_factor,
                    dataset,
                    max_attempts,
                    max_skipped_fraction,
                )
            )
    with _trace.span(
        "chaos.sweep", rates=len(fault_rates), trials=trials, n=n, k=k, f=f
    ):
        with TrialPool(
            max_workers=workers,
            chunk_size=chunk_size,
            checkpoint=checkpoint,
        ) as pool:
            results = pool.map(_chaos_trial, tasks)
            pool_stats = pool.last_stats

    points = []
    error_series = Series("CVB under faults", "fault_rate", "max_error_fraction")
    for index, rate in enumerate(fault_rates):
        batch = results[index * trials : (index + 1) * trials]
        errors = [r.error for r in batch if not math.isnan(r.error)]
        merged = IOStats()
        for r in batch:
            merged.merge(r.iostats)
        point = ChaosPoint(
            fault_rate=rate,
            trials=len(batch),
            aborted=sum(r.aborted for r in batch),
            converged=sum(r.converged for r in batch),
            mean_error=float(np.mean(errors)) if errors else float("nan"),
            worst_error=float(np.max(errors)) if errors else float("nan"),
            iostats=merged,
        )
        points.append(point)
        error_series.add(rate, point.mean_error)
    return {
        "points": points,
        "series": error_series,
        "target_f": f,
        "theorem7_bound": 2.0 * f,
        "params": {
            "n": n,
            "k": k,
            "f": f,
            "corrupt_fraction": corrupt_fraction,
            "dataset": dataset,
            "trials": trials,
            "blocking_factor": blocking_factor,
        },
        "pool_stats": pool_stats,
    }


def format_chaos_report(result: dict) -> str:
    """Render a :func:`chaos_sweep` result as an aligned text report."""
    params = result["params"]
    headers = [
        "fault_rate",
        "mean_err",
        "worst_err",
        "target_f",
        "2f_bound",
        "converged",
        "aborted",
        "page_reads",
        "retries",
        "failed",
        "skipped",
    ]
    rows = []
    for point in result["points"]:
        io = point.iostats
        rows.append(
            [
                point.fault_rate,
                point.mean_error,
                point.worst_error,
                result["target_f"],
                result["theorem7_bound"],
                f"{point.converged}/{point.trials}",
                f"{point.aborted}/{point.trials}",
                io.page_reads,
                io.retries,
                io.failed_reads,
                io.pages_skipped,
            ]
        )
    title = (
        "Chaos sweep: CVB f' max-error vs transient fault rate "
        f"(dataset={params['dataset']}, n={params['n']:,}, k={params['k']}, "
        f"f={params['f']}, corrupt_fraction={params['corrupt_fraction']}, "
        f"trials={params['trials']})"
    )
    return f"{title}\n{format_table(headers, rows)}"
