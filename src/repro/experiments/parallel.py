"""Deterministic parallel trial engine.

Every figure and theorem validation in this reproduction averages over
independent Monte-Carlo trials.  :class:`TrialPool` runs those trials across
a process pool while guaranteeing **bit-identical results to the serial
loop** for any worker count:

- the caller derives one integer seed per trial *up front* (via
  :func:`repro._rng.spawn_seeds`, i.e. before any work is distributed), so
  trial ``i``'s randomness depends only on its own seed, never on which
  worker ran it or in what order;
- results are reassembled in submission order, so ``pool.map(fn, seeds)``
  equals ``[fn(s) for s in seeds]`` element-for-element.

``map`` transparently falls back to an in-process sequential loop when
``max_workers=1``, when there is at most one trial, or when the callable /
seeds cannot be pickled (closures, lambdas, bound locals) — the fallback
produces the same floats, just without the fan-out.

The pool also aggregates lightweight per-trial statistics
(:class:`TrialStats`, exposed as ``pool.last_stats``): wall-clock time,
summed in-trial compute time (whose ratio estimates the realised speedup),
and page-read counts when trial callables opt in by returning
:class:`TrialRecord`.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..exceptions import ParameterError, TaskQuarantinedError
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "TrialRecord",
    "TrialStats",
    "TrialPool",
    "run_trials",
    "resolve_workers",
]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request.

    ``None`` means "auto": the ``REPRO_WORKERS`` environment variable if
    set, else the machine's CPU count.  Anything below 1 is rejected.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ParameterError(f"workers must be an int or None, got {workers!r}")
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    return workers


def _validate_chunk_size(chunk_size: int | None) -> int | None:
    if chunk_size is None:
        return None
    if not isinstance(chunk_size, int) or isinstance(chunk_size, bool):
        raise ParameterError(
            f"chunk_size must be a positive int or None, got {chunk_size!r}"
        )
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


@dataclass(frozen=True)
class TrialRecord:
    """Opt-in wrapper for one trial's result plus its I/O accounting.

    Trial callables that want their page reads aggregated into
    :class:`TrialStats` return ``TrialRecord(value, page_reads=...)``;
    :meth:`TrialPool.map` unwraps the ``value`` so callers still receive a
    plain list of results.
    """

    value: Any
    page_reads: int = 0


@dataclass(frozen=True)
class TrialStats:
    """What one :meth:`TrialPool.map` call spent.

    ``trial_time_total_s`` sums the per-trial compute times measured inside
    the workers; its ratio to ``elapsed_s`` estimates the realised speedup
    (for the serial mode it is ~1 minus orchestration overhead).
    """

    trials: int
    workers: int
    chunk_size: int
    num_chunks: int
    mode: str  # "serial" or "process"
    elapsed_s: float
    trial_time_total_s: float
    trial_time_max_s: float
    page_reads: int
    chunks_resumed: int = 0

    @property
    def trial_time_mean_s(self) -> float:
        """Mean in-trial compute time."""
        return self.trial_time_total_s / self.trials if self.trials else 0.0

    @property
    def speedup(self) -> float:
        """Realised speedup vs running the same trials back-to-back."""
        return self.trial_time_total_s / self.elapsed_s if self.elapsed_s else 1.0

    def to_dict(self) -> dict:
        """Plain-dict (JSON-able) form of the stats.

        The integer fields (``trials`` / ``workers`` / ``chunk_size`` /
        ``num_chunks`` / ``page_reads``) and ``mode`` are deterministic for
        a fixed seed and worker count; the ``*_s`` timing fields are not —
        consumers building deterministic artifacts (the bench harness's
        logical sections) must select the former.
        """
        return {
            "trials": self.trials,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "num_chunks": self.num_chunks,
            "mode": self.mode,
            "elapsed_s": self.elapsed_s,
            "trial_time_total_s": self.trial_time_total_s,
            "trial_time_max_s": self.trial_time_max_s,
            "page_reads": self.page_reads,
            "chunks_resumed": self.chunks_resumed,
        }

    def summary(self) -> str:
        """One-line human-readable summary of the map's cost."""
        return (
            f"{self.trials} trials, {self.workers} worker(s) [{self.mode}], "
            f"chunk={self.chunk_size}: wall {self.elapsed_s:.3f}s, "
            f"compute {self.trial_time_total_s:.3f}s "
            f"(speedup {self.speedup:.2f}x), page_reads={self.page_reads}"
        )


def _run_chunk(
    fn: Callable[[Any], Any],
    seeds: Sequence[Any],
    collect_metrics: bool = False,
) -> tuple[list[tuple], dict | None]:
    """Worker-side kernel: run *fn* over a chunk of seeds, timing each.

    With *collect_metrics*, the chunk runs under a fresh worker-local
    metrics registry whose snapshot is returned alongside the results, so
    the parent can merge worker-side emissions (page reads, CVB rounds,
    fault events) into its own registry — giving identical aggregate
    metrics for any worker count.
    """
    out = []

    def _loop() -> None:
        for seed in seeds:
            # Wall-clock observability only: durations feed TrialStats
            # timing fields, never trial results or logical metrics.
            start = time.perf_counter()  # repro: noqa[DET002]
            value = fn(seed)
            elapsed = time.perf_counter() - start  # repro: noqa[DET002]
            out.append((value, elapsed))

    if collect_metrics:
        with _metrics.collecting() as registry:
            _loop()
        return out, registry.snapshot()
    _loop()
    return out, None


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class TrialPool:
    """A deterministic trial mapper over an optional process pool.

    Parameters
    ----------
    max_workers:
        Default worker count for :meth:`map`; ``None`` resolves through
        :func:`resolve_workers` (``REPRO_WORKERS`` env var, else CPU count).
    chunk_size:
        Default trials per worker task; ``None`` picks
        ``ceil(trials / (4 * workers))`` so stragglers rebalance.
    checkpoint:
        Optional :class:`repro.durability.RunCheckpoint`.  Every map is
        then journaled chunk-by-chunk (even in serial mode, so a kill at
        any point loses at most one chunk), and chunks already journaled
        by a previous run are spliced back instead of re-executed —
        bit-identical to an uninterrupted run, because chunk results are
        pure functions of ``(fn, seeds)``.
    heartbeat_s:
        Optional worker-liveness timeout for parallel maps: when no chunk
        completes for this many seconds the pool is presumed wedged, its
        workers are killed, and the incomplete chunks are re-dispatched
        deterministically (same ``(fn, seeds)`` => same results).  Pick a
        value comfortably above the slowest chunk's runtime.
    max_redispatch:
        How many times a lost chunk may be re-dispatched (after worker
        crashes or heartbeat timeouts) before it is quarantined as a
        poison task via
        :class:`~repro.exceptions.TaskQuarantinedError`.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first parallel ``map`` and reused across calls
    (figure sweeps issue many small maps); use the pool as a context manager
    or call :meth:`close` to release the workers.
    """

    def __init__(
        self,
        max_workers: int | None = 1,
        chunk_size: int | None = None,
        checkpoint=None,
        heartbeat_s: float | None = None,
        max_redispatch: int = 2,
    ):
        self.max_workers = resolve_workers(max_workers)
        self.chunk_size = _validate_chunk_size(chunk_size)
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ParameterError(
                f"heartbeat_s must be positive or None, got {heartbeat_s}"
            )
        if max_redispatch < 0:
            raise ParameterError(
                f"max_redispatch must be non-negative, got {max_redispatch}"
            )
        self.checkpoint = checkpoint
        self.heartbeat_s = heartbeat_s
        self.max_redispatch = max_redispatch
        self.last_stats: TrialStats | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._executor_workers: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = None
            _metrics.inc(
                "repro_pool_executor_events_total", event="stopped"
            )

    def _terminate(self) -> None:
        """Tear the pool down hard: kill workers, drop the executor.

        Used on the failure path (worker crash, ``KeyboardInterrupt``): a
        graceful ``shutdown(wait=True)`` would block behind whatever the
        surviving workers are still chewing on, turning one poisoned trial
        into a hang.  Terminating loses the warm pool, which is the right
        trade when the map is being abandoned anyway; the next parallel
        ``map`` starts a fresh executor.
        """
        if self._executor is None:
            return
        executor, self._executor = self._executor, None
        self._executor_workers = None
        _metrics.inc("repro_pool_executor_events_total", event="terminated")
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)

    def __enter__(self) -> "TrialPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_executor(self, workers: int) -> ProcessPoolExecutor:
        if self._executor is None or self._executor_workers != workers:
            self.close()
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
            _metrics.inc(
                "repro_pool_executor_events_total", event="started"
            )
        return self._executor

    # ------------------------------------------------------------------
    # Resilient / checkpointed mapping
    # ------------------------------------------------------------------

    def _map_chunked(
        self,
        fn: Callable[[Any], Any],
        seeds: list,
        chunk: int | None,
        workers: int,
        use_processes: bool,
    ) -> tuple[list, str, int, int, int]:
        """Chunk-at-a-time map with checkpointing and lost-worker recovery.

        Used whenever a checkpoint or heartbeat is configured.  Chunks
        journaled by a previous run splice straight back; the rest run
        (in parallel when *use_processes*) and are journaled as they
        complete.  Because every chunk's result is a pure function of
        ``(fn, seeds)``, the reassembled output is bit-identical to the
        plain path for any interruption/resume pattern.

        Returns ``(timed, mode, chunk_size, num_chunks, chunks_resumed)``.
        """
        from ..durability import runjournal as _runjournal

        if chunk is None:
            divisor = 4 * workers if use_processes else 4
            chunk = max(1, math.ceil(len(seeds) / divisor)) if seeds else 1
        plan = None
        if self.checkpoint is not None:
            num_chunks = math.ceil(len(seeds) / chunk) if seeds else 0
            plan = self.checkpoint.begin_map(
                _runjournal.seeds_key(seeds), chunk, num_chunks
            )
            chunk = plan.chunk_size
        chunks = [seeds[i : i + chunk] for i in range(0, len(seeds), chunk)]
        timed_by_chunk: dict[int, list] = {}
        if plan is not None:
            for index in sorted(plan.completed):
                if index < len(chunks):
                    timed_by_chunk[index] = plan.completed[index]
        resumed = len(timed_by_chunk)
        pending = {
            index: chunks[index]
            for index in range(len(chunks))
            if index not in timed_by_chunk
        }
        if use_processes:
            self._run_pending_parallel(fn, chunks, pending, timed_by_chunk, plan, workers)
            mode = "process"
        else:
            for index in sorted(pending):
                chunk_timed, _ = _run_chunk(fn, pending[index])
                timed_by_chunk[index] = chunk_timed
                if plan is not None:
                    plan.record(index, chunk_timed)
            mode = "serial"
        timed = [
            item
            for index in range(len(chunks))
            for item in timed_by_chunk[index]
        ]
        return timed, mode, chunk, len(chunks), resumed

    def _run_pending_parallel(
        self,
        fn: Callable[[Any], Any],
        chunks: list,
        pending: dict[int, list],
        timed_by_chunk: dict[int, list],
        plan,
        workers: int,
    ) -> None:
        """Drive *pending* chunks to completion across worker losses.

        Each round submits every pending chunk, then waits with the
        configured heartbeat.  A broken pool or an expired heartbeat
        kills the workers and re-dispatches what is left — deterministic,
        since re-running a chunk reproduces its results exactly.  A chunk
        that outlives ``max_redispatch`` re-dispatches is quarantined.
        """
        dispatches = {index: 0 for index in pending}
        while pending:
            poison = [
                index
                for index in sorted(pending)
                if dispatches[index] >= 1 + self.max_redispatch
            ]
            if poison:
                index = poison[0]
                if plan is not None:
                    plan.quarantine(index, "workers lost repeatedly")
                _metrics.inc(
                    "repro_pool_tasks_quarantined_total", len(poison)
                )
                raise TaskQuarantinedError(
                    f"chunk {index} lost its workers {dispatches[index]} "
                    f"time(s); quarantined as a poison task after "
                    f"{self.max_redispatch} re-dispatch(es)",
                    chunk_index=index,
                    seeds=chunks[index],
                )
            collect = _metrics.enabled()
            executor = self._get_executor(workers)
            futures = {}
            for index in sorted(pending):
                dispatches[index] += 1
                futures[
                    executor.submit(_run_chunk, fn, pending[index], collect)
                ] = index
            not_done = set(futures)
            reason = None
            try:
                while not_done:
                    done, not_done = wait(
                        not_done,
                        timeout=self.heartbeat_s,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # Heartbeat expired with zero progress: presume
                        # the workers are wedged or gone.
                        reason = "timeout"
                        break
                    for future in done:
                        index = futures[future]
                        chunk_timed, chunk_metrics = future.result()
                        timed_by_chunk[index] = chunk_timed
                        del pending[index]
                        if plan is not None:
                            plan.record(index, chunk_timed)
                        if chunk_metrics is not None and _metrics.enabled():
                            _metrics.active_registry().merge_snapshot(
                                chunk_metrics
                            )
            except BrokenExecutor:
                # A worker died (SIGKILL, segfault): every in-flight
                # future fails with BrokenProcessPool.
                reason = "crash"
            except BaseException:
                # A trial raised, or the user hit Ctrl-C: surface it
                # (the legacy-path semantics), don't re-dispatch.
                for future in futures:
                    future.cancel()
                self._terminate()
                raise
            if not pending:
                return
            if reason is None:
                continue
            for future in futures:
                future.cancel()
            self._terminate()
            _metrics.inc(
                "repro_pool_chunks_redispatched_total",
                len(pending),
                reason=reason,
            )

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        seeds: Sequence[Any],
        *,
        chunk_size: int | None = None,
        max_workers: int | None = None,
    ) -> list:
        """``[fn(s) for s in seeds]``, possibly fanned out over processes.

        *seeds* are opaque picklable tokens (ints from
        :func:`~repro._rng.spawn_seeds`, or tuples of them); the pool never
        interprets them.  Output order always matches seed order, and the
        values are bit-identical to the serial loop for any worker count.
        """
        workers = (
            self.max_workers
            if max_workers is None
            else resolve_workers(max_workers)
        )
        chunk = (
            self.chunk_size
            if chunk_size is None
            else _validate_chunk_size(chunk_size)
        )
        seeds = list(seeds)
        # Wall-clock observability only: elapsed_s is reporting, not logic.
        start = time.perf_counter()  # repro: noqa[DET002]

        use_processes = (
            workers > 1
            and len(seeds) > 1
            and _is_picklable((fn, seeds))
        )
        resilient = self.checkpoint is not None or (
            use_processes and self.heartbeat_s is not None
        )
        map_span = _trace.span("pool.map", trials=len(seeds))
        resumed = 0
        with map_span:
            if resilient:
                timed, mode, chunk, num_chunks, resumed = self._map_chunked(
                    fn, seeds, chunk, workers, use_processes
                )
            elif use_processes:
                if chunk is None:
                    chunk = max(1, math.ceil(len(seeds) / (4 * workers)))
                chunks = [
                    seeds[i : i + chunk] for i in range(0, len(seeds), chunk)
                ]
                collect = _metrics.enabled()
                executor = self._get_executor(workers)
                futures = [
                    executor.submit(_run_chunk, fn, c, collect)
                    for c in chunks
                ]
                try:
                    timed = []
                    for future in futures:
                        chunk_timed, chunk_metrics = future.result()
                        timed.extend(chunk_timed)
                        if chunk_metrics is not None and _metrics.enabled():
                            _metrics.active_registry().merge_snapshot(
                                chunk_metrics
                            )
                except BaseException:
                    # A trial raised (the worker re-raises it here), a worker
                    # process died, or the user hit Ctrl-C.  Cancel what
                    # hasn't started, kill the workers, and surface the
                    # original exception instead of hanging on stragglers.
                    for future in futures:
                        future.cancel()
                    self._terminate()
                    raise
                mode = "process"
                num_chunks = len(chunks)
            else:
                timed, _ = _run_chunk(fn, seeds)
                mode = "serial"
                chunk = chunk or len(seeds) or 1
                num_chunks = 1
            map_span.set(mode=mode, chunks=num_chunks)

        elapsed = time.perf_counter() - start  # repro: noqa[DET002]
        durations = [d for _, d in timed]
        results = [v for v, _ in timed]
        # Integer page counts: exact under any summation order.
        page_reads = sum(  # repro: noqa[DET004]
            r.page_reads for r in results if isinstance(r, TrialRecord)
        )
        results = [
            r.value if isinstance(r, TrialRecord) else r for r in results
        ]
        self.last_stats = TrialStats(
            trials=len(seeds),
            workers=workers if mode == "process" else 1,
            chunk_size=chunk,
            num_chunks=num_chunks,
            mode=mode,
            elapsed_s=elapsed,
            trial_time_total_s=math.fsum(durations),
            trial_time_max_s=float(max(durations, default=0.0)),
            page_reads=page_reads,
            chunks_resumed=resumed,
        )
        _metrics.inc("repro_pool_maps_total", mode=mode)
        _metrics.inc("repro_pool_trials_total", len(seeds))
        _metrics.set_gauge("repro_pool_workers", self.last_stats.workers)
        if _metrics.enabled():
            for duration in durations:
                _metrics.observe("repro_pool_trial_seconds", duration)
        return results


def run_trials(
    fn: Callable[[Any], Any],
    seeds: Sequence[Any],
    *,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    pool: TrialPool | None = None,
) -> list:
    """One-shot :meth:`TrialPool.map`.

    Pass an existing *pool* to reuse its warm workers (and read
    ``pool.last_stats`` afterwards); otherwise a throwaway pool is created
    and torn down around the call.  ``max_workers=None`` defers to the
    pool's configured worker count — or to a plain serial loop when no pool
    is given.
    """
    if pool is not None:
        return pool.map(fn, seeds, chunk_size=chunk_size, max_workers=max_workers)
    with TrialPool(
        max_workers=1 if max_workers is None else max_workers,
        chunk_size=chunk_size,
    ) as local:
        return local.map(fn, seeds)
