"""Plain-text reporting for experiment series.

Benchmarks print the same rows/series the paper's figures plot; these
helpers render them as aligned ASCII tables so ``pytest benchmarks/ -s``
output is directly comparable with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["format_table", "Series", "format_series", "paper_note"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render *rows* under *headers* with aligned columns."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


@dataclass
class Series:
    """One named measurement series: parallel x/y sequences plus labels."""

    label: str
    x_name: str
    y_name: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def add(self, x, y) -> None:
        """Append one (x, y) measurement point."""
        self.x.append(x)
        self.y.append(y)

    def rows(self) -> list[tuple]:
        """The series as (x, y) rows."""
        return list(zip(self.x, self.y))


def format_series(title: str, series_list: Sequence[Series]) -> str:
    """Render one or more series sharing an x-axis as a single table."""
    if not series_list:
        return title
    first = series_list[0]
    headers = [first.x_name] + [
        s.label if len(series_list) > 1 else s.y_name for s in series_list
    ]
    rows = []
    for i, x in enumerate(first.x):
        row = [x]
        for s in series_list:
            row.append(s.y[i] if i < len(s.y) else "")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def paper_note(expected: str, caveat: str = "") -> str:
    """A standard 'paper expects' banner for benchmark output."""
    note = f"paper expectation: {expected}"
    if caveat:
        note += f"\nnote: {caveat}"
    return note
