"""Series builders for every figure in the paper's evaluation (Section 7).

Each ``figure*`` function regenerates the data series behind the
corresponding paper figure and returns :class:`~repro.experiments.reporting.Series`
objects plus enough metadata to print a comparison.  The benchmarks under
``benchmarks/`` are thin wrappers that call these, print the tables, and
assert the qualitative shape the paper reports.

Scaled-down defaults come from :mod:`repro.experiments.config`; pass
``scale="paper"`` (or set ``REPRO_SCALE=paper``) for full-scale runs.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from .._rng import RngLike, spawn_rngs, spawn_seeds
from ..distinct.estimators import GEEEstimator
from ..distinct.metrics import rel_error
from ..sampling.block_sampler import sample_blocks
from ..storage.record import RecordSpec
from ..workloads.datasets import make_dataset
from .config import ExperimentScale, get_scale
from .parallel import TrialPool, TrialRecord
from .runner import (
    build_heapfile,
    mean_error_at_rate,
    required_blocks_for_error,
)
from .reporting import Series

__all__ = [
    "figures_3_and_4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9_10",
    "figure11_12",
]


def figures_3_and_4(
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    f: float | None = None,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figures 3 & 4: sampling rate and disk blocks sampled vs table size.

    Zipf Z=2, random layout, max error <= *f*.  Paper expectation: the
    *rate* (Figure 3) falls roughly like ``log(n)/n`` as ``n`` grows, while
    the *number of blocks* (Figure 4) stays nearly constant (``log n``
    growth only).
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    if f is None:
        f = scale.f_target
    rate_series = Series("Z=2", "n", "sampling_rate")
    blocks_series = Series("Z=2", "n", "blocks_sampled")
    # Hold the value universe fixed across the sweep: the paper varies N
    # under one fixed Zipf distribution, so only the tuple count changes.
    universe = max(16, scale.n // 100)
    data_seed, sweep_seed = spawn_rngs(seed, 2)
    data_seed = int(data_seed.integers(0, 2**31))
    rngs = spawn_rngs(sweep_seed, len(scale.n_sweep))
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for n, rng in zip(scale.n_sweep, rngs):
            layout_rng, search_rng = spawn_rngs(rng, 2)
            # One shared data seed: the same Zipf frequency permutation at
            # every n, so only the tuple count varies along the sweep.
            dataset = make_dataset(
                "zipf2", n, rng=data_seed, num_distinct=universe
            )
            heapfile = build_heapfile(
                dataset.values, "random", scale.blocking_factor, rng=layout_rng
            )
            blocks = required_blocks_for_error(
                heapfile, dataset.values, scale.k, f,
                trials=max(scale.trials, 9), rng=search_rng, pool=pool,
            )
            rate_series.add(n, blocks * scale.blocking_factor / n)
            blocks_series.add(n, blocks)
    return {
        "rate": rate_series,
        "blocks": blocks_series,
        "f": f,
        "k": scale.k,
        "scale": scale.name,
    }


def figure5(
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    zs: tuple[float, ...] = (0, 2, 4),
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figure 5: max error vs sampling rate for Z in {0, 2, 4}.

    Random layout, fixed k.  Paper expectation: the three error curves fall
    with rate and converge at essentially the same point — the required
    sampling is independent of the data distribution (Corollary 1).
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    series_list = []
    rngs = spawn_rngs(seed, len(zs))
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for z, rng in zip(zs, rngs):
            data_rng, layout_rng, sample_rng = spawn_rngs(rng, 3)
            dataset = make_dataset(f"zipf{int(z)}", scale.n, rng=data_rng)
            heapfile = build_heapfile(
                dataset.values, "random", scale.blocking_factor, rng=layout_rng
            )
            series = Series(f"Z={z:g}", "sampling_rate", "max_error")
            trial_rngs = spawn_rngs(sample_rng, len(scale.rates))
            for rate, trial_rng in zip(scale.rates, trial_rngs):
                error = mean_error_at_rate(
                    heapfile,
                    dataset.values,
                    rate,
                    scale.k,
                    trials=scale.trials,
                    rng=trial_rng,
                    pool=pool,
                )
                series.add(rate, error)
            series_list.append(series)
    return {"series": series_list, "k": scale.k, "scale": scale.name}


def figure6(
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    f: float | None = None,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figure 6: sampling rate required vs number of bins (max error <= f).

    Zipf Z=2, random layout.  Paper expectation: the required rate grows
    linearly with the bucket count (Corollary 1: ``r`` is linear in ``k``).
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    if f is None:
        f = scale.f_bins
    data_rng, sweep_rng = spawn_rngs(seed, 2)
    dataset = make_dataset("zipf2", scale.n, rng=data_rng)
    series = Series("Z=2", "bins", "sampling_rate")
    layout_rng, rest_rng = spawn_rngs(sweep_rng, 2)
    heapfile = build_heapfile(
        dataset.values, "random", scale.blocking_factor, rng=layout_rng
    )
    rngs = spawn_rngs(rest_rng, len(scale.bins_sweep))
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for k, rng in zip(scale.bins_sweep, rngs):
            blocks = required_blocks_for_error(
                heapfile, dataset.values, k, f,
                trials=max(scale.trials, 9), rng=rng, pool=pool,
            )
            series.add(k, blocks * scale.blocking_factor / dataset.n)
    return {"series": series, "f": f, "scale": scale.name}


def figure7(
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    cluster_fraction: float = 0.2,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figure 7: max error vs sampling rate, random vs partially clustered.

    Zipf Z=2.  Paper expectation: the partially clustered layout needs a
    visibly higher sampling rate for the same error — intra-block
    correlation reduces the effective sample per block.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    data_rng, sweep_rng = spawn_rngs(seed, 2)
    dataset = make_dataset("zipf2", scale.n, rng=data_rng)
    series_list = []
    layout_rngs = spawn_rngs(sweep_rng, 2)
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for layout, layout_rng in zip(("random", "partial"), layout_rngs):
            build_rng, sample_rng = spawn_rngs(layout_rng, 2)
            heapfile = build_heapfile(
                dataset.values,
                layout,
                scale.blocking_factor,
                rng=build_rng,
                cluster_fraction=cluster_fraction,
            )
            series = Series(layout, "sampling_rate", "max_error")
            rate_rngs = spawn_rngs(sample_rng, len(scale.rates))
            for rate, rate_rng in zip(scale.rates, rate_rngs):
                error = mean_error_at_rate(
                    heapfile,
                    dataset.values,
                    rate,
                    scale.k,
                    trials=scale.trials,
                    rng=rate_rng,
                    pool=pool,
                )
                series.add(rate, error)
            series_list.append(series)
    return {"series": series_list, "k": scale.k, "scale": scale.name}


def figure8(
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    f: float | None = None,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figure 8: sampling required vs record size (max error <= f, Z=2).

    Larger records mean fewer tuples per page; sampling the tuple budget
    prescribed by Corollary 1 therefore costs proportionally more pages.
    Paper expectation ("as predicted"): the number of disk blocks that must
    be sampled grows linearly with the record size, while the fraction of
    *rows* sampled stays roughly flat.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    if f is None:
        f = scale.f_target
    data_rng, sweep_rng = spawn_rngs(seed, 2)
    dataset = make_dataset("zipf2", scale.n, rng=data_rng)
    blocks_series = Series("Z=2", "record_size", "blocks_sampled")
    rate_series = Series("Z=2", "record_size", "row_sampling_rate")
    rngs = spawn_rngs(sweep_rng, len(scale.record_sizes))
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for record_size, rng in zip(scale.record_sizes, rngs):
            layout_rng, search_rng = spawn_rngs(rng, 2)
            b = RecordSpec(record_size=record_size).blocking_factor
            heapfile = build_heapfile(
                dataset.values, "random", b, rng=layout_rng
            )
            blocks = required_blocks_for_error(
                heapfile, dataset.values, scale.k, f,
                trials=max(scale.trials, 9), rng=search_rng, pool=pool,
            )
            blocks_series.add(record_size, blocks)
            rate_series.add(record_size, blocks * b / dataset.n)
    return {
        "blocks": blocks_series,
        "rate": rate_series,
        "f": f,
        "k": scale.k,
        "scale": scale.name,
    }


def _dv_trial(task: tuple, seed: int) -> TrialRecord:
    """Picklable per-trial kernel of the DV sweep: one block sample's
    in-sample distinct count and GEE estimate."""
    heapfile, num_blocks, n = task
    before = heapfile.iostats.page_reads
    sample = sample_blocks(heapfile, num_blocks, rng=seed)
    samp = int(np.unique(sample).size)
    est = GEEEstimator().estimate_from_sample(sample, n)
    return TrialRecord(
        (samp, est), page_reads=heapfile.iostats.page_reads - before
    )


def _distinct_value_sweep(
    dataset_name: str,
    scale: ExperimentScale,
    seed: RngLike,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Shared kernel of Figures 9-12: DV estimates across sampling rates."""
    data_rng, layout_rng, sweep_rng = spawn_rngs(seed, 3)
    dataset = make_dataset(dataset_name, scale.n, rng=data_rng)
    heapfile = build_heapfile(
        dataset.values, "random", scale.blocking_factor, rng=layout_rng
    )
    real = dataset.num_distinct

    sample_series = Series("numDVSamp", "sampling_rate", "distinct")
    estimate_series = Series("numDVEst", "sampling_rate", "distinct")
    real_series = Series("numDVReal", "sampling_rate", "distinct")
    err_sample = Series("rel_error(samp)", "sampling_rate", "rel_error")
    err_estimate = Series("rel_error(est)", "sampling_rate", "rel_error")

    rate_rngs = spawn_rngs(sweep_rng, len(scale.rates))
    with TrialPool(
        max_workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
    ) as pool:
        for rate, rate_rng in zip(scale.rates, rate_rngs):
            seeds = spawn_seeds(rate_rng, scale.trials)
            num_blocks = max(1, round(rate * heapfile.num_pages))
            outcomes = pool.map(
                partial(_dv_trial, (heapfile, num_blocks, dataset.n)), seeds
            )
            samp_vals = [s for s, _ in outcomes]
            est_vals = [e for _, e in outcomes]
            samp = float(np.mean(samp_vals))
            est = float(np.mean(est_vals))
            sample_series.add(rate, samp)
            estimate_series.add(rate, est)
            real_series.add(rate, real)
            err_sample.add(rate, rel_error(samp, real, dataset.n))
            err_estimate.add(rate, rel_error(est, real, dataset.n))
    return {
        "real": real_series,
        "sample": sample_series,
        "estimate": estimate_series,
        "err_sample": err_sample,
        "err_estimate": err_estimate,
        "num_distinct": real,
        "n": dataset.n,
        "dataset": dataset_name,
        "scale": scale.name,
    }


def figure9_10(
    dataset_name: str,
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figures 9 (Zipf Z=2) and 10 (Unif/Dup): distinct values — real vs
    in-sample vs GEE-estimated — across sampling rates.

    Paper expectation: for Zipf the estimate tracks the true count closely
    even at small rates (few distinct values, easily seen); for Unif/Dup the
    estimate starts far off (every sampled value looks like a singleton) and
    converges to the truth as the rate grows, while the raw in-sample count
    approaches it from below.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    return _distinct_value_sweep(
        dataset_name,
        scale,
        seed,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint=checkpoint,
    )


def figure11_12(
    dataset_name: str,
    scale: ExperimentScale | str | None = None,
    seed: RngLike = 0,
    workers: int | None = 1,
    chunk_size: int | None = None,
    checkpoint=None,
) -> dict:
    """Figures 11 (Zipf Z=2) and 12 (Unif/Dup): the rel-error metric
    ``|d - e|/n`` of the GEE estimate vs sampling rate.

    Paper expectation: rel-error is small in both cases (tiny for Zipf,
    small and shrinking with rate for Unif/Dup) — the weaker metric is
    reliably estimable even where ratio error cannot be (Theorem 8).
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    return _distinct_value_sweep(
        dataset_name,
        scale,
        seed,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint=checkpoint,
    )
