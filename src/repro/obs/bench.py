"""Deterministic benchmark harness: the library's own cost story, measured.

The paper's central claim is a *cost* claim — the Theorem 4/5 sample sizes
and the CVB stopping rule buy bounded histogram error for a small,
predictable I/O and CPU budget.  This module closes the loop on that claim
for the reproduction itself: a registry of named **scenarios** covering
every hot path the cost story runs through (record sampling, block
sampling, the CVB build, histogram merging, distinct estimation,
selectivity lookup, :class:`~repro.experiments.parallel.TrialPool`
scaling at 1/2/4 workers, a full :mod:`repro.lint` static-analysis
sweep, and the :mod:`repro.durability` machinery — catalog
checkpoint/recovery and resumable map splicing), each measured two ways:

- **logical costs** — pages read (via
  :class:`~repro.storage.iostats.IOStats`), counters from the
  :class:`~repro.obs.metrics.MetricsRegistry`, and the scenario's own
  deterministic outputs.  These are RNG-inert: two runs with the same seed
  produce byte-identical logical sections, so a regression (an extra page
  read per build, a changed CVB round count) is detectable *exactly*, even
  on a noisy CI runner.
- **wall-clock** — median over ``repeats`` timed runs after ``warmup``
  untimed runs, reported but never part of the deterministic section.

:func:`run_bench` produces a schema-versioned report
(:data:`BENCH_SCHEMA_VERSION`) conventionally written as
``BENCH_<YYYYMMDD>_<shortsha>.json`` at the repo root — the perf
trajectory — and :func:`compare_reports` gates a report against a
checked-in baseline (``benchmarks/baseline.json``): logical costs must
match exactly, wall-clock is threshold-gated only when a tolerance is
given.  ``--profile DIR`` wraps each scenario in :mod:`cProfile` and dumps
a loadable ``.pstats`` plus a top-N hot-function text report per scenario.

Layering note: unlike the rest of :mod:`repro.obs`, this module imports
*downward* into sampling/core/engine/experiments — it is a harness that
drives the library, not infrastructure the library reports into.  It is
therefore **not** imported by ``repro.obs.__init__`` (that would cycle);
import it explicitly as ``from repro.obs import bench``.

Shell entry point::

    python -m repro bench                       # run, write BENCH_*.json
    python -m repro bench --list                # show the scenario registry
    python -m repro bench --compare benchmarks/baseline.json
    python -m repro bench --update-baseline
    python -m repro bench --profile prof/ --trace bench-trace.jsonl
"""

from __future__ import annotations

import cProfile
import datetime
import io
import json
import math
import os
import pstats
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..exceptions import ParameterError
from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchScale",
    "SCALES",
    "Scenario",
    "SCENARIOS",
    "scenario_names",
    "run_scenario",
    "run_bench",
    "logical_section",
    "compare_reports",
    "write_report",
    "default_report_name",
    "git_short_sha",
    "write_profile",
    "format_report",
]

#: Version stamp of the BENCH_*.json report layout.  Bump on any breaking
#: change to the report structure; :func:`compare_reports` refuses to
#: compare across versions.
BENCH_SCHEMA_VERSION = 1

#: Histogram metrics whose observations are wall-clock measurements; they
#: are excluded from the deterministic logical section.
_TIMING_METRICS = frozenset(
    {"repro_pool_trial_seconds", "repro_serve_request_seconds"}
)

#: Counter metrics whose values are serialization byte sizes (pickle
#: protocol, platform path lengths) and therefore vary across Python
#: versions; excluded from the logical section so the baseline gate stays
#: portable across the CI matrix.
_NONPORTABLE_METRICS = frozenset({"repro_checkpoint_bytes_total"})


# ----------------------------------------------------------------------
# Scales
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchScale:
    """Workload sizing for one bench run.

    ``smoke`` keeps every scenario under a couple of seconds so the full
    registry fits in a CI gate; ``default`` is a heavier local profile for
    investigating a regression the smoke gate caught.
    """

    name: str
    #: Table rows for the synthetic dataset behind every scenario.
    n: int
    #: Records per simulated disk page.
    blocking_factor: int
    #: Histogram bucket count.
    k: int
    #: Tuples drawn by the record-sampling scenario.
    record_sample: int
    #: Pages drawn by the block-sampling scenario.
    block_sample: int
    #: Range queries answered by the selectivity scenario.
    queries: int
    #: Monte-Carlo trials per TrialPool scenario.
    pool_trials: int
    #: Block-sampling rate used inside the TrialPool scenarios.
    pool_rate: float


#: The available workload sizes, keyed by name.
SCALES: dict[str, BenchScale] = {
    scale.name: scale
    for scale in (
        BenchScale(
            name="smoke",
            n=20_000,
            blocking_factor=50,
            k=20,
            record_sample=500,
            block_sample=80,
            queries=200,
            pool_trials=6,
            pool_rate=0.1,
        ),
        BenchScale(
            name="default",
            n=100_000,
            blocking_factor=50,
            k=50,
            record_sample=2_000,
            block_sample=400,
            queries=1_000,
            pool_trials=12,
            pool_rate=0.1,
        ),
    )
}


def _get_scale(scale: str | BenchScale | None) -> BenchScale:
    if isinstance(scale, BenchScale):
        return scale
    resolved = scale or os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if resolved not in SCALES:
        raise ParameterError(
            f"unknown bench scale {resolved!r}; choose one of {sorted(SCALES)}"
        )
    return SCALES[resolved]


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One named benchmark: a setup, a measured kernel, and its paper hook.

    ``setup(scale, seed)`` builds a context dict once per bench run (data
    materialisation is never timed); ``run(ctx)`` executes the measured
    kernel and returns a dict of deterministic outputs that become part of
    the logical section; ``teardown(ctx)``, when given, releases resources
    (worker pools) after the scenario completes.  A context may carry a
    ``"heapfile"`` entry, in which case the harness also records the
    :class:`~repro.storage.iostats.IOStats` delta of the logical run.
    """

    name: str
    #: Paper symbol / figure the scenario's cost maps to (see EXPERIMENTS.md).
    paper: str
    help: str
    setup: Callable[[BenchScale, int], dict]
    run: Callable[[dict], dict]
    teardown: Callable[[dict], None] | None = None


SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ParameterError(f"duplicate bench scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    """Registered scenario names, in registration (execution) order."""
    return list(SCENARIOS)


def _make_table(scale: BenchScale, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """The shared synthetic column: zipf2 values plus their sorted copy."""
    from ..workloads.datasets import make_dataset

    values = make_dataset("zipf2", scale.n, rng=seed).values
    return values, np.sort(values)


def _make_heapfile(scale: BenchScale, seed: int):
    """Materialise the shared column as a randomly laid-out heap file."""
    from ..storage.heapfile import HeapFile

    values, sorted_values = _make_table(scale, seed)
    heapfile = HeapFile.from_values(
        values,
        layout="random",
        rng=seed + 1,
        blocking_factor=scale.blocking_factor,
    )
    return values, sorted_values, heapfile


# --- record sampling ---------------------------------------------------


def _record_sampling_setup(scale: BenchScale, seed: int) -> dict:
    """Heap file plus the draw size for the record-sampling kernel."""
    _, _, heapfile = _make_heapfile(scale, seed)
    return {"heapfile": heapfile, "r": scale.record_sample, "seed": seed + 2}


def _record_sampling_run(ctx: dict) -> dict:
    """Draw ``r`` tuples through the page-per-tuple cost model."""
    from ..sampling.record_sampler import sample_records_from_file

    sample = sample_records_from_file(
        ctx["heapfile"], ctx["r"], rng=ctx["seed"]
    )
    return {
        "tuples": int(sample.size),
        "sample_sum": float(math.fsum(sample.tolist())),
    }


_register(
    Scenario(
        name="record_sampling",
        paper="Section 3 / Theorem 4: r tuples cost r page reads",
        help="sample_records_from_file at the Theorem 4 cost model",
        setup=_record_sampling_setup,
        run=_record_sampling_run,
    )
)


# --- block sampling ----------------------------------------------------


def _block_sampling_setup(scale: BenchScale, seed: int) -> dict:
    """Heap file plus the page-draw size for the block-sampling kernel."""
    _, _, heapfile = _make_heapfile(scale, seed)
    return {
        "heapfile": heapfile,
        "num_blocks": scale.block_sample,
        "seed": seed + 3,
    }


def _block_sampling_run(ctx: dict) -> dict:
    """Sample whole pages — the Section 4 alternative the paper argues for."""
    from ..sampling.block_sampler import sample_blocks

    sample = sample_blocks(ctx["heapfile"], ctx["num_blocks"], rng=ctx["seed"])
    return {
        "tuples": int(sample.size),
        "sample_sum": float(math.fsum(sample.tolist())),
    }


_register(
    Scenario(
        name="block_sampling",
        paper="Section 4 / Figure 4: blocks sampled are the I/O unit",
        help="sample_blocks page-level draws",
        setup=_block_sampling_setup,
        run=_block_sampling_run,
    )
)


# --- CVB build ---------------------------------------------------------


def _cvb_setup(scale: BenchScale, seed: int) -> dict:
    """Heap file plus target parameters for the adaptive CVB build."""
    _, _, heapfile = _make_heapfile(scale, seed)
    return {"heapfile": heapfile, "k": scale.k, "seed": seed + 4}


def _cvb_run(ctx: dict) -> dict:
    """One full cross-validation-based adaptive build (Theorem 7)."""
    from ..core.adaptive import cvb_build

    result = cvb_build(ctx["heapfile"], k=ctx["k"], f=0.25, rng=ctx["seed"])
    return {
        "pages_sampled": int(result.pages_sampled),
        "tuples_sampled": int(result.tuples_sampled),
        "iterations": len(result.iterations),
        "converged": bool(result.converged),
    }


_register(
    Scenario(
        name="cvb_build",
        paper="Section 6 / Theorem 7 and Figure 6: adaptive stopping cost",
        help="cvb_build adaptive sampling to a target error",
        setup=_cvb_setup,
        run=_cvb_run,
    )
)


# --- histogram merge ---------------------------------------------------


def _merge_setup(scale: BenchScale, seed: int) -> dict:
    """Two partition histograms over disjoint halves of the column."""
    from ..core.histogram import EquiHeightHistogram

    values, _ = _make_table(scale, seed)
    half = values.size // 2
    return {
        "left": EquiHeightHistogram.from_values(values[:half], scale.k),
        "right": EquiHeightHistogram.from_values(values[half:], scale.k),
        "k": scale.k,
    }


def _merge_run(ctx: dict) -> dict:
    """Merge the two partition histograms into one k-bucket summary."""
    from ..core.merge import merge_equi_height

    merged = merge_equi_height(ctx["left"], ctx["right"], ctx["k"])
    return {
        "k": int(merged.k),
        "total": int(merged.total),
        "separator_sum": float(math.fsum(merged.separators.tolist())),
    }


_register(
    Scenario(
        name="merge_equi_height",
        paper="DESIGN.md partitioned ANALYZE: union-apportion-rebucket merge",
        help="merge_equi_height partition-histogram merging",
        setup=_merge_setup,
        run=_merge_run,
    )
)


# --- distinct estimation ----------------------------------------------


def _distinct_setup(scale: BenchScale, seed: int) -> dict:
    """A with-replacement tuple sample for the GEE frequency profile."""
    from ..sampling.record_sampler import sample_with_replacement

    values, _ = _make_table(scale, seed)
    sample = sample_with_replacement(values, scale.record_sample, rng=seed + 5)
    return {"sample": sample, "n": scale.n}


def _distinct_run(ctx: dict) -> dict:
    """Profile the sample and run the paper's GEE distinct estimator."""
    from ..distinct.estimators import GEEEstimator
    from ..distinct.frequency import FrequencyProfile

    profile = FrequencyProfile.from_sample(ctx["sample"])
    estimate = GEEEstimator().estimate(profile, ctx["n"])
    return {
        "estimate": float(estimate),
        "distinct_in_sample": int(profile.distinct_in_sample),
    }


_register(
    Scenario(
        name="distinct_gee",
        paper="Section 6.3 / Theorem 8 and Figures 9-10: the GEE estimator",
        help="FrequencyProfile + GEE distinct-value estimation",
        setup=_distinct_setup,
        run=_distinct_run,
    )
)


# --- selectivity lookup ------------------------------------------------


def _selectivity_setup(scale: BenchScale, seed: int) -> dict:
    """A histogram-backed estimator plus a random range-query workload."""
    from ..core.histogram import EquiHeightHistogram
    from ..engine.selectivity import RangeSelectivityEstimator
    from ..workloads.queries import random_range_queries

    values, sorted_values = _make_table(scale, seed)
    histogram = EquiHeightHistogram.from_values(values, scale.k)
    return {
        "estimator": RangeSelectivityEstimator(histogram, scale.n),
        "queries": random_range_queries(
            sorted_values, scale.queries, rng=seed + 6
        ),
    }


def _selectivity_run(ctx: dict) -> dict:
    """Answer the whole workload — the optimizer's per-query hot path."""
    estimator = ctx["estimator"]
    estimates = [estimator.estimate(query) for query in ctx["queries"]]
    return {
        "queries": len(estimates),
        "estimate_sum": float(math.fsum(estimates)),
    }


_register(
    Scenario(
        name="selectivity_lookup",
        paper="Section 2 / Theorem 3: range estimates from the histogram",
        help="RangeSelectivityEstimator over a random range workload",
        setup=_selectivity_setup,
        run=_selectivity_run,
    )
)


# --- TrialPool scaling -------------------------------------------------


def _pool_setup(workers: int) -> Callable[[BenchScale, int], dict]:
    """Build a setup function binding the TrialPool worker count."""

    def _setup(scale: BenchScale, seed: int) -> dict:
        from ..experiments.parallel import TrialPool

        _, sorted_values, heapfile = _make_heapfile(scale, seed)
        return {
            "heapfile": heapfile,
            "sorted_values": sorted_values,
            "pool": TrialPool(max_workers=workers),
            "scale": scale,
            "seed": seed + 7,
        }

    return _setup


def _pool_run(ctx: dict) -> dict:
    """One ``mean_error_at_rate`` fan-out through the trial pool."""
    from ..experiments.runner import mean_error_at_rate

    scale: BenchScale = ctx["scale"]
    error = mean_error_at_rate(
        ctx["heapfile"],
        ctx["sorted_values"],
        scale.pool_rate,
        scale.k,
        trials=scale.pool_trials,
        rng=ctx["seed"],
        pool=ctx["pool"],
    )
    stats = ctx["pool"].last_stats.to_dict()
    return {
        "median_error": float(error),
        "trials": stats["trials"],
        "workers": stats["workers"],
        "mode": stats["mode"],
        "num_chunks": stats["num_chunks"],
        "page_reads": stats["page_reads"],
    }


def _pool_teardown(ctx: dict) -> None:
    """Release the scenario's worker processes."""
    ctx["pool"].close()


for _workers in (1, 2, 4):
    _register(
        Scenario(
            name=f"trialpool_w{_workers}",
            paper=(
                "Trial engine (PR 1): bit-identical Monte-Carlo fan-out at "
                f"{_workers} worker(s)"
            ),
            help=f"mean_error_at_rate through a TrialPool of {_workers}",
            setup=_pool_setup(_workers),
            run=_pool_run,
            teardown=_pool_teardown,
        )
    )


# --- static analysis ---------------------------------------------------


def _lint_setup(scale: BenchScale, seed: int) -> dict:
    """Resolve the repo root the lint scenario will sweep."""
    from .. import lint

    return {"root": lint.default_root()}


def _lint_run(ctx: dict) -> dict:
    """One full ``repro.lint`` sweep; cost = files/nodes visited.

    Scale-independent on purpose: the analysed corpus is this repo itself,
    so the logical section moves exactly when ``src/repro`` or the doc set
    changes — making analysis cost a tracked quantity like any other.
    Runs with ``flow=True`` so the whole-program pass (symbol table, call
    graph, SEED/CON rules) is inside the measured and gated work; the
    ``flow_*`` counters track the project model's size exactly.
    """
    from .. import lint

    report = lint.run_lint(root=ctx["root"], flow=True)
    return {
        "files": report.files,
        "nodes": report.nodes,
        "rules": len(report.rules),
        "findings": len(report.findings),
        "errors": len(report.errors),
        "flow_modules": report.flow["modules"],
        "flow_call_edges": report.flow["call_edges"],
    }


_register(
    Scenario(
        name="lint_full_repo",
        paper=(
            "Determinism contract (PR 5): the invariants behind "
            "Theorems 4-7 reproductions, checked statically"
        ),
        help="full repro.lint sweep over src/repro plus the Markdown docs",
        setup=_lint_setup,
        run=_lint_run,
    )
)


# --- vectorized kernels ------------------------------------------------


def _kernel_gather_setup(scale: BenchScale, seed: int) -> dict:
    """Heap file plus a with-replacement page-id batch for the gather."""
    rng = np.random.default_rng(seed + 8)
    _, _, heapfile = _make_heapfile(scale, seed)
    page_ids = rng.integers(0, heapfile.num_pages, size=4 * scale.block_sample)
    return {"heapfile": heapfile, "page_ids": page_ids}


def _kernel_gather_run(ctx: dict) -> dict:
    """One batched multi-page read — the block-sampling access path."""
    payload = ctx["heapfile"].read_pages(ctx["page_ids"])  # repro: noqa[FLT001]
    return {
        "tuples": int(payload.size),
        "sample_sum": float(math.fsum(payload.tolist())),
    }


_register(
    Scenario(
        name="kernel_page_gather",
        paper="ROADMAP item 2: batched page draws (gather_pages kernel)",
        help="HeapFile.read_pages over a with-replacement page batch",
        setup=_kernel_gather_setup,
        run=_kernel_gather_run,
    )
)


def _kernel_histogram_setup(scale: BenchScale, seed: int) -> dict:
    """The unsorted shared column plus the bucket count."""
    values, _ = _make_table(scale, seed)
    return {"values": values, "k": scale.k}


def _kernel_histogram_run(ctx: dict) -> dict:
    """Build an equi-height histogram from unsorted values.

    Under the vector kernels this is the adaptive sort-probe separator
    extraction plus run-boundary counting; under scalar it is the
    historical full-sort path.  Logical outputs are identical by contract.
    """
    from ..core.histogram import EquiHeightHistogram

    hist = EquiHeightHistogram.from_values(ctx["values"], ctx["k"])
    return {
        "k": int(hist.k),
        "total": int(hist.total),
        "separator_sum": float(math.fsum(hist.separators.tolist())),
        "eq_count_sum": int(hist.eq_counts.sum()),
    }


_register(
    Scenario(
        name="kernel_histogram_build",
        paper="ROADMAP item 2: adaptive sort-probe separator extraction",
        help="EquiHeightHistogram.from_values on the unsorted column",
        setup=_kernel_histogram_setup,
        run=_kernel_histogram_run,
    )
)


def _kernel_recount_setup(scale: BenchScale, seed: int) -> dict:
    """A sample-derived histogram plus the sorted full column to recount."""
    from ..core.histogram import EquiHeightHistogram
    from ..sampling.record_sampler import sample_with_replacement

    values, sorted_values = _make_table(scale, seed)
    sample = sample_with_replacement(values, scale.record_sample, rng=seed + 9)
    return {
        "histogram": EquiHeightHistogram.from_values(sample, scale.k),
        "values": sorted_values,
    }


def _kernel_recount_run(ctx: dict) -> dict:
    """Ground-truth recount under fixed sample separators (Figures 5/7)."""
    recounted = ctx["histogram"].recount(ctx["values"])
    return {
        "total": int(recounted.total),
        "count_checksum": int(
            np.multiply(
                recounted.counts, np.arange(1, recounted.k + 1)
            ).sum()
        ),
        "eq_count_sum": int(recounted.eq_counts.sum()),
    }


_register(
    Scenario(
        name="kernel_recount",
        paper="ROADMAP item 2: sort-free fixed-separator counting",
        help="EquiHeightHistogram.recount of the full column",
        setup=_kernel_recount_setup,
        run=_kernel_recount_run,
    )
)


def _kernel_merge_setup(scale: BenchScale, seed: int) -> dict:
    """Two sorted runs shaped like a CVB accumulated sample + increment."""
    values, sorted_values = _make_table(scale, seed)
    split = values.size * 3 // 4
    return {
        "accumulated": sorted_values[:split],
        "increment": np.sort(values[split:]),
    }


def _kernel_merge_run(ctx: dict) -> dict:
    """One CVB-style sorted merge of increment into accumulated sample."""
    from ..core import kernels

    merged = kernels.merge_sorted(ctx["accumulated"], ctx["increment"])
    return {
        "size": int(merged.size),
        "is_sorted": bool(np.all(merged[1:] >= merged[:-1])),
        "merged_sum": float(math.fsum(merged.tolist())),
    }


_register(
    Scenario(
        name="kernel_merge_sorted",
        paper="ROADMAP item 2 / Section 7.1 ext. 2: batched increment merge",
        help="kernels.merge_sorted of accumulated sample and increment",
        setup=_kernel_merge_setup,
        run=_kernel_merge_run,
    )
)


def _kernel_equivalence_setup(scale: BenchScale, seed: int) -> dict:
    """One laid-out column; each mode gets its own heap file over it."""
    from ..storage.layout import apply_layout

    values, _ = _make_table(scale, seed)
    laid_out = apply_layout(values, layout="random", rng=seed + 10)
    return {"laid_out": laid_out, "scale": scale, "seed": seed + 11}


def _kernel_equivalence_run(ctx: dict) -> dict:
    """One CVB build per kernel mode; the logical record proves they agree.

    ``identical`` entering the baseline means the scalar≡vector contract is
    re-checked by the bench gate on every run, not only by the test suite.
    """
    from ..core import kernels
    from ..core.adaptive import cvb_build
    from ..storage.heapfile import HeapFile

    scale: BenchScale = ctx["scale"]
    outcomes = {}
    for mode in kernels.KERNEL_MODES:
        with kernels.use_kernels(mode):
            heapfile = HeapFile(
                ctx["laid_out"], blocking_factor=scale.blocking_factor
            )
            result = cvb_build(
                heapfile, k=scale.k, f=0.25, rng=ctx["seed"]
            )
            outcomes[mode] = (result, heapfile.iostats.snapshot())
    scalar_result, scalar_io = outcomes["scalar"]
    vector_result, vector_io = outcomes["vector"]
    identical = bool(
        scalar_result.histogram == vector_result.histogram
        and np.array_equal(scalar_result.sample, vector_result.sample)
        and scalar_result.pages_sampled == vector_result.pages_sampled
        and scalar_io == vector_io
    )
    return {
        "identical": identical,
        "pages_sampled": int(vector_result.pages_sampled),
        "iterations": len(vector_result.iterations),
        "converged": bool(vector_result.converged),
    }


_register(
    Scenario(
        name="kernel_cvb_equivalence",
        paper="tests/kernels differential harness, gated in the baseline",
        help="cvb_build under both REPRO_KERNELS modes, diffed bit-for-bit",
        setup=_kernel_equivalence_setup,
        run=_kernel_equivalence_run,
    )
)


# --- durability --------------------------------------------------------


def _durability_catalog_setup(scale: BenchScale, seed: int) -> dict:
    """A handful of statistics bundles plus a scratch directory tree."""
    import dataclasses
    import tempfile

    from ..engine import StatisticsManager, Table

    values, _ = _make_table(scale, seed)
    table = Table("bench", {"value": values[:4000]})
    base = StatisticsManager().analyze(
        table,
        "value",
        k=10,
        f=0.25,
        method="record",
        record_sample_size=200,
        rng=seed + 12,
    )
    bundles = [
        dataclasses.replace(base, column_name=f"c{i}") for i in range(4)
    ]
    root = tempfile.mkdtemp(prefix="repro-bench-durability-")
    return {"bundles": bundles, "root": root, "runs": 0}


def _durability_catalog_run(ctx: dict) -> dict:
    """Put/checkpoint/put/reopen cycle — the durable-catalog hot path.

    Each run uses a fresh subdirectory so the journal and snapshot are
    built from scratch every time; the reopen at the end replays the
    post-checkpoint tail, proving recovery inside the measured kernel.
    """
    from ..durability import CatalogStore

    directory = Path(ctx["root"]) / f"run{ctx['runs']}"
    ctx["runs"] += 1
    store = CatalogStore(directory)
    for stats in ctx["bundles"]:
        store.put(stats)
    store.checkpoint()
    for stats in ctx["bundles"][:2]:
        store.put(stats)
    reopened = CatalogStore(directory)
    catalog = reopened.catalog
    version_sum = sum(  # repro: noqa[DET004]
        catalog.version(table, column) for table, column in catalog.keys()
    )
    recoveries = sum(  # repro: noqa[DET004]
        reopened.recoveries.values()
    )
    return {
        "entries": len(catalog),
        "replayed": reopened.replayed,
        "version_sum": version_sum,
        "recoveries": recoveries,
    }


def _durability_teardown(ctx: dict) -> None:
    """Remove the scenario's scratch directory tree."""
    import shutil

    shutil.rmtree(ctx["root"], ignore_errors=True)


_register(
    Scenario(
        name="durability_catalog",
        paper="Crash-safe catalog (PR 7): snapshot+journal persistence cost",
        help="CatalogStore put/checkpoint/reopen cycle with journal replay",
        setup=_durability_catalog_setup,
        run=_durability_catalog_run,
        teardown=_durability_teardown,
    )
)


def _durability_trial(seed: int) -> float:
    """Tiny deterministic trial kernel for the resume scenario."""
    draws = np.random.default_rng(seed).standard_normal(64)
    return float(math.fsum(draws.tolist()))


def _durability_resume_setup(scale: BenchScale, seed: int) -> dict:
    """Per-trial seeds plus a scratch directory for the run journals."""
    import tempfile

    from .._rng import spawn_seeds

    root = tempfile.mkdtemp(prefix="repro-bench-resume-")
    return {
        "root": root,
        "seeds": spawn_seeds(seed + 13, scale.pool_trials),
        "runs": 0,
    }


def _durability_resume_run(ctx: dict) -> dict:
    """A checkpointed map followed by a full resume of the same map.

    ``identical`` entering the baseline means the resume-equals-rerun
    contract is re-checked by the bench gate on every run; the resumed
    map splices every chunk from the journal without re-executing.
    """
    from ..durability import RunCheckpoint
    from ..experiments.parallel import TrialPool

    directory = Path(ctx["root"]) / f"run{ctx['runs']}"
    ctx["runs"] += 1
    with TrialPool(
        max_workers=1, chunk_size=2, checkpoint=RunCheckpoint(directory)
    ) as pool:
        first = pool.map(_durability_trial, ctx["seeds"])
    with TrialPool(
        max_workers=1,
        chunk_size=2,
        checkpoint=RunCheckpoint(directory, resume=True),
    ) as resumed_pool:
        second = resumed_pool.map(_durability_trial, ctx["seeds"])
    stats = resumed_pool.last_stats
    return {
        "trials": stats.trials,
        "chunks": stats.num_chunks,
        "resumed_chunks": stats.chunks_resumed,
        "identical": first == second,
    }


_register(
    Scenario(
        name="durability_resume_map",
        paper="Resumable sweeps (PR 7): journal splice vs re-execution",
        help="checkpointed TrialPool map, then a bit-identical full resume",
        setup=_durability_resume_setup,
        run=_durability_resume_run,
        teardown=_durability_teardown,
    )
)


# --- serve -------------------------------------------------------------


def _serve_queries(values: np.ndarray, count: int, seed: int) -> list:
    """Deterministic range-query schedule over the column's domain."""
    rng = np.random.default_rng(seed)
    lo_d, hi_d = float(values.min()), float(values.max())
    width = hi_d - lo_d
    queries = []
    for _ in range(count):
        a, b = sorted((float(rng.random()), float(rng.random())))
        queries.append((lo_d + a * width, lo_d + b * width))
    return queries


def _serve_cache_setup(scale: BenchScale, seed: int) -> dict:
    """A warmed statistics server: one column built, cache+index hot."""
    from ..engine import Table
    from ..serve import StatsServer

    values, _ = _make_table(scale, seed)
    server = StatsServer(
        {"bench": Table("bench", {"value": values})},
        seed=seed + 21,
        build_params={"k": scale.k},
    )
    response = server.handle(
        {"op": "analyze", "table": "bench", "column": "value"}
    )
    if not response["ok"]:  # pragma: no cover - setup invariant
        raise ParameterError(f"serve_cache warmup failed: {response}")
    return {
        "server": server,
        "queries": _serve_queries(values, scale.queries, seed + 22),
    }


def _serve_cache_run(ctx: dict) -> dict:
    """Pure cache-hit serving: every request answered from the hot bundle.

    This is the latency floor of the serving path (no build, no staleness
    miss): ``benchmarks/test_bench_serve_speedup.py`` asserts it beats a
    cold ANALYZE by >= 10x.
    """
    server = ctx["server"]
    hits_before = server.cache.hits
    rows = []
    errors = 0
    for lo, hi in ctx["queries"]:
        response = server.handle(
            {
                "op": "estimate_range", "table": "bench",
                "column": "value", "lo": lo, "hi": hi,
            }
        )
        if response["ok"]:
            rows.append(float(response["result"]["rows"]))
        else:
            errors += 1
    return {
        "requests": len(ctx["queries"]),
        "rows_fsum": math.fsum(rows),
        "cache_hits": server.cache.hits - hits_before,
        "errors": errors,
    }


_register(
    Scenario(
        name="serve_cache",
        paper="Serving layer (ROADMAP 1): statistics-cache hit path",
        help="estimate_range against a hot StatsServer cache + BucketIndex",
        setup=_serve_cache_setup,
        run=_serve_cache_run,
    )
)


def _serve_latency_setup(scale: BenchScale, seed: int) -> dict:
    """Inputs for a full closed-loop loadgen run (server built per run)."""
    values, _ = _make_table(scale, seed)
    return {
        "values": values,
        "k": scale.k,
        "seed": seed,
        "requests": scale.queries,
        # Past the RefreshPolicy threshold max(500, 0.2 n), so the churn
        # phase triggers exactly one auto-refresh of the column.
        "churn": scale.n // 4 + 500,
    }


def _serve_latency_run(ctx: dict) -> dict:
    """One deterministic loadgen run: warmup build, churn refresh, queries.

    The loadgen's logical summary is bit-identical across client counts;
    its request-latency p50/p99 land in the report's wall section via
    ``wall_extra``.
    """
    from ..engine import Table
    from ..serve import LoadGenerator, LoadProfile, StatsServer

    server = StatsServer(
        {"bench": Table("bench", {"value": ctx["values"]})},
        seed=ctx["seed"] + 31,
        build_params={"k": ctx["k"]},
    )
    profile = LoadProfile(
        requests=ctx["requests"],
        clients=2,
        seed=ctx["seed"] + 32,
        churn_rows=ctx["churn"],
        analyze_params=(("k", ctx["k"]),),
    )
    summary = LoadGenerator(server=server, profile=profile).run()
    logical = summary["logical"]
    ctx["wall_extra"] = {
        "p50_s": summary["wall"]["p50_s"],
        "p99_s": summary["wall"]["p99_s"],
    }
    return {
        "requests": logical["requests"],
        "answers": logical["checksums"]["answers"],
        "rows_fsum": logical["checksums"]["rows_fsum"],
        "refreshes": logical["builds"]["refreshes"],
        "errors": logical["errors"],
    }


_register(
    Scenario(
        name="serve_latency",
        paper="Serving layer (ROADMAP 1): closed-loop load, p50/p99 wall",
        help="deterministic loadgen run (warmup + churn refresh + queries)",
        setup=_serve_latency_setup,
        run=_serve_latency_run,
    )
)


def _serve_degraded_setup(scale: BenchScale, seed: int) -> dict:
    """A server whose only column aborts every rebuild (poisoned budget).

    Mirrors the resilience tests' sabotage: the remembered build params
    gain a 50% transient-fault policy with a 2-failed-reads budget, so
    every auto-refresh raises BuildAbortedError and the serving path falls
    back to the degraded last-known-good bundle.
    """
    from ..engine import Table
    from ..serve import AdmissionController, StatsServer
    from ..storage import FaultPolicy, ReadBudget, RetryPolicy

    values, _ = _make_table(scale, seed)
    server = StatsServer(
        {"bench": Table("bench", {"value": values})},
        seed=seed + 41,
        admission=AdmissionController(max_inflight=1, max_queue=0),
        build_params={"k": scale.k},
    )
    response = server.handle(
        {"op": "analyze", "table": "bench", "column": "value"}
    )
    if not response["ok"]:  # pragma: no cover - setup invariant
        raise ParameterError(f"serve_degraded warmup failed: {response}")
    stats = server.auto.manager.statistics("bench", "value")
    stats.build_params["fault_policy"] = FaultPolicy(
        transient_rate=0.5, seed=seed + 42
    )
    stats.build_params["retry"] = RetryPolicy(max_attempts=2, seed=seed + 43)
    stats.build_params["read_budget"] = ReadBudget(max_failed_reads=2)
    return {
        "server": server,
        "queries": _serve_queries(values, scale.queries // 4, seed + 44),
        "churn": scale.n // 4 + 500,
    }


def _serve_degraded_run(ctx: dict) -> dict:
    """Degraded-mode serving: aborted refreshes + an admission shed.

    Every estimate finds stale statistics, attempts the (sabotaged)
    rebuild, and serves the last-known-good bundle flagged degraded; the
    final ANALYZE arrives while the only build slot is held and is shed,
    still answering from the degraded bundle.
    """
    server = ctx["server"]
    degraded_before = server.degraded_served
    shed_before = server.admission.shed
    server.handle(
        {
            "op": "modify", "table": "bench", "column": "value",
            "rows": ctx["churn"],
        }
    )
    rows = []
    all_degraded = True
    for lo, hi in ctx["queries"]:
        response = server.handle(
            {
                "op": "estimate_range", "table": "bench",
                "column": "value", "lo": lo, "hi": hi,
            }
        )
        rows.append(float(response["result"]["rows"]))
        all_degraded = all_degraded and response["result"]["degraded"]
    server.admission.try_acquire()  # hold the only slot
    try:
        shed_response = server.handle(
            {"op": "analyze", "table": "bench", "column": "value"}
        )
    finally:
        server.admission.release()
    shed_result = shed_response["result"]
    return {
        "requests": len(ctx["queries"]) + 1,
        "rows_fsum": math.fsum(rows),
        "all_degraded": all_degraded,
        "degraded_served": server.degraded_served - degraded_before,
        "shed": server.admission.shed - shed_before,
        "shed_served_degraded": bool(
            shed_response["ok"]
            and shed_result["degraded"]
            and shed_result["admission"] == "shed"
        ),
    }


_register(
    Scenario(
        name="serve_degraded",
        paper="Serving layer (ROADMAP 1): degraded-mode + admission shed",
        help="aborted refreshes served from last-known-good; ANALYZE shed",
        setup=_serve_degraded_setup,
        run=_serve_degraded_run,
    )
)


def _telemetry_sketch_setup(scale: BenchScale, seed: int) -> dict:
    """A latency-like stream: the shared zipf2 column scaled into (0, 1]s."""
    values, _ = _make_table(scale, seed)
    return {"latencies": values.astype(float) / float(values.max())}


def _telemetry_sketch_run(ctx: dict) -> dict:
    """Sketch ingest + quantile queries, with a merge-order identity check.

    The stream is folded serially and through four shards merged in two
    different orders; all three exports must be byte-identical (the
    mergeability contract of docs/TELEMETRY.md, re-proved per bench run).
    Everything here is a pure function of the input stream, so the whole
    result is logical.
    """
    from ..obs.live import StreamingQuantileSketch

    latencies = ctx["latencies"]

    def _sketch() -> StreamingQuantileSketch:
        return StreamingQuantileSketch("serve_request_latency")

    serial = _sketch()
    for value in latencies.tolist():
        serial.observe(value)

    bounds = np.linspace(0, latencies.size, 5).astype(int)
    shards = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        shard = _sketch()
        for value in latencies[lo:hi].tolist():
            shard.observe(value)
        shards.append(shard)
    forward = _sketch()
    for shard in shards:
        forward.merge(shard)
    backward = _sketch()
    for shard in reversed(shards):
        backward.merge(shard)

    exports = {serial.to_json(), forward.to_json(), backward.to_json()}
    percentiles = serial.percentiles()
    return {
        "observations": serial.count,
        "occupied_buckets": len(serial),
        "merge_identical": len(exports) == 1,
        "p50": percentiles["p50"],
        "p99": percentiles["p99"],
        "cdf_half": serial.cdf(0.5),
    }


_register(
    Scenario(
        name="telemetry_sketch",
        paper="PR 9: equi-height histograms as streaming quantile sketches",
        help="sketch ingest + quantiles; merge-order bit-identity re-proved",
        setup=_telemetry_sketch_setup,
        run=_telemetry_sketch_run,
    )
)


def _telemetry_overhead_setup(scale: BenchScale, seed: int) -> dict:
    """Same inputs as ``serve_latency`` — the run builds servers itself."""
    return _serve_latency_setup(scale, seed)


def _telemetry_overhead_run(ctx: dict) -> dict:
    """The identical loadgen run against telemetry-off and -on servers.

    The two logical summaries must match byte-for-byte (telemetry is
    RNG-inert — the off-by-default contract, re-proved per bench run);
    the two request-latency p99s land in the wall section so the baseline
    gate can watch the instrumentation overhead without flaking on
    machine speed.
    """
    from ..engine import Table
    from ..serve import LoadGenerator, LoadProfile, StatsServer

    profile = LoadProfile(
        requests=ctx["requests"],
        clients=2,
        seed=ctx["seed"] + 32,
        churn_rows=ctx["churn"],
        analyze_params=(("k", ctx["k"]),),
    )
    summaries = {}
    for mode in ("off", "on"):
        server = StatsServer(
            {"bench": Table("bench", {"value": ctx["values"]})},
            seed=ctx["seed"] + 31,
            build_params={"k": ctx["k"]},
            telemetry=mode == "on",
        )
        summaries[mode] = LoadGenerator(server=server, profile=profile).run()
        if mode == "on":
            telemetry_clock = server.telemetry.clock
    logical = {
        mode: json.dumps(summary["logical"], sort_keys=True)
        for mode, summary in summaries.items()
    }
    ctx["wall_extra"] = {
        "baseline_p99_s": summaries["off"]["wall"]["p99_s"],
        "telemetry_p99_s": summaries["on"]["wall"]["p99_s"],
    }
    return {
        "requests": summaries["on"]["logical"]["requests"],
        "answers": summaries["on"]["logical"]["checksums"]["answers"],
        "rows_fsum": summaries["on"]["logical"]["checksums"]["rows_fsum"],
        "identical": logical["off"] == logical["on"],
        "telemetry_clock": telemetry_clock,
    }


_register(
    Scenario(
        name="telemetry_overhead",
        paper="PR 9: telemetry-on request path vs the uninstrumented one",
        help="loadgen vs telemetry on/off; identical logical summaries",
        setup=_telemetry_overhead_setup,
        run=_telemetry_overhead_run,
    )
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def _registry_logical(registry: _metrics.MetricsRegistry) -> dict:
    """Flatten a registry snapshot into a deterministic {series: value} map.

    Counter and gauge series map to their values; histogram series map to
    ``_count`` / ``_sum`` pairs (the exactly-rounded ``fsum``), except the
    wall-clock-valued series in :data:`_TIMING_METRICS`, which are dropped
    so the logical section stays RNG-inert and machine-independent.
    """
    snap = registry.snapshot()
    out: dict[str, float] = {}

    def _series(name: str, labels: dict) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}}"

    for name, labels, value in snap["counters"]:
        if name in _NONPORTABLE_METRICS:
            continue
        out[_series(name, labels)] = value
    for name, labels, value in snap["gauges"]:
        out[_series(name, labels)] = value
    for name, labels, values in snap["histograms"]:
        if name in _TIMING_METRICS:
            continue
        key = _series(name, labels)
        out[key + "_count"] = len(values)
        out[key + "_sum"] = math.fsum(values)
    return out


def write_profile(
    profiler: cProfile.Profile, directory: Path, name: str, top: int = 25
) -> Path:
    """Dump *profiler* as ``<name>.pstats`` plus a top-*top* text report.

    Returns the ``.pstats`` path; the companion ``<name>_top.txt`` lists the
    hottest functions by cumulative time, for reading without a pstats
    viewer.
    """
    from ..durability import atomic_write_text

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stats_path = directory / f"{name}.pstats"
    profiler.dump_stats(stats_path)
    buffer = io.StringIO()
    stats = pstats.Stats(str(stats_path), stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    atomic_write_text(directory / f"{name}_top.txt", buffer.getvalue())
    return stats_path


def run_scenario(
    scenario: Scenario,
    scale: BenchScale,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    profile_dir: str | Path | None = None,
) -> dict:
    """Measure one scenario; returns its report entry.

    Phases, in order (each wrapped in a ``bench.scenario`` trace span):

    1. ``setup`` — build the context (never timed, never collected);
    2. ``logical`` — one run under a fresh metrics registry with the
       heap file's ``IOStats`` delta captured: the deterministic section;
    3. ``measure`` — *warmup* untimed runs, then *repeats* timed runs
       summarised as median/min/max wall-clock;
    4. ``profile`` — with *profile_dir*, one extra run under
       :mod:`cProfile`, dumped via :func:`write_profile`.
    """
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ParameterError(f"warmup must be >= 0, got {warmup}")

    with _trace.span("bench.scenario", scenario=scenario.name, phase="setup"):
        ctx = scenario.setup(scale, seed)
    try:
        heapfile = ctx.get("heapfile")
        with _trace.span(
            "bench.scenario", scenario=scenario.name, phase="logical"
        ):
            with _metrics.collecting() as registry:
                if heapfile is not None:
                    with heapfile.iostats.delta() as io_delta:
                        result = scenario.run(ctx)
                else:
                    io_delta = {}
                    result = scenario.run(ctx)
        logical = {
            "result": result,
            "io": io_delta,
            "counters": _registry_logical(registry),
        }

        durations: list[float] = []
        with _trace.span(
            "bench.scenario",
            scenario=scenario.name,
            phase="measure",
            repeats=repeats,
            warmup=warmup,
        ):
            for _ in range(warmup):
                scenario.run(ctx)
            for _ in range(repeats):
                # Wall-clock observability: the measure phase feeds the
                # report's "wall" section, never the logical section.
                start = time.perf_counter()  # repro: noqa[DET002]
                scenario.run(ctx)
                elapsed = time.perf_counter() - start  # repro: noqa[DET002]
                durations.append(elapsed)

        entry = {
            "help": scenario.help,
            "paper": scenario.paper,
            "logical": logical,
            "wall": {
                "median_s": statistics.median(durations),
                "min_s": min(durations),
                "max_s": max(durations),
                "repeats": repeats,
                "warmup": warmup,
            },
        }
        # Scenarios may deposit extra wall-clock readings (e.g. the serve
        # scenarios' request-latency p50/p99) under "wall_extra"; they are
        # merged additively into the wall section, which compare_reports
        # only ever threshold-gates via median_s — never exactly.
        extra = ctx.get("wall_extra")
        if extra:
            for key, value in sorted(extra.items()):
                entry["wall"].setdefault(key, value)

        if profile_dir is not None:
            with _trace.span(
                "bench.scenario", scenario=scenario.name, phase="profile"
            ):
                profiler = cProfile.Profile()
                profiler.runcall(scenario.run, ctx)
                write_profile(profiler, Path(profile_dir), scenario.name)
        return entry
    finally:
        if scenario.teardown is not None:
            scenario.teardown(ctx)


def _open_bench_checkpoint(
    checkpoint_dir: str | Path | None,
    resume: bool,
    bench_scale: BenchScale,
    seed: int,
    repeats: int,
    warmup: int,
) -> tuple[Path | None, dict[str, dict]]:
    """Open (or resume) the bench run journal.

    Returns ``(journal_path, completed)``: the journal to append scenario
    entries to (``None`` when checkpointing is off) and the entries a
    previous run already completed.  The journal's first record pins the
    run parameters; resuming under different ones would splice foreign
    measurements, so a mismatch raises
    :class:`~repro.exceptions.CheckpointError`.
    """
    if checkpoint_dir is None:
        return None, {}
    from ..durability import journal as _journal
    from ..exceptions import CheckpointError

    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    journal_path = directory / "run.journal"
    header = {
        "op": "bench",
        "scale": bench_scale.name,
        "seed": seed,
        "repeats": repeats,
        "warmup": warmup,
    }
    completed: dict[str, dict] = {}
    if resume:
        records, clean_bytes, tail = _journal.read_records(journal_path)
        if tail is not None:
            # The kill landed mid-append; that scenario never completed.
            _journal.truncate_to(journal_path, clean_bytes)
        if records and records[0] != header:
            raise CheckpointError(
                f"bench checkpoint mismatch: journal was written by "
                f"{records[0]!r}, this run is {header!r} — resume with "
                "identical --scale/--seed/--repeats/--warmup"
            )
        for record in records[1:]:
            if record.get("op") == "scenario":
                completed[record["name"]] = record["entry"]
        if not records:
            _journal.append_record(journal_path, header, kind="run_journal")
    else:
        if journal_path.exists():
            _journal.truncate_to(journal_path, 0)
        _journal.append_record(journal_path, header, kind="run_journal")
    return journal_path, completed


def run_bench(
    scenarios: list[str] | None = None,
    scale: str | BenchScale | None = None,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    profile_dir: str | Path | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run *scenarios* (default: the whole registry) and build a report.

    The report is the BENCH_*.json document: ``schema_version``, the run
    parameters, one entry per scenario (see :func:`run_scenario`), and a
    ``meta`` block (timestamp, git sha, python version) that is excluded
    from every determinism comparison.

    With *checkpoint_dir*, every completed scenario entry is journaled to
    ``<dir>/run.journal``; with *resume* additionally set, journaled
    entries from a previous (killed) run are reused instead of
    re-measured.  Logical sections are deterministic either way; only the
    reused entries' wall-clock numbers come from the earlier run.
    """
    bench_scale = _get_scale(scale)
    names = scenario_names() if scenarios is None else list(scenarios)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ParameterError(
            f"unknown bench scenario(s) {unknown}; "
            f"choose from {scenario_names()}"
        )
    journal_path, completed = _open_bench_checkpoint(
        checkpoint_dir, resume, bench_scale, seed, repeats, warmup
    )
    report: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "scale": bench_scale.name,
        "seed": seed,
        "repeats": repeats,
        "warmup": warmup,
        "scenarios": {},
    }
    with _trace.span("bench.run", scale=bench_scale.name, scenarios=len(names)):
        for name in names:
            if name in completed:
                report["scenarios"][name] = completed[name]
                continue
            if progress is not None:
                progress(name)
            entry = run_scenario(
                SCENARIOS[name],
                bench_scale,
                seed=seed,
                repeats=repeats,
                warmup=warmup,
                profile_dir=profile_dir,
            )
            report["scenarios"][name] = entry
            if journal_path is not None:
                from ..durability import journal as _journal

                _journal.append_record(
                    journal_path,
                    {"op": "scenario", "name": name, "entry": entry},
                    kind="run_journal",
                )
    # Report provenance only: "meta" is excluded from logical comparison.
    now_utc = datetime.datetime.now(  # repro: noqa[DET002]
        datetime.timezone.utc
    )
    report["meta"] = {
        "generated_at": now_utc.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_sha": git_short_sha(),
        "python": ".".join(str(part) for part in sys.version_info[:3]),
    }
    return report


# ----------------------------------------------------------------------
# Report I/O, naming, comparison
# ----------------------------------------------------------------------


def git_short_sha(cwd: str | Path | None = None) -> str:
    """The repository's short HEAD sha, or ``"nogit"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "nogit"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "nogit"


def default_report_name(
    when: datetime.date | None = None, sha: str | None = None
) -> str:
    """The trajectory filename: ``BENCH_<YYYYMMDD>_<shortsha>.json``."""
    if when is None:
        # Filename provenance for trajectory reports, not experiment logic.
        when = datetime.date.today()  # repro: noqa[DET002]
    sha = sha if sha is not None else git_short_sha()
    return f"BENCH_{when.strftime('%Y%m%d')}_{sha}.json"


def write_report(report: dict, path: str | Path) -> Path:
    """Durably write *report* as stable (sorted-key, indented) JSON.

    Parent directories are created as needed (the baseline lives under
    ``benchmarks/``, which may not exist in a scratch checkout).  The
    write goes through :func:`repro.durability.atomic_write_json`, so a
    crash mid-write can never leave a truncated baseline behind.
    """
    from ..durability import atomic_write_json

    return atomic_write_json(Path(path), report)


def logical_section(report: dict) -> str:
    """Canonical JSON of the report's logical costs only.

    This is the byte-comparable determinism surface: two runs with the same
    seed and scale must produce identical strings (wall-clock and ``meta``
    are excluded by construction).
    """
    logical = {
        name: entry["logical"]
        for name, entry in sorted(report.get("scenarios", {}).items())
    }
    return json.dumps(logical, indent=2, sort_keys=True) + "\n"


def compare_reports(
    current: dict,
    baseline: dict,
    wall_tolerance: float | None = None,
) -> tuple[list[str], list[str]]:
    """Gate *current* against *baseline*; returns ``(failures, notes)``.

    Logical costs must match **exactly** (any drift is a failure — page
    reads, counters and deterministic outputs cannot change without a code
    change explaining it).  Wall-clock is inherently noisy, so it fails
    only when *wall_tolerance* is given and a scenario's median exceeds
    ``baseline_median * wall_tolerance``; otherwise wall deltas are
    reported as notes.  Scenarios present only on one side are a failure
    (missing from current) or a note (new in current).
    """
    failures: list[str] = []
    notes: list[str] = []
    if current.get("schema_version") != baseline.get("schema_version"):
        failures.append(
            "schema_version mismatch: current "
            f"{current.get('schema_version')!r} vs baseline "
            f"{baseline.get('schema_version')!r}"
        )
        return failures, notes
    for key in ("scale", "seed"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key} mismatch: current {current.get(key)!r} vs baseline "
                f"{baseline.get(key)!r} (logical costs are only comparable "
                f"at identical {key})"
            )
    if failures:
        return failures, notes

    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name in sorted(base_scenarios):
        if name not in cur_scenarios:
            failures.append(f"{name}: missing from the current report")
            continue
        base_logical = base_scenarios[name]["logical"]
        cur_logical = cur_scenarios[name]["logical"]
        if cur_logical != base_logical:
            for detail in _logical_diff(base_logical, cur_logical):
                failures.append(f"{name}: {detail}")
        base_wall = base_scenarios[name].get("wall", {}).get("median_s")
        cur_wall = cur_scenarios[name].get("wall", {}).get("median_s")
        if base_wall and cur_wall:
            ratio = cur_wall / base_wall
            line = (
                f"{name}: wall median {cur_wall * 1e3:.2f} ms vs baseline "
                f"{base_wall * 1e3:.2f} ms ({ratio:.2f}x)"
            )
            if wall_tolerance is not None and ratio > wall_tolerance:
                failures.append(
                    line + f" exceeds tolerance {wall_tolerance:.2f}x"
                )
            else:
                notes.append(line)
    for name in sorted(set(cur_scenarios) - set(base_scenarios)):
        notes.append(
            f"{name}: new scenario, not in baseline "
            "(run --update-baseline to record it)"
        )
    return failures, notes


def _flatten(prefix: str, value: Any, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    else:
        out[prefix] = value


def _logical_diff(base: dict, cur: dict) -> list[str]:
    """Human-readable per-key differences between two logical sections."""
    flat_base: dict[str, Any] = {}
    flat_cur: dict[str, Any] = {}
    _flatten("", base, flat_base)
    _flatten("", cur, flat_cur)
    details = []
    for key in sorted(set(flat_base) | set(flat_cur)):
        if key not in flat_cur:
            details.append(f"logical cost {key!r} disappeared")
        elif key not in flat_base:
            details.append(f"new logical cost {key!r} = {flat_cur[key]!r}")
        elif flat_base[key] != flat_cur[key]:
            details.append(
                f"logical cost {key!r} changed: "
                f"{flat_base[key]!r} -> {flat_cur[key]!r}"
            )
    return details or ["logical section differs"]


def format_report(report: dict) -> str:
    """Human-readable summary table of a bench report."""
    lines = [
        f"bench scale={report['scale']} seed={report['seed']} "
        f"repeats={report['repeats']} warmup={report['warmup']} "
        f"(schema v{report['schema_version']})",
        "",
        f"{'scenario':<22} {'median ms':>10} {'min ms':>10} "
        f"{'page reads':>11}  paper hook",
    ]
    for name, entry in report["scenarios"].items():
        wall = entry["wall"]
        page_reads = entry["logical"]["result"].get("page_reads") or entry[
            "logical"
        ]["io"].get("page_reads", 0)
        lines.append(
            f"{name:<22} {wall['median_s'] * 1e3:>10.2f} "
            f"{wall['min_s'] * 1e3:>10.2f} {page_reads:>11}  {entry['paper']}"
        )
    return "\n".join(lines)
