"""repro.obs — the observability layer: metrics, trace spans, profiling hooks.

A zero-dependency subsystem the rest of the library reports into:

- :mod:`repro.obs.metrics` — a process-local **metrics registry**
  (counters, gauges, equi-height histogram metrics with label support),
  mergeable across :class:`~repro.experiments.parallel.TrialPool` workers,
  with deterministic text/JSON exporters;
- :mod:`repro.obs.trace` — **trace spans** emitting a structured event log
  with wall-clock and monotonic timings plus per-span IOStats deltas;
- :mod:`repro.obs.catalog` — the **declared surface**: every metric name
  and span name the library may emit, which emissions are validated
  against and which ``docs/OBSERVABILITY.md`` documents exhaustively;
- :mod:`repro.obs.bench` — the **deterministic benchmark harness**
  (``python -m repro bench``): named scenarios measuring wall-clock plus
  RNG-inert logical costs, a baseline comparator, and cProfile hooks.
  Unlike its siblings it drives the library from above, so it is *not*
  imported here (that would cycle through storage); import it explicitly
  as ``from repro.obs import bench``;
- :mod:`repro.obs.live` — **live telemetry primitives** (streaming
  quantile sketch, windowed timeseries, SLO tracker) for long-running
  processes such as the statistics server.  Like ``bench`` it drives the
  library from above (it builds histograms and bucket indexes), so it is
  *not* imported here; import it explicitly as
  ``from repro.obs import live``.

Everything is **off by default and cheap when off**: with no active
registry or recorder, each hook is a single no-op call, and instrumentation
never touches randomness — builds are bit-identical with observability on
or off (a regression test enforces this).

Layering note: ``obs`` sits *below* every other subpackage (this package's
``__init__`` pulls in modules that import only :mod:`repro.exceptions`),
precisely so that storage, sampling, core, engine and experiments can all
report into it without cycles.  The two from-above modules (``bench``,
``live``) are the deliberate exceptions and stay out of this ``__init__``.

Quick tour::

    from repro.obs import metrics, trace

    with trace.tracing() as recorder, metrics.collecting() as registry:
        stats = manager.analyze(table, "amount", k=100, f=0.2, rng=0)

    print(metrics.render_text(registry))
    recorder.write("build-trace.jsonl")

Or from the shell: ``python -m repro metrics demo zipf2`` and the
``--trace FILE`` flag of the ``figure`` / ``chaos`` subcommands.
"""

from . import catalog, metrics, trace
from .catalog import METRICS, SPANS, MetricSpec
from .metrics import (
    MetricsRegistry,
    collecting,
    render_json,
    render_text,
)
from .trace import SpanRecord, TraceRecorder, span, tracing

__all__ = [
    "catalog",
    "metrics",
    "trace",
    "METRICS",
    "SPANS",
    "MetricSpec",
    "MetricsRegistry",
    "collecting",
    "render_json",
    "render_text",
    "SpanRecord",
    "TraceRecorder",
    "span",
    "tracing",
]
