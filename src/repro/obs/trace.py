"""Trace spans: a structured, deterministic event log of where a build
spends its pages and its time.

The tracing half of :mod:`repro.obs`.  Instrumented code opens spans::

    from repro.obs import trace

    with trace.span("cvb.iteration", iostats=heapfile.iostats, index=3) as sp:
        ...
        sp.set(observed_error=observed, passed=passed)

and a :class:`TraceRecorder`, when active, turns each span into a
:class:`SpanRecord` carrying:

- the span **name** (validated against :data:`repro.obs.catalog.SPANS`) and
  its attributes,
- sequential **span ids** plus the enclosing span's id, so the tree can be
  reconstructed,
- the **wall-clock** start time (``time.time``) and a **monotonic**
  duration (``time.perf_counter``),
- an optional **IOStats delta**: pass any object with a numeric
  ``snapshot() -> dict`` (duck-typed so this module stays dependency-free)
  and the record carries per-counter differences across the span.

When no recorder is active — the default — :func:`span` returns a shared
no-op context manager, so tracing costs one dict lookup per span on the
disabled path and can never perturb results: spans consume no randomness
and mutate nothing they observe.

Records are appended in span *completion* order, which is deterministic for
the single-threaded builds this library runs; with wall times redacted
(:meth:`TraceRecorder.events`) a trace of a seeded build is byte-stable and
golden-file comparable.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import ParameterError
from .catalog import SPANS

__all__ = [
    "SCHEMA_VERSION",
    "SpanRecord",
    "TraceRecorder",
    "span",
    "tracing",
    "start_tracing",
    "stop_tracing",
    "active_recorder",
]

#: Timing keys stripped by :meth:`TraceRecorder.events` for deterministic
#: comparison of traces.
TIMING_KEYS = ("t_wall", "duration_s")

#: Version stamp carried by every JSONL span record (JSON lines have no
#: header, so each record is self-describing).  Bump on any breaking change
#: to the record layout.
SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One completed span, as appended to the recorder's event log."""

    span_id: int
    parent_id: int | None
    name: str
    attrs: dict
    t_wall: float
    duration_s: float
    io_delta: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form of the record."""
        out = {
            "schema_version": SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": _jsonable(self.attrs),
            "t_wall": self.t_wall,
            "duration_s": self.duration_s,
        }
        if self.io_delta is not None:
            out["io_delta"] = self.io_delta
        return out


def _jsonable(attrs: dict) -> dict:
    """Coerce attribute values to JSON-safe scalars (repr as a fallback)."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, bool) or value is None:
            out[key] = value
        elif isinstance(value, (int, float, str)):
            out[key] = value
        elif hasattr(value, "item"):  # numpy scalars
            out[key] = value.item()
        else:
            out[key] = repr(value)
    return out


class TraceRecorder:
    """Collects :class:`SpanRecord` events for one traced run.

    Parameters
    ----------
    strict:
        When True (default), span names must be declared in
        :data:`repro.obs.catalog.SPANS`, keeping the documented span
        taxonomy exhaustive.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.records: list[SpanRecord] = []
        self._next_id = 0
        self._stack: list[int] = []

    def _open(self, name: str) -> int:
        if self.strict and name not in SPANS:
            raise ParameterError(
                f"span {name!r} is not declared in repro.obs.catalog.SPANS"
            )
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(span_id)
        return span_id

    def _close(self, record: SpanRecord) -> None:
        self._stack.pop()
        self.records.append(record)

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    def events(self, redact_timing: bool = True) -> list[dict]:
        """The event log as plain dicts, optionally without wall/duration
        fields — the deterministic view used by golden tests."""
        out = []
        for record in self.records:
            event = record.to_dict()
            if redact_timing:
                for key in TIMING_KEYS:
                    event.pop(key, None)
            out.append(event)
        return out

    def to_jsonl(self, redact_timing: bool = False) -> str:
        """The event log as one JSON object per line; every record carries
        ``schema_version`` (:data:`SCHEMA_VERSION`)."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n"
            for event in self.events(redact_timing=redact_timing)
        )

    def write(self, path: str, redact_timing: bool = False) -> None:
        """Durably write the event log to *path* as JSON lines."""
        # Imported lazily: repro.durability itself emits through repro.obs,
        # so a module-level import here would cycle.
        from ..durability import atomic_write_text

        atomic_write_text(path, self.to_jsonl(redact_timing=redact_timing))


class _Span:
    """A live span: context manager that reports to a recorder on exit."""

    __slots__ = (
        "_recorder", "_name", "_attrs", "_io", "_io_before",
        "_span_id", "_parent_id", "_t_wall", "_t0",
    )

    def __init__(self, recorder: TraceRecorder, name: str, io, attrs: dict):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._io = io
        self._io_before: dict | None = None
        self._span_id = -1
        self._parent_id: int | None = None
        self._t_wall = 0.0
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach or update attributes after the span has been opened."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._parent_id = self._recorder.current_span_id
        self._span_id = self._recorder._open(self._name)
        if self._io is not None:
            self._io_before = dict(self._io.snapshot())
        # Wall-clock observability: span timestamps/durations are trace
        # annotations, excluded from all logical comparisons.
        self._t_wall = time.time()  # repro: noqa[DET002]
        self._t0 = time.perf_counter()  # repro: noqa[DET002]
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0  # repro: noqa[DET002]
        io_delta = None
        if self._io is not None and self._io_before is not None:
            after = self._io.snapshot()
            io_delta = {
                key: after[key] - self._io_before.get(key, 0)
                for key in after
                if isinstance(after[key], (int, float))
            }
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._recorder._close(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                attrs=self._attrs,
                t_wall=self._t_wall,
                duration_s=duration,
                io_delta=io_delta,
            )
        )
        return False


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        """Discard attributes (tracing is off)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_RECORDER: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The currently recording :class:`TraceRecorder`, or ``None``."""
    return _RECORDER


def start_tracing(recorder: TraceRecorder | None = None) -> TraceRecorder:
    """Start routing spans to *recorder* (a fresh one by default)."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else TraceRecorder()
    return _RECORDER


def stop_tracing() -> None:
    """Stop recording: :func:`span` becomes a no-op again."""
    global _RECORDER
    _RECORDER = None


@contextmanager
def tracing(
    recorder: TraceRecorder | None = None,
) -> Iterator[TraceRecorder]:
    """Record spans inside a ``with`` block, restoring the previous
    recorder (if any) on exit."""
    global _RECORDER
    previous = _RECORDER
    recorder = recorder if recorder is not None else TraceRecorder()
    _RECORDER = recorder
    try:
        yield recorder
    finally:
        _RECORDER = previous


def span(name: str, iostats=None, **attrs):
    """Open a trace span named *name* (a context manager).

    *iostats* may be any object with a numeric ``snapshot() -> dict`` (in
    practice a :class:`~repro.storage.iostats.IOStats`); the completed
    record then carries the per-counter delta across the span.  Extra
    keyword arguments become span attributes; more can be attached later
    via ``.set(...)`` on the yielded span.  While no recorder is active the
    returned object is a shared no-op.
    """
    recorder = _RECORDER
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, iostats, dict(attrs))
