"""The declared observability surface: every metric and span the library emits.

The registry (:mod:`repro.obs.metrics`) and the trace recorder
(:mod:`repro.obs.trace`) validate emissions against this catalog by default,
so an instrumentation site cannot invent a name that the documentation does
not know about — ``docs/OBSERVABILITY.md`` is kept in lockstep by a test
that diffs the catalog against the doc (``tests/obs/test_docs.py``).

Naming follows the Prometheus conventions: ``repro_`` prefix, ``_total``
suffix for counters, ``_seconds`` for time units.  Label sets are closed:
an emission must supply exactly the labels declared here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MetricSpec",
    "METRICS",
    "SPANS",
    "SKETCHES",
    "SERIES",
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: its name, type, label set, and meaning."""

    name: str
    type: str
    labels: tuple[str, ...]
    help: str


_SPECS = [
    # ------------------------------------------------------------------
    # storage — forwarded 1:1 from IOStats, so exported totals always
    # reconcile exactly with per-file accounting
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_read_attempts_total", COUNTER, (),
        "Physical page-read attempts (successful + failed).",
    ),
    MetricSpec(
        "repro_page_reads_total", COUNTER, (),
        "Successfully delivered page reads (IOStats.page_reads).",
    ),
    MetricSpec(
        "repro_failed_reads_total", COUNTER, (),
        "Read attempts that raised (transient fault or checksum mismatch).",
    ),
    MetricSpec(
        "repro_retries_total", COUNTER, (),
        "Re-attempts issued by a retry policy after a transient fault.",
    ),
    MetricSpec(
        "repro_pages_skipped_total", COUNTER, (),
        "Pages permanently given up on and replaced by fresh draws.",
    ),
    MetricSpec(
        "repro_simulated_latency_seconds_total", COUNTER, (),
        "Simulated seconds spent on read latency and retry backoff.",
    ),
    MetricSpec(
        "repro_fault_events_total", COUNTER, ("kind",),
        "Faults injected by FaultyHeapFile or WriteFaultInjector, by kind "
        "(kind=transient|corrupt|write).",
    ),
    MetricSpec(
        "repro_resilient_reads_total", COUNTER, ("outcome",),
        "read_page_resilient outcomes (outcome=delivered|skipped).",
    ),
    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_block_batches_total", COUNTER, ("mode",),
        "Batches handed out by BlockSampleStream "
        "(mode=take|one_per_block).",
    ),
    MetricSpec(
        "repro_block_pages_delivered_total", COUNTER, (),
        "Readable pages delivered by BlockSampleStream batches.",
    ),
    MetricSpec(
        "repro_record_samples_total", COUNTER, ("mode",),
        "Records delivered by sample_records_from_file "
        "(mode=with_replacement|without_replacement).",
    ),
    # ------------------------------------------------------------------
    # core — the CVB build and histogram merging
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_cvb_builds_total", COUNTER, ("outcome",),
        "Completed CVB runs (outcome=converged|budget_stopped).",
    ),
    MetricSpec(
        "repro_cvb_iterations_total", COUNTER, (),
        "Cross-validation rounds executed (excludes round 0).",
    ),
    MetricSpec(
        "repro_cvb_deviation_ratio", HISTOGRAM, (),
        "Per-round observed error over its stopping threshold "
        "(the f*s/k target of Theorem 7); < 1 means the round passed.",
    ),
    MetricSpec(
        "repro_cvb_pages_sampled", HISTOGRAM, (),
        "Pages consumed per completed CVB build.",
    ),
    MetricSpec(
        "repro_cvb_tuples_sampled", HISTOGRAM, (),
        "Tuples accumulated per completed CVB build.",
    ),
    MetricSpec(
        "repro_histogram_merges_total", COUNTER, (),
        "merge_equi_height invocations (partition-histogram merging).",
    ),
    # ------------------------------------------------------------------
    # engine — ANALYZE and auto-refresh
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_analyze_builds_total", COUNTER, ("method",),
        "StatisticsManager.analyze builds (method=cvb|record|fullscan).",
    ),
    MetricSpec(
        "repro_autostats_requests_total", COUNTER, ("result",),
        "AutoStatistics.ensure_fresh outcomes "
        "(result=fresh|refreshed|degraded).",
    ),
    # ------------------------------------------------------------------
    # experiments — the parallel trial engine
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_pool_maps_total", COUNTER, ("mode",),
        "TrialPool.map calls by execution mode (mode=serial|process).",
    ),
    MetricSpec(
        "repro_pool_trials_total", COUNTER, (),
        "Trials executed across all TrialPool.map calls.",
    ),
    MetricSpec(
        "repro_pool_trial_seconds", HISTOGRAM, (),
        "Per-trial compute time measured inside the workers.",
    ),
    MetricSpec(
        "repro_pool_workers", GAUGE, (),
        "Worker count of the most recent TrialPool.map call.",
    ),
    MetricSpec(
        "repro_pool_executor_events_total", COUNTER, ("event",),
        "Process-pool lifecycle events "
        "(event=started|stopped|terminated).",
    ),
    MetricSpec(
        "repro_pool_chunks_redispatched_total", COUNTER, ("reason",),
        "Chunks deterministically re-dispatched after worker loss "
        "(reason=crash|timeout).",
    ),
    MetricSpec(
        "repro_pool_chunks_resumed_total", COUNTER, (),
        "Chunks spliced back from a run-journal checkpoint instead of "
        "re-executing.",
    ),
    MetricSpec(
        "repro_pool_tasks_quarantined_total", COUNTER, (),
        "Chunks quarantined as poison tasks after exhausting their "
        "re-dispatch budget.",
    ),
    # ------------------------------------------------------------------
    # durability — crash-safe persistence and recovery
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_checkpoint_writes_total", COUNTER, ("kind",),
        "Durable write operations, by artifact kind "
        "(kind=snapshot|journal|run_journal|artifact).",
    ),
    MetricSpec(
        "repro_checkpoint_bytes_total", COUNTER, ("kind",),
        "Bytes persisted by durable write operations, by artifact kind "
        "(kind=snapshot|journal|run_journal|artifact).",
    ),
    MetricSpec(
        "repro_catalog_recoveries_total", COUNTER, ("kind",),
        "CatalogStore crash artifacts recovered on open (kind="
        "torn_snapshot|corrupt_snapshot|torn_journal|corrupt_journal).",
    ),
    MetricSpec(
        "repro_journal_replays_total", COUNTER, (),
        "Catalog journal records replayed into memory on store open.",
    ),
    # ------------------------------------------------------------------
    # serve — the statistics server, cache, and admission control
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_serve_requests_total", COUNTER, ("endpoint",),
        "Requests handled by the statistics server, by endpoint "
        "(endpoint=analyze|estimate_range|estimate_equality|"
        "estimate_quantile|estimate_distinct|modify|status|ping|"
        "stats|health|watch).",
    ),
    MetricSpec(
        "repro_serve_cache_events_total", COUNTER, ("event",),
        "Statistics-cache lifecycle events "
        "(event=hit|miss|refresh|evict).",
    ),
    MetricSpec(
        "repro_serve_admission_total", COUNTER, ("decision",),
        "Admission-controller decisions for ANALYZE builds "
        "(decision=admitted|queued|shed).",
    ),
    MetricSpec(
        "repro_serve_degraded_total", COUNTER, (),
        "Requests answered from degraded (fallback) statistics.",
    ),
    MetricSpec(
        "repro_serve_inflight_builds", GAUGE, (),
        "ANALYZE builds currently executing inside the server.",
    ),
    MetricSpec(
        "repro_serve_request_seconds", HISTOGRAM, (),
        "Wall-clock seconds per served request (timing-only; excluded "
        "from logical bench comparisons).",
    ),
    MetricSpec(
        "repro_serve_index_probes", HISTOGRAM, (),
        "Separator comparisons per BucketIndex lookup (O(log k) by "
        "construction; deterministic, so safe in logical costs).",
    ),
    MetricSpec(
        "repro_serve_uptime_requests", GAUGE, (),
        "Requests handled since server start — the logical uptime clock "
        "(deterministic, unlike wall-clock uptime).",
    ),
    MetricSpec(
        "repro_serve_queue_depth", GAUGE, (),
        "ANALYZE builds currently waiting in the admission queue.",
    ),
]

#: Every metric the library may emit, keyed by name.
METRICS: dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}

#: Every trace span the library may open, with its meaning.  Attribute sets
#: are documented in docs/OBSERVABILITY.md.
SPANS: dict[str, str] = {
    "cli.command": "One CLI subcommand invocation (the trace root).",
    "engine.analyze": "One StatisticsManager.analyze build.",
    "autostats.ensure_fresh": "One AutoStatistics read (freshness check "
                              "plus any rebuild).",
    "cvb.build": "One full CVB adaptive-sampling run.",
    "cvb.iteration": "One CVB cross-validation round (sample, validate, "
                     "merge).",
    "core.merge_equi_height": "One partition-histogram merge.",
    "pool.map": "One TrialPool.map fan-out (serial or process).",
    "chaos.sweep": "One chaos_sweep fault-rate sweep.",
    "bench.run": "One `repro bench` invocation (all selected scenarios).",
    "bench.scenario": "One benchmark scenario phase (setup, logical, "
                      "measure, or profile).",
    "durability.checkpoint": "One catalog checkpoint (atomic snapshot "
                             "write plus journal truncation).",
    "durability.recover": "One CatalogStore open (snapshot load plus "
                          "journal replay and tail repair).",
    "serve.request": "One request handled by the statistics server.",
    "serve.build": "One ANALYZE build executed on behalf of the server "
                   "(admission-controlled).",
    "serve.loadgen": "One closed-loop load-generator run against a "
                     "server.",
}

#: Every live-telemetry sketch the library may maintain
#: (:class:`repro.obs.live.StreamingQuantileSketch` validates names
#: against this dict).  Documented in docs/TELEMETRY.md.
SKETCHES: dict[str, str] = {
    "serve_request_latency": "Wall-clock seconds per served request "
                             "(the live latency distribution).",
    "serve_reference_latency": "Frozen early snapshot of the request-"
                               "latency sketch — the shift-detection "
                               "baseline.",
}

#: Every windowed telemetry series the library may maintain
#: (:class:`repro.obs.live.WindowedTimeseries` validates names against
#: this dict).  Windows are keyed by the server's logical request clock.
#: Documented in docs/TELEMETRY.md.
SERIES: dict[str, str] = {
    "serve_requests": "Requests completed, per logical window.",
    "serve_errors": "Requests answered with ok=false, per logical window.",
    "serve_cache_hits": "Serving-cache hits, per logical window.",
    "serve_cache_misses": "Serving-cache misses, per logical window.",
    "serve_sheds": "ANALYZE builds shed by admission control, per "
                   "logical window.",
    "serve_degraded": "Requests served from degraded last-known-good "
                      "statistics, per logical window.",
}
