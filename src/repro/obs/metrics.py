"""Process-local metrics registry: counters, gauges, equi-height histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`).  Instrumentation sites call the module-level helpers
:func:`inc` / :func:`set_gauge` / :func:`observe`; when no registry is
active (the default) those helpers return immediately, so instrumented hot
paths cost one no-op function call.  Enable collection around any build or
experiment with :func:`collecting`::

    from repro.obs import metrics

    with metrics.collecting() as registry:
        run_some_build()
    print(metrics.render_text(registry))

Design points:

- **Declared surface.**  Emissions are validated against the catalog
  (:mod:`repro.obs.catalog`): unknown names or wrong label sets raise
  immediately, which keeps ``docs/OBSERVABILITY.md`` trustworthy.
- **Histograms are equi-height** — dogfooding the paper.  A histogram
  metric stores its raw observations and the exporters cut them into
  equi-height (quantile) buckets, so bucket boundaries adapt to the data
  instead of being guessed up front.
- **Mergeable.**  :meth:`MetricsRegistry.merge` /
  :meth:`~MetricsRegistry.merge_snapshot` fold another registry's state in:
  counters and gauges add, histogram observations concatenate.  The merge
  is associative and commutative (a property test locks this down), so
  cross-process aggregation through
  :class:`~repro.experiments.parallel.TrialPool` gives identical exports
  for any worker count or chunking.  (Integer-valued counters and
  histogram multisets are bit-exact; a float-valued counter such as
  ``repro_simulated_latency_seconds_total`` is equal only up to
  float-addition reordering, ~1 ulp, because workers sum their chunks
  first.)
- **Deterministic exports.**  :func:`render_text` and :func:`render_json`
  sort by metric name and label value and carry no timestamps, so they are
  golden-file comparable.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from typing import Iterator

from ..exceptions import ParameterError
from .catalog import COUNTER, GAUGE, HISTOGRAM, METRICS, MetricSpec

__all__ = [
    "SCHEMA_VERSION",
    "MetricsRegistry",
    "collecting",
    "enable",
    "disable",
    "active_registry",
    "enabled",
    "inc",
    "set_gauge",
    "observe",
    "render_text",
    "render_json",
    "render_prom",
    "equi_height_buckets",
]

#: Version stamp of the :func:`render_json` document layout.  Bump on any
#: breaking change to the exported structure.
SCHEMA_VERSION = 1

#: Label-set key: canonical, hashable form of a ``**labels`` mapping.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A process-local bag of named counters, gauges and histograms.

    Parameters
    ----------
    strict:
        When True (default), every emission is validated against
        :data:`repro.obs.catalog.METRICS`: the name must be declared, with
        the declared type and exactly the declared label keys.  Pass False
        for ad-hoc metrics in tests or exploratory scripts.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._counters: dict[tuple[str, _LabelKey], float] = {}
        self._gauges: dict[tuple[str, _LabelKey], float] = {}
        self._histograms: dict[tuple[str, _LabelKey], list[float]] = {}
        # The serving layer emits from many threads at once; without this
        # lock the read-modify-write in inc() loses updates.  Counter values
        # stay exact under concurrency (integer-valued additions commute),
        # so deterministic workloads export identically for any thread
        # interleaving.
        self._mutate_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _check(self, name: str, type_: str, labels: dict) -> None:
        if not self.strict:
            return
        spec = METRICS.get(name)
        if spec is None:
            raise ParameterError(
                f"metric {name!r} is not declared in repro.obs.catalog.METRICS"
            )
        if spec.type != type_:
            raise ParameterError(
                f"metric {name!r} is a {spec.type}, not a {type_}"
            )
        if set(labels) != set(spec.labels):
            raise ParameterError(
                f"metric {name!r} takes labels {sorted(spec.labels)}, "
                f"got {sorted(labels)}"
            )

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add *amount* (>= 0) to counter *name* for the given labels."""
        if amount < 0:
            raise ParameterError(
                f"counters only go up; got amount={amount} for {name!r}"
            )
        self._check(name, COUNTER, labels)
        key = (name, _label_key(labels))
        with self._mutate_lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge *name* to *value* for the given labels."""
        self._check(name, GAUGE, labels)
        with self._mutate_lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation of *value* into histogram *name*."""
        self._check(name, HISTOGRAM, labels)
        key = (name, _label_key(labels))
        with self._mutate_lock:
            self._histograms.setdefault(key, []).append(float(value))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other*'s state into this registry (returns ``self``).

        Counters and gauges add (a gauge is a per-process level, so the
        aggregate across processes is the fleet-wide total); histogram
        observations concatenate.  Merging is associative and commutative:
        any split of the same emissions over worker registries exports
        identically once merged.
        """
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: dict) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` dict in — the picklable twin of
        :meth:`merge`, used to ship worker-side registries back through a
        process pool."""
        with self._mutate_lock:
            for name, labels, value in snapshot.get("counters", []):
                key = (name, _label_key(labels))
                self._counters[key] = self._counters.get(key, 0.0) + value
            for name, labels, value in snapshot.get("gauges", []):
                key = (name, _label_key(labels))
                self._gauges[key] = self._gauges.get(key, 0.0) + value
            for name, labels, values in snapshot.get("histograms", []):
                key = (name, _label_key(labels))
                self._histograms.setdefault(key, []).extend(values)
        return self

    def snapshot(self) -> dict:
        """Plain-data (picklable, JSON-able) copy of the registry state."""
        with self._mutate_lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        """Build the snapshot dict; caller holds the mutation lock."""
        return {
            "counters": [
                [name, dict(labels), value]
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                [name, dict(labels), value]
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                [name, dict(labels), list(values)]
                for (name, labels), values in sorted(self._histograms.items())
            ],
        }

    def reset(self) -> None:
        """Drop every recorded value (declared metrics stay declared)."""
        with self._mutate_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0.0)

    def gauge_value(self, name: str, **labels) -> float:
        """Current value of a gauge (0 when never set)."""
        return self._gauges.get((name, _label_key(labels)), 0.0)

    def observations(self, name: str, **labels) -> list[float]:
        """Raw observations of a histogram, in recording order."""
        return list(self._histograms.get((name, _label_key(labels)), []))

    def names(self) -> list[str]:
        """Sorted names of every metric that has recorded data."""
        keys = (
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )
        return sorted({name for name, _ in keys})

    def __len__(self) -> int:
        """Number of (name, label-set) series holding data."""
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


# ----------------------------------------------------------------------
# Active-registry plumbing (the off-by-default-cheap part)
# ----------------------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def enabled() -> bool:
    """True when a registry is currently collecting."""
    return _ACTIVE is not None


def active_registry() -> MetricsRegistry | None:
    """The currently collecting registry, or ``None``."""
    return _ACTIVE


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Start routing emissions to *registry* (a fresh one by default)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Stop collecting: emissions become no-ops again."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Collect metrics inside a ``with`` block, restoring the previous
    active registry (if any) on exit — safe to nest, which is how
    per-trial worker registries coexist with an enabled parent."""
    global _ACTIVE
    previous = _ACTIVE
    registry = registry if registry is not None else MetricsRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def inc(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter on the active registry; no-op when disabled."""
    if _ACTIVE is not None:
        _ACTIVE.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active registry; no-op when disabled."""
    if _ACTIVE is not None:
        _ACTIVE.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Observe into a histogram on the active registry; no-op when
    disabled."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, **labels)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def equi_height_buckets(
    values: list[float], k: int = 8
) -> list[dict]:
    """Cut *values* into at most *k* equi-height buckets.

    Returns ``[{"le": upper_bound, "count": n}, ...]`` where each bucket
    holds ~``len(values)/k`` observations — the same construction the
    paper's histograms use, applied to the telemetry itself.  The cut is a
    pure function of the sorted multiset, so merge order never changes it.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    xs = sorted(values)
    n = len(xs)
    if n == 0:
        return []
    k = min(k, n)
    buckets: list[dict] = []
    prev = 0
    for i in range(1, k + 1):
        hi = round(n * i / k)
        if hi <= prev:
            continue
        buckets.append({"le": xs[hi - 1], "count": hi - prev})
        prev = hi
    return buckets


def _fmt(value: float) -> str:
    """Stable numeric formatting for the text exporter."""
    if float(value).is_integer():
        return str(int(value))
    return format(value, ".10g")


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _spec_for(name: str) -> MetricSpec | None:
    return METRICS.get(name)


def render_text(registry: MetricsRegistry, bucket_count: int = 8) -> str:
    """Prometheus-style text exposition of *registry*.

    Series are sorted by metric name then label value; histogram metrics
    render their equi-height buckets plus ``_count`` / ``_sum`` lines.  No
    timestamps are emitted, so output is stable across runs of the same
    deterministic build.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    by_name: dict[str, list[tuple[str, str, list[str]]]] = {}

    for kind, entries in ((COUNTER, snap["counters"]), (GAUGE, snap["gauges"])):
        for name, labels, value in entries:
            by_name.setdefault(name, []).append(
                (kind, "", [f"{name}{_label_str(labels)} {_fmt(value)}"])
            )
    for name, labels, values in snap["histograms"]:
        body = []
        for bucket in equi_height_buckets(values, bucket_count):
            bucket_labels = dict(labels)
            bucket_labels["le"] = _fmt(bucket["le"])
            body.append(
                f"{name}_bucket{_label_str(bucket_labels)} "
                f"{bucket['count']}"
            )
        body.append(f"{name}_count{_label_str(labels)} {len(values)}")
        # fsum is exactly rounded, so the sum is a pure function of the
        # observation multiset — merge order can never leak into the export.
        body.append(
            f"{name}_sum{_label_str(labels)} {_fmt(math.fsum(values))}"
        )
        by_name.setdefault(name, []).append((HISTOGRAM, "", body))

    for name in sorted(by_name):
        spec = _spec_for(name)
        kind = spec.type if spec else by_name[name][0][0]
        help_text = spec.help if spec else ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for _, _, body in by_name[name]:
            lines.extend(body)
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_prom_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prom(registry: MetricsRegistry, bucket_count: int = 8) -> str:
    """Strict Prometheus text-exposition rendering of *registry*.

    Differs from :func:`render_text` (which is Prometheus-*style* but keeps
    per-bucket counts for readability) in the ways a real scraper cares
    about: histogram ``_bucket`` series carry **cumulative** counts, a
    closing ``le="+Inf"`` bucket equals ``_count``, label values are
    escaped per the exposition format, and HELP text is
    newline/backslash-escaped.  Bucket boundaries are still the
    equi-height cut of the observation multiset (deterministic, merge
    -order-free), so the output is golden-file comparable.  No timestamps
    are emitted.
    """
    snap = registry.snapshot()
    by_name: dict[str, list[str]] = {}

    for kind, entries in ((COUNTER, snap["counters"]), (GAUGE, snap["gauges"])):
        for name, labels, value in entries:
            by_name.setdefault(name, []).append(
                f"{name}{_prom_label_str(labels)} {_fmt(value)}"
            )
    for name, labels, values in snap["histograms"]:
        body = by_name.setdefault(name, [])
        cumulative = 0
        for bucket in equi_height_buckets(values, bucket_count):
            cumulative += bucket["count"]
            bucket_labels = dict(labels)
            bucket_labels["le"] = _fmt(bucket["le"])
            body.append(
                f"{name}_bucket{_prom_label_str(bucket_labels)} {cumulative}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        body.append(f"{name}_bucket{_prom_label_str(inf_labels)} {len(values)}")
        body.append(f"{name}_count{_prom_label_str(labels)} {len(values)}")
        body.append(
            f"{name}_sum{_prom_label_str(labels)} {_fmt(math.fsum(values))}"
        )

    lines: list[str] = []
    for name in sorted(by_name):
        spec = _spec_for(name)
        if spec is not None:
            lines.append(f"# HELP {name} {_prom_escape_help(spec.help)}")
            lines.append(f"# TYPE {name} {spec.type}")
        lines.extend(by_name[name])
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry, bucket_count: int = 8) -> str:
    """JSON exposition of *registry*: deterministic ordering, no
    timestamps, histogram buckets precomputed equi-height.  The document
    carries a top-level ``schema_version`` (:data:`SCHEMA_VERSION`)."""
    snap = registry.snapshot()
    out = []
    for name, labels, value in snap["counters"]:
        out.append(
            {"name": name, "type": COUNTER, "labels": labels, "value": value}
        )
    for name, labels, value in snap["gauges"]:
        out.append(
            {"name": name, "type": GAUGE, "labels": labels, "value": value}
        )
    for name, labels, values in snap["histograms"]:
        out.append(
            {
                "name": name,
                "type": HISTOGRAM,
                "labels": labels,
                "count": len(values),
                "sum": math.fsum(values),
                "buckets": equi_height_buckets(values, bucket_count),
            }
        )
    out.sort(key=lambda m: (m["name"], sorted(m["labels"].items())))
    return (
        json.dumps(
            {"schema_version": SCHEMA_VERSION, "metrics": out},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
