"""Live runtime telemetry primitives: sketches, windows, and SLOs.

``repro.obs.live`` holds the streaming building blocks behind the serve
server's ``stats``/``health``/``watch`` endpoints (docs/TELEMETRY.md):

- :class:`~repro.obs.live.sketch.StreamingQuantileSketch` — a
  bounded-memory, deterministic latency/value sketch that exports to the
  paper's own :class:`~repro.core.histogram.EquiHeightHistogram` and
  answers quantile/CDF queries through the serving layer's
  :class:`~repro.serve.bucket_index.BucketIndex`.
- :class:`~repro.obs.live.window.WindowedTimeseries` — per-window
  rates/gauges over a *logical* clock, so exports stay RNG-inert and
  testable without wall-clock flakiness.
- :class:`~repro.obs.live.slo.SloTracker` /
  :func:`~repro.obs.live.slo.distribution_shift` — declared latency and
  error objectives with burn state, plus a total-variation shift detector
  comparing the live latency sketch against a frozen reference.

Layering note: like :mod:`repro.obs.bench`, this subpackage drives the
library *from above* (it imports :mod:`repro.core` and
:mod:`repro.serve`), so it is **not** imported by ``repro.obs``'s
``__init__`` — import it explicitly as ``from repro.obs import live``.
All sketch and series names are declared in
:mod:`repro.obs.catalog` (``SKETCHES`` / ``SERIES``) and validated on
construction, exactly like metric emissions.
"""

from __future__ import annotations

from .sketch import StreamingQuantileSketch
from .slo import SloObjective, SloTracker, distribution_shift
from .window import WindowedTimeseries

__all__ = [
    "StreamingQuantileSketch",
    "WindowedTimeseries",
    "SloObjective",
    "SloTracker",
    "distribution_shift",
]
