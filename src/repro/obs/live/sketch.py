"""Bounded-memory streaming quantile sketch over a fixed log-spaced grid.

:class:`StreamingQuantileSketch` answers p50/p90/p99 and CDF queries over
an unbounded value stream with a **fixed bucket budget**, dogfooding the
paper: the sketch state exports to an
:class:`~repro.core.histogram.EquiHeightHistogram` and queries are served
through the O(log k) :class:`~repro.serve.bucket_index.BucketIndex` from
the serving layer.

Design — determinism before cleverness.  Adaptive sketches (DDSketch
collapse, incremental equi-height compression) make the state depend on
arrival *order*, which would break the serve layer's byte-identical
summary contract.  Instead the bucket grid is **fixed at construction**:
``bucket_budget`` log-spaced buckets spanning ``[min_domain, max_domain]``
with growth factor ``gamma = (max_domain / min_domain) ** (1 /
bucket_budget)``.  Observing a value only increments one integer counter,
so the sketch state — and therefore every quantile answer — is a pure
function of the observed *multiset*: bit-identical across runs, arrival
orders, and merge orders (merging adds counters, which is exactly
associative and commutative).

Accuracy: for values inside ``[min_domain, max_domain]`` a quantile
answer and the exact sorted-array quantile land in the same grid bucket,
so they differ by at most a factor of ``gamma`` in value, and the rank of
the answer is off by at most that bucket's count (asserted under
hypothesis in ``tests/obs/live/test_sketch.py``).  Zeros are tracked as
an exact point mass; values outside the domain clamp into the outermost
buckets, where only the exact observed min/max bound the error.
"""

from __future__ import annotations

import json
import math

import numpy as np

from ...core.histogram import EquiHeightHistogram
from ...exceptions import EmptyDataError, ParameterError
from ..catalog import SKETCHES

__all__ = ["StreamingQuantileSketch"]


class StreamingQuantileSketch:
    """Deterministic, mergeable quantile sketch with a fixed bucket budget.

    Parameters
    ----------
    name:
        Declared sketch name; must appear in
        :data:`repro.obs.catalog.SKETCHES` unless ``strict=False``.
    bucket_budget:
        Number of log-spaced grid buckets between ``min_domain`` and
        ``max_domain``.  Memory is bounded by ``bucket_budget + 2``
        integer counters regardless of stream length.
    min_domain, max_domain:
        The value range resolved at full relative precision.  Values of
        exactly ``0.0`` are counted as a point mass; values in
        ``(0, min_domain]`` share the first bucket and values above
        ``max_domain`` share the last (exact min/max are still tracked).
    strict:
        When true (default), reject undeclared sketch names — the same
        documented-by-construction rule the metrics registry enforces.
    """

    def __init__(
        self,
        name: str,
        *,
        bucket_budget: int = 64,
        min_domain: float = 1e-6,
        max_domain: float = 1e3,
        strict: bool = True,
    ):
        if strict and name not in SKETCHES:
            known = ", ".join(sorted(SKETCHES))
            raise ParameterError(
                f"undeclared sketch name {name!r}; declared: {known}"
            )
        if bucket_budget < 1:
            raise ParameterError(
                f"bucket_budget must be positive, got {bucket_budget}"
            )
        if not 0.0 < min_domain < max_domain:
            raise ParameterError(
                f"need 0 < min_domain < max_domain, got "
                f"[{min_domain}, {max_domain}]"
            )
        self._name = name
        self._budget = int(bucket_budget)
        self._min_domain = float(min_domain)
        self._max_domain = float(max_domain)
        self._gamma = (self._max_domain / self._min_domain) ** (
            1.0 / self._budget
        )
        self._log_gamma = math.log(self._gamma)
        #: Grid bucket counts, keyed by bucket index in ``[0, budget]``.
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._min_positive = math.inf
        self._max = -math.inf
        self._index = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The declared sketch name."""
        return self._name

    @property
    def bucket_budget(self) -> int:
        """Number of grid buckets (the memory bound)."""
        return self._budget

    @property
    def min_domain(self) -> float:
        """Lower edge of the fully resolved value range."""
        return self._min_domain

    @property
    def max_domain(self) -> float:
        """Upper edge of the fully resolved value range."""
        return self._max_domain

    @property
    def gamma(self) -> float:
        """Per-bucket growth factor — the relative-accuracy guarantee."""
        return self._gamma

    @property
    def count(self) -> int:
        """Total number of observed values."""
        return self._count

    @property
    def zero_count(self) -> int:
        """Number of observed exact zeros (kept as a point mass)."""
        return self._zero_count

    @property
    def min(self) -> float | None:
        """Exact smallest observed value (``None`` while empty)."""
        if self._count == 0:
            return None
        return 0.0 if self._zero_count else self._min_positive

    @property
    def max(self) -> float | None:
        """Exact largest observed value (``None`` while empty)."""
        if self._count == 0:
            return None
        return 0.0 if self._max == -math.inf else self._max

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _bucket_of(self, value: float) -> int:
        """Grid bucket index of a positive *value*, clamped to the domain."""
        if value <= self._min_domain:
            return 0
        index = math.ceil(
            math.log(value / self._min_domain) / self._log_gamma
        )
        return min(max(index, 0), self._budget)

    def observe(self, value: float, count: int = 1) -> None:
        """Fold *count* occurrences of *value* into the sketch.

        Rejects negative, NaN, and infinite values — the sketch tracks
        non-negative measurements (latencies, sizes, counts).
        """
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ParameterError(
                f"sketch values must be finite and >= 0, got {value!r}"
            )
        if count < 1:
            raise ParameterError(f"count must be positive, got {count}")
        if value == 0.0:
            self._zero_count += count
        else:
            bucket = self._bucket_of(value)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
            if value < self._min_positive:
                self._min_positive = value
            if value > self._max:
                self._max = value
        self._count += count
        self._index = None

    def merge(
        self, other: "StreamingQuantileSketch"
    ) -> "StreamingQuantileSketch":
        """Fold *other* into this sketch; returns ``self``.

        Both sketches must share the same name and grid configuration;
        merging then adds integer counters and takes exact min/max, so
        the merged state equals the state of one sketch that observed
        both multisets — associative and commutative, in any merge order
        (the same contract as :meth:`MetricsRegistry.merge
        <repro.obs.metrics.MetricsRegistry.merge>`).
        """
        if not isinstance(other, StreamingQuantileSketch):
            raise ParameterError(
                f"cannot merge {type(other).__name__} into a sketch"
            )
        if (
            other._name != self._name
            or other._budget != self._budget
            or other._min_domain != self._min_domain
            or other._max_domain != self._max_domain
        ):
            raise ParameterError(
                f"sketch configs differ: {self.config()} vs {other.config()}"
            )
        for bucket, bucket_count in other._buckets.items():
            self._buckets[bucket] = (
                self._buckets.get(bucket, 0) + bucket_count
            )
        self._zero_count += other._zero_count
        self._count += other._count
        self._min_positive = min(self._min_positive, other._min_positive)
        self._max = max(self._max, other._max)
        self._index = None
        return self

    # ------------------------------------------------------------------
    # Export / import (byte-stable)
    # ------------------------------------------------------------------

    def config(self) -> dict:
        """The grid configuration (the merge-compatibility key)."""
        return {
            "name": self._name,
            "bucket_budget": self._budget,
            "min_domain": self._min_domain,
            "max_domain": self._max_domain,
        }

    def to_dict(self) -> dict:
        """Plain-data snapshot: config, exact extrema, and bucket counts.

        The snapshot is lossless (``min_positive`` keeps the exact
        positive minimum even when zeros own ``min``), so
        ``from_dict(to_dict(s))`` reproduces ``s`` exactly and snapshots
        can be merged across processes without drift.
        """
        return {
            **self.config(),
            "count": self._count,
            "zero_count": self._zero_count,
            "min": self.min,
            "max": self.max,
            "min_positive": (
                None if self._min_positive == math.inf else self._min_positive
            ),
            "buckets": [
                [bucket, self._buckets[bucket]]
                for bucket in sorted(self._buckets)
            ],
        }

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, compact separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(
        cls, snapshot: dict, *, strict: bool = True
    ) -> "StreamingQuantileSketch":
        """Rebuild a sketch from a :meth:`to_dict` snapshot."""
        sketch = cls(
            snapshot["name"],
            bucket_budget=snapshot["bucket_budget"],
            min_domain=snapshot["min_domain"],
            max_domain=snapshot["max_domain"],
            strict=strict,
        )
        sketch._buckets = {
            int(bucket): int(bucket_count)
            for bucket, bucket_count in snapshot["buckets"]
        }
        sketch._zero_count = int(snapshot["zero_count"])
        sketch._count = int(snapshot["count"])
        if snapshot["min_positive"] is not None:
            sketch._min_positive = float(snapshot["min_positive"])
        if snapshot["max"] is not None and sketch._buckets:
            sketch._max = float(snapshot["max"])
        return sketch

    def copy(self, *, name: str | None = None) -> "StreamingQuantileSketch":
        """Deep copy, optionally renamed (e.g. to freeze a reference)."""
        snapshot = self.to_dict()
        if name is not None:
            snapshot["name"] = name
        return StreamingQuantileSketch.from_dict(snapshot, strict=False)

    # ------------------------------------------------------------------
    # Queries — through the paper's histogram + the serving BucketIndex
    # ------------------------------------------------------------------

    def to_histogram(self) -> EquiHeightHistogram:
        """Export the sketch state as an equi-height histogram.

        The grid buckets between the first and last occupied index become
        histogram buckets (unoccupied interior buckets keep zero counts so
        interpolation bounds stay adjacent grid edges); exact observed
        min/max bound the outer buckets, and the zero point mass becomes
        an ``eq_counts`` entry at a ``0.0`` separator.
        """
        if self._count == 0:
            raise EmptyDataError("cannot export an empty sketch")
        separators: list[float] = []
        counts: list[int] = []
        eq_counts: list[int] = []
        has_positive = bool(self._buckets)
        if self._zero_count:
            separators.append(0.0)
            counts.append(self._zero_count)
            eq_counts.append(self._zero_count)
            if has_positive:
                # Zero-width spacer bucket up to the exact positive
                # minimum, so positive interpolation never smears below
                # the smallest positive observation.
                separators.append(self._min_positive)
                counts.append(0)
                eq_counts.append(0)
        if has_positive:
            first, last = min(self._buckets), max(self._buckets)
            for bucket in range(first, last + 1):
                counts.append(self._buckets.get(bucket, 0))
                if bucket < last:
                    separators.append(self._edge(bucket))
                    eq_counts.append(0)
        min_value = 0.0 if self._zero_count else self._min_positive
        max_value = self._max if has_positive else 0.0
        return EquiHeightHistogram(
            np.asarray(separators, dtype=np.float64),
            np.asarray(counts, dtype=np.int64),
            min_value,
            max_value,
            eq_counts=np.asarray(eq_counts, dtype=np.int64),
        )

    def _edge(self, bucket: int) -> float:
        """Upper edge of grid bucket *bucket* (``min_domain * gamma^b``)."""
        return self._min_domain * self._gamma**bucket

    def _bucket_index(self):
        """The cached query index, rebuilt after any mutation.

        The :class:`~repro.serve.bucket_index.BucketIndex` import is
        deferred to the first query: ``repro.serve.telemetry`` imports
        this module, so a module-level import back into ``repro.serve``
        would cycle through that package's ``__init__``.
        """
        if self._index is None:
            from ...serve.bucket_index import BucketIndex

            self._index = BucketIndex(self.to_histogram())
        return self._index

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` of the observed stream (estimated)."""
        return float(self._bucket_index().estimate_quantile(q))

    def cdf(self, value: float) -> float:
        """Estimated fraction of observed values ``<= value``."""
        return float(self._bucket_index().estimate_leq(value)) / self._count

    def percentiles(self) -> dict:
        """The monitoring trio — ``{"p50": ..., "p90": ..., "p99": ...}``."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def bucket_masses(self) -> dict[int, int]:
        """Grid occupancy including zeros at pseudo-index ``-1``.

        The shared fixed grid makes two sketches' masses directly
        comparable — this is the input to
        :func:`repro.obs.live.slo.distribution_shift`.
        """
        masses = dict(self._buckets)
        if self._zero_count:
            masses[-1] = self._zero_count
        return masses

    def __len__(self) -> int:
        """Number of occupied buckets (the actual memory footprint)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def __repr__(self) -> str:
        return (
            f"StreamingQuantileSketch(name={self._name!r}, "
            f"count={self._count}, buckets={len(self)}/{self._budget})"
        )
