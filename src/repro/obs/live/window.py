"""Per-window rates over a logical clock: ring-buffered, RNG-inert.

:class:`WindowedTimeseries` aggregates event amounts into fixed-width
windows of a **logical clock** (the serve server ticks it once per
request), keeping only the most recent ``num_windows`` windows — a ring
buffer, so memory is bounded regardless of uptime.

Using logical ticks instead of wall time is what keeps the serve layer's
telemetry deterministic and testable: window boundaries are pure
functions of the tick stream, never of scheduling or machine speed.  The
final ring state is a pure function of the observed multiset of
``(tick, amount)`` pairs (events landing in already-expired windows are
dropped on arrival, exactly as they would have been pruned), so merging
two instances — add per-window, take the max clock, re-prune — is
associative and commutative.  Lifetime totals are kept alongside the
ring: totals are interleaving-invariant and belong in logical summaries,
while per-window values depend on how concurrent requests interleave and
belong in wall-clock sections.
"""

from __future__ import annotations

import json

from ...exceptions import ParameterError
from ..catalog import SERIES

__all__ = ["WindowedTimeseries"]


class WindowedTimeseries:
    """A ring of per-window sums over a logical clock.

    Parameters
    ----------
    name:
        Declared series name; must appear in
        :data:`repro.obs.catalog.SERIES` unless ``strict=False``.
    window_ticks:
        Logical-clock ticks per window; window ``w`` covers ticks
        ``[w * window_ticks, (w + 1) * window_ticks)``.
    num_windows:
        Ring size — how many trailing windows are retained.
    strict:
        When true (default), reject undeclared series names.
    """

    def __init__(
        self,
        name: str,
        *,
        window_ticks: int = 64,
        num_windows: int = 8,
        strict: bool = True,
    ):
        if strict and name not in SERIES:
            known = ", ".join(sorted(SERIES))
            raise ParameterError(
                f"undeclared series name {name!r}; declared: {known}"
            )
        if window_ticks < 1:
            raise ParameterError(
                f"window_ticks must be positive, got {window_ticks}"
            )
        if num_windows < 1:
            raise ParameterError(
                f"num_windows must be positive, got {num_windows}"
            )
        self._name = name
        self._window_ticks = int(window_ticks)
        self._num_windows = int(num_windows)
        self._clock = 0
        self._total = 0.0
        self._events = 0
        self._windows: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The declared series name."""
        return self._name

    @property
    def window_ticks(self) -> int:
        """Logical ticks per window."""
        return self._window_ticks

    @property
    def num_windows(self) -> int:
        """Ring size (trailing windows retained)."""
        return self._num_windows

    @property
    def clock(self) -> int:
        """Largest logical tick seen so far."""
        return self._clock

    @property
    def window_index(self) -> int:
        """Index of the window containing the current clock."""
        return self._clock // self._window_ticks

    @property
    def total(self) -> float:
        """Lifetime sum of all recorded amounts (never pruned)."""
        return self._total

    @property
    def events(self) -> int:
        """Lifetime number of :meth:`record` calls folded in."""
        return self._events

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def advance(self, tick: int) -> None:
        """Move the logical clock forward to *tick* (monotone max)."""
        if tick < 0:
            raise ParameterError(f"ticks must be >= 0, got {tick}")
        if tick > self._clock:
            self._clock = tick
            self._prune()

    def record(self, amount: float = 1.0, *, tick: int | None = None) -> None:
        """Add *amount* at logical *tick* (default: the current clock).

        The clock advances to *tick* if it is ahead; amounts landing in
        windows the ring has already expired are counted in the lifetime
        total but not retained (same outcome as recording then pruning).
        """
        if tick is None:
            tick = self._clock
        if tick < 0:
            raise ParameterError(f"ticks must be >= 0, got {tick}")
        if tick > self._clock:
            self._clock = tick
        window = tick // self._window_ticks
        self._windows[window] = self._windows.get(window, 0.0) + float(amount)
        self._total += float(amount)
        self._events += 1
        self._prune()

    def _prune(self) -> None:
        """Drop windows that fell out of the ring."""
        cutoff = self.window_index - self._num_windows
        if any(window <= cutoff for window in self._windows):
            self._windows = {
                window: value
                for window, value in self._windows.items()
                if window > cutoff
            }

    def merge(self, other: "WindowedTimeseries") -> "WindowedTimeseries":
        """Fold *other* into this series; returns ``self``.

        Associative and commutative.  Requires identical configuration;
        per-window sums add, the clock takes the max, lifetime totals
        add, and the ring is re-pruned against the merged clock.
        """
        if not isinstance(other, WindowedTimeseries):
            raise ParameterError(
                f"cannot merge {type(other).__name__} into a series"
            )
        if (
            other._name != self._name
            or other._window_ticks != self._window_ticks
            or other._num_windows != self._num_windows
        ):
            raise ParameterError(
                f"series configs differ: {self.config()} vs {other.config()}"
            )
        for window, value in other._windows.items():
            self._windows[window] = self._windows.get(window, 0.0) + value
        self._clock = max(self._clock, other._clock)
        self._total += other._total
        self._events += other._events
        self._prune()
        return self

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def windows(self) -> list[list]:
        """Retained ``[window_index, sum]`` pairs, oldest first."""
        return [
            [window, self._windows[window]]
            for window in sorted(self._windows)
        ]

    def windows_since(self, cursor: int) -> list[list]:
        """Retained pairs with ``window_index >= cursor`` (for ``watch``)."""
        return [pair for pair in self.windows() if pair[0] >= cursor]

    def value(self, window: int) -> float:
        """Sum recorded in *window* (0.0 when absent or expired)."""
        return self._windows.get(window, 0.0)

    def rate(self, window: int) -> float:
        """Per-tick rate of *window* (``value / window_ticks``)."""
        return self.value(window) / self._window_ticks

    # ------------------------------------------------------------------
    # Export / import (byte-stable)
    # ------------------------------------------------------------------

    def config(self) -> dict:
        """The ring configuration (the merge-compatibility key)."""
        return {
            "name": self._name,
            "window_ticks": self._window_ticks,
            "num_windows": self._num_windows,
        }

    def to_dict(self) -> dict:
        """Plain-data snapshot of config, clock, totals, and the ring."""
        return {
            **self.config(),
            "clock": self._clock,
            "total": self._total,
            "events": self._events,
            "windows": self.windows(),
        }

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, compact separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(
        cls, snapshot: dict, *, strict: bool = True
    ) -> "WindowedTimeseries":
        """Rebuild a series from a :meth:`to_dict` snapshot."""
        series = cls(
            snapshot["name"],
            window_ticks=snapshot["window_ticks"],
            num_windows=snapshot["num_windows"],
            strict=strict,
        )
        series._clock = int(snapshot["clock"])
        series._total = float(snapshot["total"])
        series._events = int(snapshot["events"])
        series._windows = {
            int(window): float(value)
            for window, value in snapshot["windows"]
        }
        return series

    def __repr__(self) -> str:
        return (
            f"WindowedTimeseries(name={self._name!r}, clock={self._clock}, "
            f"windows={len(self._windows)}/{self._num_windows})"
        )
