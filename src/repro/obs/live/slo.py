"""Declared service-level objectives, burn state, and shift detection.

:class:`SloTracker` evaluates a closed set of declared
:class:`SloObjective` targets against live telemetry — latency
objectives against a :class:`~repro.obs.live.sketch.StreamingQuantileSketch`
quantile, error-rate objectives against lifetime series totals — and
keeps **burn state**: how many consecutive evaluations an objective has
violated.  An objective is *burning* once that streak reaches
``burn_windows``, which is the signal the serve ``health`` endpoint
degrades on.

:func:`distribution_shift` is the alerting complement: it compares the
current latency sketch against a frozen reference sketch with the total
variation distance over their (shared, fixed) bucket grids.  This is the
practical face of histogram-distribution *testing* (PAPERS.md:
*Near-Optimal Bounds for Testing Histogram Distributions*): with both
distributions already summarised as k-bucket histograms, TV distance over
the grid is the natural discrepancy statistic, and the ``min_count``
guard plays the sample-complexity role — don't test before the sketches
resolve the distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...exceptions import ParameterError
from .sketch import StreamingQuantileSketch

__all__ = [
    "LATENCY",
    "ERROR_RATE",
    "SloObjective",
    "SloTracker",
    "distribution_shift",
]

#: Objective kind: a latency-quantile ceiling (wall-clock surface).
LATENCY = "latency"
#: Objective kind: an error-rate ceiling over lifetime totals (logical).
ERROR_RATE = "error_rate"

_KINDS = (LATENCY, ERROR_RATE)


@dataclass(frozen=True)
class SloObjective:
    """One declared objective.

    ``latency`` objectives require ``quantile(q) <= threshold`` seconds;
    ``error_rate`` objectives require ``errors / requests <= threshold``.
    """

    name: str
    kind: str
    threshold: float
    quantile: float = 0.99

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ParameterError(
                f"objective kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.threshold < 0:
            raise ParameterError(
                f"threshold must be >= 0, got {self.threshold}"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise ParameterError(
                f"quantile must be in [0, 1], got {self.quantile}"
            )

    def to_dict(self) -> dict:
        """Plain-data declaration (for the ``stats`` endpoint)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "quantile": self.quantile,
        }


class SloTracker:
    """Evaluates declared objectives and keeps per-objective burn streaks."""

    def __init__(
        self,
        objectives: tuple[SloObjective, ...] | list[SloObjective],
        *,
        burn_windows: int = 3,
    ):
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate objective names in {names}")
        if burn_windows < 1:
            raise ParameterError(
                f"burn_windows must be positive, got {burn_windows}"
            )
        self._objectives = tuple(objectives)
        self._burn_windows = int(burn_windows)
        self._burn = {name: 0 for name in names}

    @property
    def objectives(self) -> tuple[SloObjective, ...]:
        """The declared objective set (closed, like a label set)."""
        return self._objectives

    @property
    def burn_windows(self) -> int:
        """Consecutive violations before an objective is *burning*."""
        return self._burn_windows

    def evaluate(
        self,
        *,
        latency_sketch: StreamingQuantileSketch | None = None,
        requests: float = 0.0,
        errors: float = 0.0,
    ) -> list[dict]:
        """Evaluate every objective once; update and report burn state.

        Objectives without enough data (empty sketch, zero requests) are
        reported with ``evaluated: false`` and leave their burn streak
        untouched.  Results are ordered by objective name so the output
        is byte-stable.
        """
        results = []
        for objective in sorted(self._objectives, key=lambda o: o.name):
            observed: float | None = None
            if objective.kind == LATENCY:
                if latency_sketch is not None and latency_sketch.count:
                    observed = latency_sketch.quantile(objective.quantile)
            elif requests > 0:
                observed = errors / requests
            ok: bool | None = None
            if observed is not None:
                ok = observed <= objective.threshold
                if ok:
                    self._burn[objective.name] = 0
                else:
                    self._burn[objective.name] += 1
            burn = self._burn[objective.name]
            results.append(
                {
                    **objective.to_dict(),
                    "evaluated": observed is not None,
                    "observed": observed,
                    "ok": ok,
                    "burn": burn,
                    "burning": burn >= self._burn_windows,
                }
            )
        return results

    def burning(self) -> list[str]:
        """Names of objectives currently at or past the burn threshold."""
        return sorted(
            name
            for name, burn in self._burn.items()
            if burn >= self._burn_windows
        )


def distribution_shift(
    current: StreamingQuantileSketch,
    reference: StreamingQuantileSketch,
    *,
    epsilon: float = 0.25,
    min_count: int = 32,
) -> dict:
    """Total-variation shift verdict between two same-grid sketches.

    Returns ``{"evaluated", "tv_distance", "epsilon", "shifted", ...}``.
    Both sketches must share the bucket grid (budget and domain — names
    may differ, e.g. live vs frozen reference); the TV distance is then
    ``0.5 * sum |p_b - q_b|`` over the union of occupied buckets, with
    the zero point mass included as its own pseudo-bucket.  Below
    ``min_count`` observations on either side the verdict is withheld
    (``evaluated: false``) — the sample-complexity guard.
    """
    if (
        current.bucket_budget != reference.bucket_budget
        or current.min_domain != reference.min_domain
        or current.max_domain != reference.max_domain
    ):
        raise ParameterError(
            f"sketch grids differ: {current.config()} vs {reference.config()}"
        )
    if not 0.0 < epsilon <= 1.0:
        raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    if min_count < 1:
        raise ParameterError(f"min_count must be positive, got {min_count}")
    verdict = {
        "epsilon": epsilon,
        "min_count": min_count,
        "current_count": current.count,
        "reference_count": reference.count,
    }
    if current.count < min_count or reference.count < min_count:
        return {**verdict, "evaluated": False, "tv_distance": None,
                "shifted": False}
    current_masses = current.bucket_masses()
    reference_masses = reference.bucket_masses()
    buckets = sorted(set(current_masses) | set(reference_masses))
    tv_distance = 0.5 * math.fsum(
        abs(
            current_masses.get(bucket, 0) / current.count
            - reference_masses.get(bucket, 0) / reference.count
        )
        for bucket in buckets
    )
    return {
        **verdict,
        "evaluated": True,
        "tv_distance": tv_distance,
        "shifted": tv_distance > epsilon,
    }
