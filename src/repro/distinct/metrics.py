"""Error metrics for distinct-value estimators.

Two metrics from Section 6:

- :func:`ratio_error` — Definition 5: ``max(d_hat/d, d/d_hat)``, always
  ``>= 1``.  Theorem 8 shows it cannot be bounded without near-complete
  scans.
- :func:`rel_error` — the paper's proposed weaker metric ``|d - d_hat| / n``,
  which *can* be estimated reliably and still lets an optimizer tell "d is
  much smaller than n" apart from "d is close to n".
"""

from __future__ import annotations

from ..exceptions import ParameterError

__all__ = ["ratio_error", "rel_error"]


def ratio_error(estimate: float, true_distinct: int) -> float:
    """Definition 5: the ratio of estimate and truth, inverted if below 1."""
    if true_distinct <= 0:
        raise ParameterError(
            f"true_distinct must be positive, got {true_distinct}"
        )
    if estimate <= 0:
        raise ParameterError(f"estimate must be positive, got {estimate}")
    ratio = estimate / true_distinct
    return ratio if ratio >= 1.0 else 1.0 / ratio


def rel_error(estimate: float, true_distinct: int, n: int) -> float:
    """The paper's rel-error: ``|d - e| / n``.

    Section 6.2's numeric example: n=100,000, d=500, e=5,000 gives ratio
    error 10 but rel-error 0.045 — the optimizer still correctly concludes
    ``d << n``.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if true_distinct < 0:
        raise ParameterError(
            f"true_distinct must be non-negative, got {true_distinct}"
        )
    return abs(true_distinct - estimate) / n
